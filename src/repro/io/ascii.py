"""The placement tool's ASCII-file interface.

Paper, section 4: *"For using the tool all placement relevant circuit data
(e.g. 3D description of the components, net list) and given design rules
are read in using an ASCII-file interface."*

The format is line-oriented, human-editable, millimetres/degrees::

    EMIPLACE 1
    TITLE buck converter
    BOARD 0 GROUND 1
      OUTLINE 0,0 70,0 70,50 0,50
      AREA main 5,5 65,5 65,45 5,45
      KEEPOUT hs1 10,10 30,30 Z 0 15
    END
    COMP CX1 TYPE FilmCapacitorX2 PN CX1-X2 SIZE 18x8x15 GROUP input_filter
    COMP Q1 TYPE PowerMosfet PN Q1-DPAK SIZE 10x9x2.3 FIXED AT 35 25 ROT 0
    NET VIN CX1.1 LF1.1
    RULE MINDIST CX1 CX2 25.0 K 0.01
    RULE CLEAR * * 0.5
    RULE GROUP input_filter SPREAD 40 MEMBERS CX1,LF1,CX2
    RULE NETLEN VIN 120

Components are reconstructed by class name with the serialised footprint
dimensions applied, so a file round-trips the placement-relevant geometry
without needing the originating catalogue.
"""

from __future__ import annotations

import math

from ..components import (
    BobbinChoke,
    SmdPowerInductor,
    CeramicCapacitor,
    ChipResistor,
    CommonModeChoke,
    Component,
    Connector,
    ControllerIC,
    ElectrolyticCapacitor,
    FilmCapacitorX2,
    PowerDiode,
    PowerMosfet,
    ShuntResistor,
    TantalumCapacitorSMD,
)
from ..geometry import Cuboid, Placement2D, Polygon2D, Rect, Vec2
from ..placement import (
    Board,
    Keepout3D,
    PlacedComponent,
    PlacementArea,
    PlacementProblem,
)
from ..rules import (
    ClearanceRule,
    GroupCoherenceRule,
    MinDistanceRule,
    NetLengthRule,
    RuleSet,
)

__all__ = ["write_problem", "read_problem", "AsciiFormatError"]

_MM = 1e-3

_COMPONENT_CLASSES: dict[str, type[Component]] = {
    cls.__name__: cls
    for cls in (
        FilmCapacitorX2,
        TantalumCapacitorSMD,
        ElectrolyticCapacitor,
        CeramicCapacitor,
        BobbinChoke,
        CommonModeChoke,
        PowerMosfet,
        PowerDiode,
        ChipResistor,
        ShuntResistor,
        Connector,
        ControllerIC,
        SmdPowerInductor,
    )
}


class AsciiFormatError(ValueError):
    """Malformed interface file (message cites the line number)."""


def _fmt_mm(value: float) -> str:
    return f"{value / _MM:.7g}"


def _fmt_point(p: Vec2) -> str:
    return f"{_fmt_mm(p.x)},{_fmt_mm(p.y)}"


def _parse_point(token: str) -> Vec2:
    x_str, _, y_str = token.partition(",")
    return Vec2(float(x_str) * _MM, float(y_str) * _MM)


# -- writer --------------------------------------------------------------


def write_problem(problem: PlacementProblem, title: str = "") -> str:
    """Serialise a placement problem to interface text."""
    lines: list[str] = ["EMIPLACE 1"]
    if title:
        lines.append(f"TITLE {title}")

    for board in problem.boards:
        lines.append(f"BOARD {board.index} GROUND {int(board.ground_plane)}")
        outline = " ".join(_fmt_point(v) for v in board.outline.vertices)
        lines.append(f"  OUTLINE {outline}")
        for area in board.areas:
            pts = " ".join(_fmt_point(v) for v in area.polygon.vertices)
            lines.append(f"  AREA {area.name} {pts}")
        for keepout in board.keepouts:
            r = keepout.cuboid.rect
            lines.append(
                f"  KEEPOUT {keepout.name} {_fmt_mm(r.xmin)},{_fmt_mm(r.ymin)} "
                f"{_fmt_mm(r.xmax)},{_fmt_mm(r.ymax)} Z "
                f"{_fmt_mm(keepout.cuboid.zmin)} {_fmt_mm(keepout.cuboid.zmax)}"
            )
        lines.append("END")

    for ref, comp in problem.components.items():
        c = comp.component
        fields = [
            f"COMP {ref}",
            f"TYPE {type(c).__name__}",
            f"PN {c.part_number}",
            f"SIZE {_fmt_mm(c.footprint_w)}x{_fmt_mm(c.footprint_h)}x{_fmt_mm(c.body_height)}",
            f"BOARD {comp.board}",
        ]
        if comp.group:
            fields.append(f"GROUP {comp.group}")
        if comp.fixed:
            fields.append("FIXED")
        if comp.placement is not None:
            p = comp.placement
            fields.append(
                f"AT {_fmt_mm(p.position.x)} {_fmt_mm(p.position.y)} "
                f"ROT {p.rotation_deg:.4g}"
            )
        if comp.allowed_rotations_deg is not None:
            angles = ",".join(f"{a:.4g}" for a in comp.allowed_rotations_deg)
            fields.append(f"ANGLES {angles}")
        if comp.preferred_rotation_deg is not None:
            fields.append(f"PREF {comp.preferred_rotation_deg:.4g}")
        lines.append(" ".join(fields))

    for net in problem.nets:
        pins = " ".join(f"{ref}.{pad}" for ref, pad in net.pins)
        lines.append(f"NET {net.name} {pins}")

    for rule in problem.rules.min_distance:
        lines.append(
            f"RULE MINDIST {rule.ref_a} {rule.ref_b} {_fmt_mm(rule.pemd)}"
            + (f" K {rule.k_threshold:.4g}" if rule.k_threshold else "")
            + (f" R {rule.residual:.4g}" if rule.residual else "")
        )
    for rule in problem.rules.clearance:
        a = rule.ref_a or "*"
        b = rule.ref_b or "*"
        lines.append(f"RULE CLEAR {a} {b} {_fmt_mm(rule.clearance)}")
    for rule in problem.rules.groups:
        members = ",".join(rule.members)
        lines.append(
            f"RULE GROUP {rule.group} SPREAD {_fmt_mm(rule.max_spread)} MEMBERS {members}"
        )
    for rule in problem.rules.net_lengths:
        lines.append(f"RULE NETLEN {rule.net} {_fmt_mm(rule.max_length)}")
    return "\n".join(lines) + "\n"


# -- reader --------------------------------------------------------------


def read_problem(text: str) -> PlacementProblem:
    """Parse interface text back into a placement problem.

    Raises:
        AsciiFormatError: on any malformed line.
    """
    lines = text.splitlines()
    if not lines or not lines[0].startswith("EMIPLACE"):
        raise AsciiFormatError("missing EMIPLACE header")

    boards: list[Board] = []
    comps: list[PlacedComponent] = []
    nets: list[tuple[str, list[tuple[str, str]]]] = []
    rules = RuleSet()
    groups: dict[str, list[str]] = {}

    current_board: dict | None = None

    def finish_board() -> None:
        nonlocal current_board
        if current_board is None:
            return
        if current_board.get("outline") is None:
            raise AsciiFormatError(
                f"board {current_board['index']} has no OUTLINE"
            )
        boards.append(
            Board(
                current_board["index"],
                current_board["outline"],
                areas=current_board["areas"],
                keepouts=current_board["keepouts"],
                ground_plane=current_board["ground"],
            )
        )
        current_board = None

    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        try:
            keyword = tokens[0].upper()
            if keyword == "TITLE":
                continue
            elif keyword == "BOARD":
                finish_board()
                ground = True
                if "GROUND" in (t.upper() for t in tokens):
                    gi = [t.upper() for t in tokens].index("GROUND")
                    ground = bool(int(tokens[gi + 1]))
                current_board = {
                    "index": int(tokens[1]),
                    "outline": None,
                    "areas": [],
                    "keepouts": [],
                    "ground": ground,
                }
            elif keyword == "OUTLINE":
                assert current_board is not None
                points = [_parse_point(t) for t in tokens[1:]]
                current_board["outline"] = Polygon2D(points)
            elif keyword == "AREA":
                assert current_board is not None
                name = tokens[1]
                points = [_parse_point(t) for t in tokens[2:]]
                current_board["areas"].append(
                    PlacementArea(name, Polygon2D(points), current_board["index"])
                )
            elif keyword == "KEEPOUT":
                assert current_board is not None
                name = tokens[1]
                p_min = _parse_point(tokens[2])
                p_max = _parse_point(tokens[3])
                z_index = [t.upper() for t in tokens].index("Z")
                zmin = float(tokens[z_index + 1]) * _MM
                zmax = float(tokens[z_index + 2]) * _MM
                cuboid = Cuboid(Rect(p_min.x, p_min.y, p_max.x, p_max.y), zmin, zmax)
                current_board["keepouts"].append(
                    Keepout3D(name, cuboid, current_board["index"])
                )
            elif keyword == "END":
                finish_board()
            elif keyword == "COMP":
                comps.append(_parse_comp(tokens, lineno, groups))
            elif keyword == "NET":
                pins = []
                for pin in tokens[2:]:
                    ref, _, pad = pin.partition(".")
                    pins.append((ref, pad or "1"))
                nets.append((tokens[1], pins))
            elif keyword == "RULE":
                _parse_rule(tokens, rules, lineno)
            else:
                raise AsciiFormatError(f"unknown keyword {tokens[0]!r}")
        except AsciiFormatError:
            raise
        except (IndexError, ValueError, AssertionError) as exc:
            raise AsciiFormatError(f"line {lineno}: {raw!r}: {exc}") from exc
    finish_board()

    if not boards:
        raise AsciiFormatError("no boards defined")
    problem = PlacementProblem(boards)
    for comp in comps:
        problem.add_component(comp)
    for name, pins in nets:
        problem.add_net(name, pins)
    for group, members in groups.items():
        problem.define_group(group, members)
    problem.rules = rules
    return problem


def _parse_comp(
    tokens: list[str], lineno: int, groups: dict[str, list[str]]
) -> PlacedComponent:
    ref = tokens[1]
    values: dict[str, str] = {}
    flags: set[str] = set()
    i = 2
    at_pos: tuple[float, float] | None = None
    rot_deg = 0.0
    while i < len(tokens):
        key = tokens[i].upper()
        if key == "FIXED":
            flags.add("FIXED")
            i += 1
        elif key == "AT":
            at_pos = (float(tokens[i + 1]) * _MM, float(tokens[i + 2]) * _MM)
            i += 3
        elif key == "ROT":
            rot_deg = float(tokens[i + 1])
            i += 2
        else:
            values[key] = tokens[i + 1]
            i += 2

    cls_name = values.get("TYPE")
    if cls_name not in _COMPONENT_CLASSES:
        raise AsciiFormatError(f"line {lineno}: unknown component TYPE {cls_name!r}")
    cls = _COMPONENT_CLASSES[cls_name]

    kwargs: dict = {}
    if "PN" in values:
        kwargs["part_number"] = values["PN"]
    if "SIZE" in values:
        w_str, h_str, bh_str = values["SIZE"].split("x")
        kwargs["footprint_w"] = float(w_str) * _MM
        kwargs["footprint_h"] = float(h_str) * _MM
        kwargs["body_height"] = float(bh_str) * _MM
    component = cls(**kwargs)

    placement = None
    if at_pos is not None:
        placement = Placement2D(Vec2(*at_pos), math.radians(rot_deg))

    allowed = None
    if "ANGLES" in values:
        allowed = tuple(float(a) for a in values["ANGLES"].split(","))

    placed = PlacedComponent(
        refdes=ref,
        component=component,
        placement=placement,
        board=int(values.get("BOARD", "0")),
        fixed="FIXED" in flags,
        allowed_rotations_deg=allowed,
        preferred_rotation_deg=(
            float(values["PREF"]) if "PREF" in values else None
        ),
    )
    if "GROUP" in values:
        groups.setdefault(values["GROUP"], []).append(ref)
    return placed


def _parse_rule(tokens: list[str], rules: RuleSet, lineno: int) -> None:
    kind = tokens[1].upper()
    if kind == "MINDIST":
        k_threshold = 0.0
        residual = 0.0
        i = 5
        while i < len(tokens):
            key = tokens[i].upper()
            if key == "K":
                k_threshold = float(tokens[i + 1])
            elif key == "R":
                residual = float(tokens[i + 1])
            else:
                raise AsciiFormatError(
                    f"line {lineno}: unknown MINDIST keyword {tokens[i]!r}"
                )
            i += 2
        rules.min_distance.append(
            MinDistanceRule(
                tokens[2],
                tokens[3],
                pemd=float(tokens[4]) * _MM,
                k_threshold=k_threshold,
                residual=residual,
                source="ascii",
            )
        )
    elif kind == "CLEAR":
        ref_a = "" if tokens[2] == "*" else tokens[2]
        ref_b = "" if tokens[3] == "*" else tokens[3]
        rules.clearance.append(
            ClearanceRule(ref_a=ref_a, ref_b=ref_b, clearance=float(tokens[4]) * _MM)
        )
    elif kind == "GROUP":
        spread_i = [t.upper() for t in tokens].index("SPREAD")
        members_i = [t.upper() for t in tokens].index("MEMBERS")
        rules.groups.append(
            GroupCoherenceRule(
                group=tokens[2],
                members=tuple(tokens[members_i + 1].split(",")),
                max_spread=float(tokens[spread_i + 1]) * _MM,
            )
        )
    elif kind == "NETLEN":
        rules.net_lengths.append(
            NetLengthRule(net=tokens[2], max_length=float(tokens[3]) * _MM)
        )
    else:
        raise AsciiFormatError(f"line {lineno}: unknown rule kind {tokens[1]!r}")
