"""Building a placement problem from a SPICE-style netlist.

The paper's tool reads "all placement relevant circuit data (e.g. 3D
description of the components, net list)"; this importer provides the
netlist half from the simulator's own format: each R/L/C/V card becomes a
library part (by an explicit part map, or by value-based defaults), and
the shared circuit nodes become placement nets.
"""

from __future__ import annotations

from ..circuit import Circuit, parse_netlist
from ..circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VoltageSource,
)
from ..components import (
    BobbinChoke,
    CeramicCapacitor,
    ChipResistor,
    Component,
    Connector,
    ElectrolyticCapacitor,
    FilmCapacitorX2,
)
from ..geometry import Polygon2D
from ..placement import Board, PlacedComponent, PlacementProblem

__all__ = ["problem_from_netlist", "default_part_for"]


def default_part_for(element) -> Component | None:
    """A sensible library part for a primitive element, by value.

    Capacitors: >= 10 µF electrolytic, >= 100 nF film, below that MLCC.
    Inductors: bobbin chokes.  Resistors: 1206 chips.  Sources: edge
    connectors (they are board I/O).  Returns None for elements with no
    physical footprint of their own (expanded parasitics etc.).
    """
    if isinstance(element, Capacitor):
        if element.capacitance >= 10e-6:
            return ElectrolyticCapacitor(part_number=f"{element.name}-ELKO")
        if element.capacitance >= 100e-9:
            return FilmCapacitorX2(
                part_number=f"{element.name}-FILM", capacitance=element.capacitance
            )
        return CeramicCapacitor(
            part_number=f"{element.name}-MLCC", capacitance=element.capacitance
        )
    if isinstance(element, Inductor):
        return BobbinChoke(
            part_number=f"{element.name}-CHOKE", rated_inductance=element.inductance
        )
    if isinstance(element, Resistor):
        return ChipResistor(part_number=f"{element.name}-R", resistance=element.resistance)
    if isinstance(element, (VoltageSource, CurrentSource)):
        return Connector(part_number=f"{element.name}-CONN")
    return None


def problem_from_netlist(
    netlist_text: str,
    board_width: float = 0.08,
    board_height: float = 0.06,
    part_map: dict[str, Component] | None = None,
) -> PlacementProblem:
    """Parse a netlist and build the corresponding placement problem.

    Expanded parasitic elements (``X.ESL``, ``X.ESR`` …) collapse back into
    their parent card, so a ``C1 a 0 1u esr=10m esl=5n`` line yields one
    placeable part ``C1``.

    Args:
        netlist_text: SPICE-flavoured netlist (see
            :func:`repro.circuit.parse_netlist`).
        board_width, board_height: board outline [m].
        part_map: explicit card-name -> component overrides; cards not in
            the map use :func:`default_part_for`.

    Raises:
        ValueError: when the netlist yields no placeable part.
    """
    circuit: Circuit = parse_netlist(netlist_text)
    part_map = part_map or {}

    board = Board(0, Polygon2D.rectangle(0.0, 0.0, board_width, board_height))
    problem = PlacementProblem([board])

    # Collapse expanded parasitics: "C1.C" / "C1.ESR" / "C1.ESL" -> "C1".
    cards: dict[str, list] = {}
    for element in circuit.elements:
        card = element.name.split(".")[0].split("#")[0]
        cards.setdefault(card, []).append(element)

    node_pins: dict[str, list[tuple[str, str]]] = {}
    for card, elements in sorted(cards.items()):
        component = part_map.get(card)
        if component is None:
            component = default_part_for(elements[0])
        if component is None:
            continue
        problem.add_component(PlacedComponent(card, component))
        # Terminal nodes of the card = nodes touched exactly once within it
        # (internal expansion nodes are touched twice).
        touch_count: dict[str, int] = {}
        for element in elements:
            for node in element.nodes():
                touch_count[node] = touch_count.get(node, 0) + 1
        terminals = [n for n, count in touch_count.items() if count == 1]
        if not terminals:  # single self-contained element
            terminals = list(elements[0].nodes())
        pads = [p.name for p in component.pads] or ["1", "2"]
        for i, node in enumerate(sorted(terminals)[: len(pads)]):
            node_pins.setdefault(node, []).append((card, pads[i]))

    if not problem.components:
        raise ValueError("netlist contains no placeable parts")

    for node, pins in sorted(node_pins.items()):
        if node in ("0", "GND", "gnd") or len(pins) < 2:
            continue
        problem.add_net(f"N_{node}", pins)
    return problem
