"""Active components: power MOSFET and diode packages.

Semiconductors matter to the EMI flow as *sources* — their switching drives
the harmonic noise current — and as small lead-frame loops that close the
converter's hot loop.  Their internal loops are modelled like a capacitor's:
a small vertical rectangle between the power terminals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geometry import Vec2, Vec3
from ..peec import CurrentPath, rectangle_path
from .base import Component, Pad

__all__ = ["PowerMosfet", "PowerDiode"]


@dataclass
class PowerMosfet(Component):
    """Power MOSFET in a DPAK-style package.

    Attributes:
        rds_on: on-state resistance [ohm].
        rise_time: switching edge time [s] — sets the spectral corner of the
            trapezoidal noise source.
        output_capacitance: Coss [F], relevant to ringing.
    """

    part_number: str = "MOSFET-DPAK"
    footprint_w: float = 10e-3
    footprint_h: float = 9e-3
    body_height: float = 2.3e-3
    rds_on: float = 20e-3
    rise_time: float = 30e-9
    output_capacitance: float = 300e-12
    loop_span: float = 7e-3
    loop_height: float = 1.5e-3
    pads: list[Pad] = field(
        default_factory=lambda: [
            Pad("D", Vec2(-3.5e-3, 0.0)),
            Pad("S", Vec2(3.5e-3, 0.0)),
            Pad("G", Vec2(3.5e-3, 2.5e-3)),
        ]
    )

    def build_current_path(self) -> CurrentPath:
        """Lead-frame drain-source loop (small, but closes the hot loop)."""
        half = self.loop_span / 2.0
        return rectangle_path(
            Vec3(-half, 0.0, 0.0),
            Vec3(half, 0.0, self.loop_height),
            normal="y",
            width=4e-3,
            thickness=0.5e-3,
            name=self.part_number,
        )

    @property
    def esr(self) -> float:
        """On-resistance stands in for the series loss term."""
        return self.rds_on


@dataclass
class PowerDiode(Component):
    """Power Schottky/fast diode in an SMC-style package."""

    part_number: str = "DIODE-SMC"
    footprint_w: float = 8e-3
    footprint_h: float = 6.6e-3
    body_height: float = 2.3e-3
    forward_voltage: float = 0.5
    on_resistance: float = 15e-3
    junction_capacitance: float = 150e-12
    loop_span: float = 6e-3
    loop_height: float = 1.3e-3
    pads: list[Pad] = field(
        default_factory=lambda: [Pad("A", Vec2(-3e-3, 0.0)), Pad("K", Vec2(3e-3, 0.0))]
    )

    def build_current_path(self) -> CurrentPath:
        """Lead-frame anode-cathode loop."""
        half = self.loop_span / 2.0
        return rectangle_path(
            Vec3(-half, 0.0, 0.0),
            Vec3(half, 0.0, self.loop_height),
            normal="y",
            width=3.5e-3,
            thickness=0.5e-3,
            name=self.part_number,
        )

    @property
    def esr(self) -> float:
        """Dynamic on-resistance."""
        return self.on_resistance
