"""Remaining board parts: resistors, shunts, connectors, controller IC.

These parts are placement-relevant (they occupy area and appear in the
netlist and functional groups) but their stray fields are negligible; each
still provides a minimal current path so that field-model code never needs
special cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geometry import Vec2, Vec3
from ..peec import CurrentPath, rectangle_path
from .base import Component, Pad

__all__ = ["ChipResistor", "ShuntResistor", "Connector", "ControllerIC"]


def _small_loop(span: float, height: float, name: str) -> CurrentPath:
    return rectangle_path(
        Vec3(-span / 2.0, 0.0, 0.0),
        Vec3(span / 2.0, 0.0, height),
        normal="y",
        width=1.5e-3,
        thickness=0.2e-3,
        name=name,
    )


@dataclass
class ChipResistor(Component):
    """Thick-film chip resistor (1206)."""

    part_number: str = "R-1206"
    footprint_w: float = 3.2e-3
    footprint_h: float = 1.6e-3
    body_height: float = 0.7e-3
    resistance: float = 10.0
    pads: list[Pad] = field(
        default_factory=lambda: [Pad("1", Vec2(-1.4e-3, 0.0)), Pad("2", Vec2(1.4e-3, 0.0))]
    )

    def build_current_path(self) -> CurrentPath:
        """Flat, short loop — negligible field, kept for uniformity."""
        return _small_loop(2.8e-3, 0.4e-3, self.part_number)

    @property
    def esr(self) -> float:
        """The resistance itself."""
        return self.resistance


@dataclass
class ShuntResistor(Component):
    """Current-sense shunt (2512, milliohm range)."""

    part_number: str = "SHUNT-10m"
    footprint_w: float = 6.4e-3
    footprint_h: float = 3.2e-3
    body_height: float = 0.9e-3
    resistance: float = 10e-3
    pads: list[Pad] = field(
        default_factory=lambda: [Pad("1", Vec2(-2.9e-3, 0.0)), Pad("2", Vec2(2.9e-3, 0.0))]
    )

    def build_current_path(self) -> CurrentPath:
        """Flat loop carrying the full converter current."""
        return _small_loop(5.8e-3, 0.5e-3, self.part_number)

    @property
    def esr(self) -> float:
        """The shunt resistance."""
        return self.resistance


@dataclass
class Connector(Component):
    """Board-edge power connector (two-pin)."""

    part_number: str = "CONN-2"
    footprint_w: float = 12e-3
    footprint_h: float = 8e-3
    body_height: float = 10e-3
    pin_pitch: float = 5e-3
    pads: list[Pad] = field(
        default_factory=lambda: [Pad("1", Vec2(-2.5e-3, 0.0)), Pad("2", Vec2(2.5e-3, 0.0))]
    )

    def build_current_path(self) -> CurrentPath:
        """Pin pair loop up into the mating face."""
        return _small_loop(self.pin_pitch, 6e-3, self.part_number)


@dataclass
class ControllerIC(Component):
    """PWM controller in SOIC-8; no power loop of its own."""

    part_number: str = "CTRL-SO8"
    footprint_w: float = 5e-3
    footprint_h: float = 4e-3
    body_height: float = 1.6e-3
    pads: list[Pad] = field(
        default_factory=lambda: [
            Pad(str(i + 1), Vec2(-1.9e-3 + 1.27e-3 * (i % 4), -1.9e-3 if i < 4 else 1.9e-3))
            for i in range(8)
        ]
    )

    def build_current_path(self) -> CurrentPath:
        """Tiny supply loop."""
        return _small_loop(2.5e-3, 0.5e-3, self.part_number)
