"""Bobbin-core chokes — the paper's segmented-ring winding models.

The paper (Fig. 4 / Fig. 11) models chokes *"using a simplified winding
setup (segmented rings)"* and corrects inductance and mutual inductance with
the effective permeability of the open bobbin core.  A winding of N turns is
represented by a few geometric rings, each carrying a turns weight, stacked
along the winding axis.

Two mounting orientations are supported: ``horizontal`` (axis in the board
plane — the orientation of the paper's Figs. 5, 7 and 10, where rotation
changes the coupling) and ``vertical`` (axis along the board normal —
rotation invariant).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geometry import Vec2, Vec3
from ..peec import (
    FERRITE_N87,
    CoreMaterial,
    CurrentPath,
    demagnetizing_factor_rod,
    ring_path,
)
from .base import Component, Pad

__all__ = ["BobbinChoke", "small_bobbin_choke", "large_bobbin_choke"]


@dataclass
class BobbinChoke(Component):
    """A single-winding choke on an open bobbin (rod) core.

    Attributes:
        turns: total number of winding turns.
        coil_radius: mean winding radius [m].
        coil_length: axial length of the winding [m].
        n_rings: number of geometric rings representing the winding.
        orientation: ``"horizontal"`` (axis along local x, in-plane) or
            ``"vertical"`` (axis along z).
        wire_diameter: winding wire diameter [m].
        rated_inductance: optional catalogue inductance [H]; when set, it is
            used for the circuit model instead of the geometric estimate
            (the geometry still drives coupling factors).
    """

    part_number: str = "BOBBIN-100u"
    footprint_w: float = 12e-3
    footprint_h: float = 10e-3
    body_height: float = 12e-3
    turns: int = 20
    coil_radius: float = 4e-3
    coil_length: float = 8e-3
    n_rings: int = 5
    orientation: str = "horizontal"
    wire_diameter: float = 0.8e-3
    core: CoreMaterial = FERRITE_N87
    rated_inductance: float | None = None
    pads: list[Pad] = field(
        default_factory=lambda: [Pad("1", Vec2(-5e-3, 0.0)), Pad("2", Vec2(5e-3, 0.0))]
    )

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.turns < 1:
            raise ValueError(f"{self.part_number}: turns must be >= 1")
        if self.n_rings < 1:
            raise ValueError(f"{self.part_number}: need at least one ring")
        if self.orientation not in ("horizontal", "vertical"):
            raise ValueError(
                f"{self.part_number}: orientation must be 'horizontal' or 'vertical'"
            )
        # Rod demagnetising factor from the actual coil geometry.
        self.demag_factor = demagnetizing_factor_rod(
            self.coil_length, 2.0 * self.coil_radius
        )

    def build_current_path(self) -> CurrentPath:
        """Segmented-ring winding model (the paper's Fig. 11 inset)."""
        weight = self.turns / self.n_rings
        axis = "x" if self.orientation == "horizontal" else "z"
        rings: CurrentPath | None = None
        # Centre height: the coil sits on the board for vertical mounting and
        # at half the body height for horizontal mounting.
        for i in range(self.n_rings):
            offset = (
                0.0
                if self.n_rings == 1
                else -self.coil_length / 2.0
                + self.coil_length * i / (self.n_rings - 1)
            )
            center = (
                Vec3(offset, 0.0, self.body_height / 2.0)
                if self.orientation == "horizontal"
                else Vec3(0.0, 0.0, self.body_height / 2.0 + offset)
            )
            ring = ring_path(
                center,
                self.coil_radius,
                segments=12,
                axis=axis,
                wire_diameter=self.wire_diameter,
                weight=weight,
                name=self.part_number,
            )
            rings = ring if rings is None else rings.merged_with(ring)
        assert rings is not None
        rings.name = self.part_number
        return rings

    @property
    def inductance(self) -> float:
        """Inductance for the circuit model [H]."""
        if self.rated_inductance is not None:
            return self.rated_inductance
        return self.self_inductance

    @property
    def esr(self) -> float:
        """Winding resistance estimate from wire length and diameter [ohm]."""
        rho_cu = 1.72e-8
        wire_length = self.current_path.total_length()
        area = 3.141592653589793 * (self.wire_diameter / 2.0) ** 2
        return rho_cu * wire_length / area


def small_bobbin_choke(orientation: str = "horizontal") -> BobbinChoke:
    """The smaller of the paper's Fig. 7 coil pair (~10 mm winding)."""
    return BobbinChoke(
        part_number="BOBBIN-S",
        footprint_w=10e-3,
        footprint_h=8e-3,
        body_height=10e-3,
        turns=15,
        coil_radius=3e-3,
        coil_length=6e-3,
        n_rings=4,
        orientation=orientation,
    )


def large_bobbin_choke(orientation: str = "horizontal") -> BobbinChoke:
    """The larger Fig. 7 coil (~16 mm winding)."""
    return BobbinChoke(
        part_number="BOBBIN-L",
        footprint_w=18e-3,
        footprint_h=14e-3,
        body_height=16e-3,
        turns=25,
        coil_radius=6e-3,
        coil_length=12e-3,
        n_rings=6,
        orientation=orientation,
    )
