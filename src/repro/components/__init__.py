"""Component library: placeable parts with field and circuit models.

Each part carries a rectangular footprint for the placer, a simplified
internal current path for the PEEC field engine and electrical parasitics
for the circuit simulator — the three views the paper's flow requires.
"""

from .base import DEFAULT_CLEARANCE, Component, Pad
from .capacitors import (
    Capacitor,
    CeramicCapacitor,
    ElectrolyticCapacitor,
    FilmCapacitorX2,
    TantalumCapacitorSMD,
)
from .cmchoke import CommonModeChoke, cm_choke_2w, cm_choke_3w
from .inductors import BobbinChoke, large_bobbin_choke, small_bobbin_choke
from .library import ComponentLibrary, default_library
from .passives import ChipResistor, Connector, ControllerIC, ShuntResistor
from .semiconductors import PowerDiode, PowerMosfet
from .smd_inductors import (
    SmdPowerInductor,
    shielded_power_inductor,
    unshielded_power_inductor,
)

__all__ = [
    "Component",
    "Pad",
    "DEFAULT_CLEARANCE",
    "Capacitor",
    "FilmCapacitorX2",
    "TantalumCapacitorSMD",
    "ElectrolyticCapacitor",
    "CeramicCapacitor",
    "BobbinChoke",
    "small_bobbin_choke",
    "large_bobbin_choke",
    "CommonModeChoke",
    "SmdPowerInductor",
    "shielded_power_inductor",
    "unshielded_power_inductor",
    "cm_choke_2w",
    "cm_choke_3w",
    "PowerMosfet",
    "PowerDiode",
    "ChipResistor",
    "ShuntResistor",
    "Connector",
    "ControllerIC",
    "ComponentLibrary",
    "default_library",
]
