"""Current-compensated (common-mode) chokes with two or three windings.

The paper's Fig. 8 observation: a **two-winding** CM choke has preferred
(decoupled) positions for adjacent capacitors, while the **three-winding**
design *"generates almost rotating stray fields and therefore no decoupled
position for adjacent components can be found"*.

The model is a toroid of major radius ``R``; each winding occupies an arc of
the toroid and is represented by small segmented rings (minor radius ``r``)
whose axes are tangential to the major circle — exactly the reduced-ring
representation the paper uses for chokes.  Under *common-mode* excitation
all windings carry the same terminal current and their fluxes add around
the core; the uncovered arcs are where the stray field leaks out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..geometry import Vec2, Vec3
from ..peec import FERRITE_N87, CoreMaterial, CurrentPath, ring_path
from .base import Component, Pad

__all__ = ["CommonModeChoke", "cm_choke_2w", "cm_choke_3w"]


@dataclass
class CommonModeChoke(Component):
    """A toroidal current-compensated choke with ``n_windings`` windings.

    Attributes:
        n_windings: 2 (single-phase) or 3 (three-phase).
        major_radius: toroid major radius [m].
        minor_radius: winding (turn) radius [m].
        turns_per_winding: turns of each winding.
        coverage: fraction of the per-winding arc actually covered by wire
            (windings never quite touch; the gaps set the stray field).
        rings_per_winding: geometric rings representing each winding.
        rated_inductance: catalogue CM inductance per path [H], optional.
    """

    part_number: str = "CMC-2W"
    footprint_w: float = 26e-3
    footprint_h: float = 26e-3
    body_height: float = 14e-3
    n_windings: int = 2
    major_radius: float = 10e-3
    minor_radius: float = 4e-3
    turns_per_winding: int = 10
    coverage: float = 0.7
    rings_per_winding: int = 5
    wire_diameter: float = 1.0e-3
    core: CoreMaterial = FERRITE_N87
    rated_inductance: float | None = None
    pads: list[Pad] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_windings not in (2, 3):
            raise ValueError(f"{self.part_number}: n_windings must be 2 or 3")
        if not 0.1 <= self.coverage <= 1.0:
            raise ValueError(f"{self.part_number}: coverage must be in [0.1, 1]")
        if self.rings_per_winding < 2:
            raise ValueError(f"{self.part_number}: need >= 2 rings per winding")
        if self.wire_diameter <= 0.0:
            raise ValueError(f"{self.part_number}: wire_diameter must be positive")
        # Closed toroid core: small demagnetising factor, most flux confined,
        # stray coupling is carried by the winding-gap leakage that the ring
        # geometry itself produces.
        self.demag_factor = 0.02
        if not self.pads:
            self.pads = self._default_pads()

    def _default_pads(self) -> list[Pad]:
        pads: list[Pad] = []
        for w in range(self.n_windings):
            angle = self.winding_center_angle(w)
            radial = Vec2(math.cos(angle), math.sin(angle)) * (self.major_radius + 2e-3)
            pads.append(Pad(f"{w + 1}a", radial))
            pads.append(Pad(f"{w + 1}b", radial * 0.8))
        return pads

    def winding_center_angle(self, index: int) -> float:
        """Angular position of a winding's centre on the toroid [rad]."""
        assert self.n_windings > 0, "__post_init__ allows only 2 or 3 windings"
        return 2.0 * math.pi * index / self.n_windings

    def winding_path(self, index: int) -> CurrentPath:
        """The segmented-ring model of one winding alone.

        Needed for phase-resolved excitation: the three-phase choke's
        *"almost rotating stray fields"* (paper Fig. 8) only appear when
        each winding carries its own phase current, so the field analysis
        must keep the windings separable.

        Raises:
            IndexError: for an out-of-range winding index.
        """
        if not 0 <= index < self.n_windings:
            raise IndexError(f"winding {index} of {self.n_windings}")
        from dataclasses import replace

        assert self.rings_per_winding >= 2, "validated in __post_init__"
        weight = self.turns_per_winding / self.rings_per_winding
        z0 = self.body_height / 2.0
        arc = 2.0 * math.pi / self.n_windings * self.coverage
        center_angle = self.winding_center_angle(index)
        path: CurrentPath | None = None
        for i in range(self.rings_per_winding):
            frac = (i + 0.5) / self.rings_per_winding - 0.5
            theta = center_angle + frac * arc
            cx = self.major_radius * math.cos(theta)
            cy = self.major_radius * math.sin(theta)
            # A ring whose axis is tangential to the major circle: build it
            # with axis 'x' at the origin, then rotate into place (tangent
            # at theta is the x axis rotated by theta + 90 deg).
            ring = ring_path(
                Vec3.zero(),
                self.minor_radius,
                segments=8,
                axis="x",
                wire_diameter=self.wire_diameter,
                weight=weight,
                name=f"{self.part_number}.w{index}",
            )
            rot = theta + math.pi / 2.0
            rotated = CurrentPath(
                [
                    replace(
                        f,
                        start=f.start.rotated_z(rot) + Vec3(cx, cy, z0),
                        end=f.end.rotated_z(rot) + Vec3(cx, cy, z0),
                    )
                    for f in ring.filaments
                ],
                name=f"{self.part_number}.w{index}",
            )
            path = rotated if path is None else path.merged_with(rotated)
        assert path is not None
        path.name = f"{self.part_number}.w{index}"
        return path

    def build_current_path(self) -> CurrentPath:
        """All windings under common-mode excitation (fluxes add)."""
        path: CurrentPath | None = None
        for w in range(self.n_windings):
            wp = self.winding_path(w)
            path = wp if path is None else path.merged_with(wp)
        assert path is not None
        path.name = self.part_number
        return path

    @property
    def decoupling_residual(self) -> float:
        """How much of a rule survives any victim rotation.

        From the Fig. 8 analysis: around a **two-winding** choke the stray
        field is linearly polarised and adjacent parts have preferred
        (decoupled) placements — a small residual remains for robustness.
        The **three-winding** choke generates *"almost rotating stray
        fields"*: no orientation decouples an adjacent component, so most
        of the PEMD is irreducible.
        """
        return 0.15 if self.n_windings == 2 else 0.6

    @property
    def inductance(self) -> float:
        """Common-mode inductance per current path [H]."""
        if self.rated_inductance is not None:
            return self.rated_inductance
        assert self.n_windings > 0, "__post_init__ allows only 2 or 3 windings"
        return self.self_inductance / self.n_windings

    @property
    def esr(self) -> float:
        """Winding resistance per path [ohm]."""
        rho_cu = 1.72e-8
        assert self.n_windings > 0, "__post_init__ allows only 2 or 3 windings"
        length_per_winding = self.current_path.total_length() / self.n_windings
        area = math.pi * (self.wire_diameter / 2.0) ** 2
        assert area > 0.0, "wire_diameter validated positive in __post_init__"
        return rho_cu * length_per_winding / area


def cm_choke_2w() -> CommonModeChoke:
    """Single-phase (two-winding) CM choke — has decoupled positions."""
    return CommonModeChoke(part_number="CMC-2W", n_windings=2)


def cm_choke_3w() -> CommonModeChoke:
    """Three-phase (three-winding) CM choke — near-rotating stray field."""
    return CommonModeChoke(part_number="CMC-3W", n_windings=3)
