"""Catalogue of ready-made parts, addressable by part number.

The ASCII interface of the placement tool references components by part
number; this registry resolves those references.  All factories return
fresh instances so that callers may mutate orientation or values without
aliasing.
"""

from __future__ import annotations

from collections.abc import Callable

from .base import Component
from .capacitors import (
    CeramicCapacitor,
    ElectrolyticCapacitor,
    FilmCapacitorX2,
    TantalumCapacitorSMD,
)
from .cmchoke import cm_choke_2w, cm_choke_3w
from .inductors import BobbinChoke, large_bobbin_choke, small_bobbin_choke
from .passives import ChipResistor, Connector, ControllerIC, ShuntResistor
from .semiconductors import PowerDiode, PowerMosfet
from .smd_inductors import shielded_power_inductor, unshielded_power_inductor

__all__ = ["ComponentLibrary", "default_library"]


class ComponentLibrary:
    """A mutable registry mapping part numbers to component factories."""

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[], Component]] = {}

    def register(self, part_number: str, factory: Callable[[], Component]) -> None:
        """Add or replace a factory.

        Raises:
            ValueError: if the factory produces a part with a different
                part number (would make ASCII files unreadable).
        """
        sample = factory()
        if sample.part_number != part_number:
            raise ValueError(
                f"factory for {part_number!r} produced part "
                f"{sample.part_number!r}"
            )
        self._factories[part_number] = factory

    def create(self, part_number: str) -> Component:
        """Instantiate a part.

        Raises:
            KeyError: for unknown part numbers, listing what is available.
        """
        factory = self._factories.get(part_number)
        if factory is None:
            known = ", ".join(sorted(self._factories))
            raise KeyError(f"unknown part {part_number!r}; known parts: {known}")
        return factory()

    def part_numbers(self) -> list[str]:
        """Sorted list of registered part numbers."""
        return sorted(self._factories)

    def __contains__(self, part_number: str) -> bool:
        return part_number in self._factories

    def __len__(self) -> int:
        return len(self._factories)


def default_library() -> ComponentLibrary:
    """The standard catalogue used by the examples and benchmarks."""
    lib = ComponentLibrary()
    lib.register("X2-1u5", FilmCapacitorX2)
    lib.register("TAJ-D-100u", TantalumCapacitorSMD)
    lib.register("ELKO-470u", ElectrolyticCapacitor)
    lib.register("MLCC-100n", CeramicCapacitor)
    lib.register("BOBBIN-100u", BobbinChoke)
    lib.register("BOBBIN-S", small_bobbin_choke)
    lib.register("BOBBIN-L", large_bobbin_choke)
    lib.register("CMC-2W", cm_choke_2w)
    lib.register("SMD-IND-SH", shielded_power_inductor)
    lib.register("SMD-IND-UN", unshielded_power_inductor)
    lib.register("CMC-3W", cm_choke_3w)
    lib.register("MOSFET-DPAK", PowerMosfet)
    lib.register("DIODE-SMC", PowerDiode)
    lib.register("R-1206", ChipResistor)
    lib.register("SHUNT-10m", ShuntResistor)
    lib.register("CONN-2", Connector)
    lib.register("CTRL-SO8", ControllerIC)
    return lib
