"""Component base class: geometry, field model and parasitics in one object.

Every part in the library describes itself three ways, mirroring the paper's
modelling flow:

* **for the placer** — a rectangular footprint, a body height and a default
  clearance (the rectilinear approximation of section 4 of the paper);
* **for the field engine** — a simplified internal :class:`CurrentPath`
  (the paper's Fig. 3: the field-generating structure), its magnetic axis
  and, for cored parts, the effective-permeability correction;
* **for the circuit simulator** — electrical value plus parasitics (ESR and
  a geometric ESL derived from the very same current path, keeping the two
  domains consistent).

All dimensions are SI metres; convenience constructors accept millimetres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property

from ..geometry import Placement2D, Rect, Vec2, Vec3
from ..peec import (
    AIR_CORE,
    CoreMaterial,
    CurrentPath,
    loop_self_inductance,
)

__all__ = ["Component", "Pad", "DEFAULT_CLEARANCE"]

#: Default manufacturing clearance between component bodies [m].
DEFAULT_CLEARANCE = 0.5e-3


@dataclass(frozen=True)
class Pad:
    """A terminal pad in the component's local frame."""

    name: str
    position: Vec2


@dataclass
class Component:
    """A placeable, field-generating, simulatable part.

    Subclasses override :meth:`build_current_path` and set electrical
    parameters; this base class owns the shared geometry bookkeeping.

    Attributes:
        part_number: catalogue identifier (e.g. ``"X2-1u5"``).
        footprint_w: body extent along local x [m].
        footprint_h: body extent along local y [m].
        body_height: extent above the board [m].
        pads: terminal pads in the local frame.
        clearance: minimum body-to-body spacing required for manufacturing.
        core: magnetic core material (AIR_CORE for coreless parts).
        demag_factor: demagnetising factor of the core shape (unused for air).
        allowed_rotations_deg: rotations the placer may choose from.
    """

    part_number: str
    footprint_w: float
    footprint_h: float
    body_height: float
    pads: list[Pad] = field(default_factory=list)
    clearance: float = DEFAULT_CLEARANCE
    core: CoreMaterial = AIR_CORE
    demag_factor: float = 1.0 / 3.0
    allowed_rotations_deg: tuple[float, ...] = (0.0, 90.0, 180.0, 270.0)

    def __post_init__(self) -> None:
        if self.footprint_w <= 0.0 or self.footprint_h <= 0.0:
            raise ValueError(f"{self.part_number}: footprint must be positive")
        if self.body_height <= 0.0:
            raise ValueError(f"{self.part_number}: body height must be positive")

    # -- field model -----------------------------------------------------

    def build_current_path(self) -> CurrentPath:
        """The simplified field-generating structure, in the local frame.

        Subclasses must override.  The default raises so that a part that
        genuinely has no field model (a connector) can override with a
        minimal stub instead of silently contributing nothing.
        """
        raise NotImplementedError(f"{type(self).__name__} lacks a field model")

    @cached_property
    def current_path(self) -> CurrentPath:
        """Cached local-frame current path."""
        return self.build_current_path()

    @cached_property
    def mu_eff(self) -> float:
        """Effective permeability of the core (1.0 for air)."""
        return self.core.mu_eff(self.demag_factor)

    @cached_property
    def geometric_inductance(self) -> float:
        """Air-core loop self-inductance of the current path [H]."""
        return loop_self_inductance(self.current_path)

    @property
    def self_inductance(self) -> float:
        """Loop self-inductance including the core correction [H]."""
        return self.geometric_inductance * self.mu_eff

    def magnetic_axis_local(self) -> Vec3:
        """Unit magnetic axis in the local frame."""
        return self.current_path.magnetic_axis()

    def magnetic_axis_world(self, placement: Placement2D) -> Vec3:
        """Unit magnetic axis under a placement."""
        return placement.to_transform3d().apply_direction(self.magnetic_axis_local())

    def placed_current_path(self, placement: Placement2D) -> CurrentPath:
        """Current path mapped into board coordinates."""
        return self.current_path.transformed(placement.to_transform3d())

    @property
    def decoupling_residual(self) -> float:
        """Fraction of the PEMD that rotation can never remove (0..1).

        The cos(alpha) rule assumes the pair decouples at perpendicular
        axes.  That only holds for parts whose stray field is a clean
        in-plane dipole; a vertical-axis part is rotation-invariant, so its
        rules must not shrink with rotation at all.  The default uses the
        axis' out-of-plane fraction (|z| of the unit axis): 0 for an
        in-plane dipole, 1 for a vertical one.  Subclasses with rotating
        stray fields (three-winding CM chokes) override this.
        """
        return min(1.0, abs(self.magnetic_axis_local().z))

    def has_inplane_axis(self, tol: float = 0.3) -> bool:
        """True if the magnetic axis lies (mostly) in the board plane.

        Only in-plane axes give the placer leverage via rotation — a
        vertical-axis part couples rotation-invariantly.
        """
        axis = self.magnetic_axis_local()
        return math.hypot(axis.x, axis.y) > tol

    # -- placement model ---------------------------------------------------

    def footprint_rect_local(self) -> Rect:
        """Axis-aligned local footprint centred on the origin."""
        return Rect(
            -self.footprint_w / 2.0,
            -self.footprint_h / 2.0,
            self.footprint_w / 2.0,
            self.footprint_h / 2.0,
        )

    def footprint_area(self) -> float:
        """Footprint area [m^2]."""
        return self.footprint_w * self.footprint_h

    def max_extent(self) -> float:
        """Circumscribed-circle diameter — a rotation-independent size bound."""
        return math.hypot(self.footprint_w, self.footprint_h)

    # -- electrical model --------------------------------------------------

    @property
    def esl(self) -> float:
        """Equivalent series inductance [H] (geometric by default)."""
        return self.self_inductance

    @property
    def esr(self) -> float:
        """Equivalent series resistance [ohm]; subclasses override."""
        return 0.0

    def pad_position(self, name: str) -> Vec2:
        """Local position of a pad by name.

        Raises:
            KeyError: if no pad carries that name.
        """
        for pad in self.pads:
            if pad.name == name:
                return pad.position
        raise KeyError(f"{self.part_number} has no pad {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}({self.part_number!r}, "
            f"{self.footprint_w * 1e3:.1f}x{self.footprint_h * 1e3:.1f}mm)"
        )
