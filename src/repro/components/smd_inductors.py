"""SMD power inductors: shielded versus unshielded.

A direct consequence of the paper's methodology worth demonstrating:
component *construction* determines how much distance rule it demands.
An unshielded drum-core inductor throws most of its flux into the
neighbourhood; a magnetically shielded one (closed ferrite shell) keeps
the field inside — its ``stray_fraction`` is small, the fitted k(d) curve
drops, and the derived PEMD shrinks accordingly, letting the placer pack
the board tighter with the *same* electrical part.

Geometry: a vertical-axis drum winding (the standard SMD construction),
so these parts are rotation-invariant — exactly the case where the only
EMC levers left are distance and part selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geometry import Vec2, Vec3
from ..peec import CoreMaterial, CurrentPath, demagnetizing_factor_rod, ring_path
from .base import Component, Pad

__all__ = ["SmdPowerInductor", "shielded_power_inductor", "unshielded_power_inductor"]

#: Drum core with an open magnetic path: nearly all flux strays.
_DRUM_OPEN = CoreMaterial("drum-open", mu_r=2000.0, stray_fraction=0.9)

#: Drum core closed by a ferrite shield shell: little flux escapes.
_DRUM_SHIELDED = CoreMaterial("drum-shielded", mu_r=2000.0, stray_fraction=0.12)


@dataclass
class SmdPowerInductor(Component):
    """Vertical-axis SMD drum-core inductor (shielded or not).

    Attributes:
        turns: winding turns.
        coil_radius: mean winding radius [m].
        coil_height: winding stack height [m].
        shielded: closed ferrite shell around the drum.
        rated_inductance: optional catalogue value for the circuit model.
    """

    part_number: str = "SMD-IND-10u"
    footprint_w: float = 10e-3
    footprint_h: float = 10e-3
    body_height: float = 5e-3
    turns: int = 12
    coil_radius: float = 3.5e-3
    coil_height: float = 3.5e-3
    n_rings: int = 3
    wire_diameter: float = 0.6e-3
    shielded: bool = False
    rated_inductance: float | None = None
    pads: list[Pad] = field(
        default_factory=lambda: [Pad("1", Vec2(-4e-3, 0.0)), Pad("2", Vec2(4e-3, 0.0))]
    )

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.turns < 1:
            raise ValueError(f"{self.part_number}: turns must be >= 1")
        self.core = _DRUM_SHIELDED if self.shielded else _DRUM_OPEN
        self.demag_factor = demagnetizing_factor_rod(
            self.coil_height, 2.0 * self.coil_radius
        )

    def build_current_path(self) -> CurrentPath:
        """Vertical stack of segmented rings (drum winding)."""
        weight = self.turns / self.n_rings
        path: CurrentPath | None = None
        for i in range(self.n_rings):
            offset = (
                0.0
                if self.n_rings == 1
                else -self.coil_height / 2.0
                + self.coil_height * i / (self.n_rings - 1)
            )
            ring = ring_path(
                Vec3(0.0, 0.0, self.body_height / 2.0 + offset),
                self.coil_radius,
                segments=12,
                axis="z",
                wire_diameter=self.wire_diameter,
                weight=weight,
                name=self.part_number,
            )
            path = ring if path is None else path.merged_with(ring)
        assert path is not None
        path.name = self.part_number
        return path

    @property
    def inductance(self) -> float:
        """Inductance for the circuit model [H]."""
        if self.rated_inductance is not None:
            return self.rated_inductance
        return self.self_inductance

    @property
    def esr(self) -> float:
        """Winding resistance estimate [ohm]."""
        rho_cu = 1.72e-8
        wire_length = self.current_path.total_length()
        area = 3.141592653589793 * (self.wire_diameter / 2.0) ** 2
        return rho_cu * wire_length / area


def shielded_power_inductor() -> SmdPowerInductor:
    """10 µH-class shielded drum inductor."""
    return SmdPowerInductor(part_number="SMD-IND-SH", shielded=True)


def unshielded_power_inductor() -> SmdPowerInductor:
    """The same winding without the shield shell."""
    return SmdPowerInductor(part_number="SMD-IND-UN", shielded=False)
