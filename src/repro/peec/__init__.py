"""PEEC field engine: partial inductances, coupling factors, field maps.

The Partial Element Equivalent Circuit method discretises only the current-
carrying structures of the design into straight filaments; loop and mutual
inductances follow from analytic and quadrature partial-inductance formulas,
ferrite cores are handled by an effective-permeability correction, and a
solid ground plane by image currents.
"""

from .capacitance import (
    EPS0,
    equivalent_radius,
    mutual_capacitance_spheres,
    plate_capacitance,
    sphere_self_capacitance,
)
from .field import b_field, b_field_filament, b_field_grid, field_magnitude_map
from .filament import (
    MU0,
    Filament,
    mutual_inductance,
    mutual_inductance_parallel,
    neumann_mutual_inductance,
    neumann_mutual_matrix,
    pack_filaments,
    self_inductance_bar,
)
from .images import image_path, shielding_factor, with_ground_plane
from .inductance import (
    coupling_factor,
    loop_self_inductance,
    mutual_inductance_matrix,
    mutual_inductance_paths,
    mutual_inductance_paths_fast,
    partial_inductance_matrix,
)
from .mesh import CurrentPath, rectangle_path, ring_path
from .permeability import (
    AIR_CORE,
    FERRITE_3C90,
    FERRITE_N87,
    IRON_POWDER_26,
    CoreMaterial,
    demagnetizing_factor_rod,
    effective_permeability,
    stray_coupling_scale,
)

__all__ = [
    "MU0",
    "EPS0",
    "sphere_self_capacitance",
    "mutual_capacitance_spheres",
    "plate_capacitance",
    "equivalent_radius",
    "Filament",
    "mutual_inductance",
    "mutual_inductance_parallel",
    "neumann_mutual_inductance",
    "neumann_mutual_matrix",
    "pack_filaments",
    "self_inductance_bar",
    "CurrentPath",
    "ring_path",
    "rectangle_path",
    "coupling_factor",
    "loop_self_inductance",
    "mutual_inductance_matrix",
    "mutual_inductance_paths",
    "mutual_inductance_paths_fast",
    "partial_inductance_matrix",
    "b_field",
    "b_field_filament",
    "b_field_grid",
    "field_magnitude_map",
    "image_path",
    "with_ground_plane",
    "shielding_factor",
    "CoreMaterial",
    "demagnetizing_factor_rod",
    "effective_permeability",
    "stray_coupling_scale",
    "AIR_CORE",
    "FERRITE_N87",
    "FERRITE_3C90",
    "IRON_POWDER_26",
]
