"""Ground-plane shielding via the method of images.

The paper notes that the minimum-distance rules depend on *"the presence of
shielding planes like ground planes"*.  A solid, highly conductive plane
under the components reflects high-frequency magnetic fields; the standard
model replaces the plane by an **image** of every current filament, mirrored
through the plane with the sign convention of image theory:

* a *horizontal* current element has an **anti-parallel** image;
* a *vertical* element has a **parallel** image.

Both follow from mirroring the geometry through the plane and negating the
current weight, which is exactly what :func:`image_path` does.  Adding the
image to a component's current path before computing mutual inductances
yields the shielded coupling.
"""

from __future__ import annotations

from dataclasses import replace

from .mesh import CurrentPath

__all__ = ["image_path", "with_ground_plane", "shielding_factor"]


def image_path(path: CurrentPath, plane_z: float = 0.0) -> CurrentPath:
    """The image of a current path below a perfectly conducting plane.

    Geometry is mirrored through ``z = plane_z`` and every filament weight
    is negated; see module docstring for why this realises the correct
    image currents for both horizontal and vertical elements.
    """
    mirrored = [
        replace(f.mirrored_z(plane_z), weight=-f.weight) for f in path.filaments
    ]
    return CurrentPath(mirrored, name=f"{path.name}~image" if path.name else "image")


def with_ground_plane(path: CurrentPath, plane_z: float = 0.0) -> CurrentPath:
    """A path augmented with its ground-plane image (same terminal current).

    Use the returned path as the **source** operand of
    :func:`repro.peec.inductance.mutual_inductance_paths` against a *bare*
    victim path: the flux a victim sees is that of the real currents plus
    their images.  Augmenting both operands would double-count the plane
    (the image of the victim does not carry the victim's terminal current).
    Likewise the shielded self-inductance is
    ``L + M(path, image_path(path))``.
    """
    return path.merged_with(image_path(path, plane_z))


def shielding_factor(k_unshielded: float, k_shielded: float) -> float:
    """How strongly the plane suppresses a coupling (1 = no effect, >1 = shielding).

    Defined as ``|k_unshielded| / |k_shielded|``; returns ``inf`` when the
    shielded coupling vanishes entirely.
    """
    if abs(k_shielded) < 1e-18:
        return float("inf")
    return abs(k_unshielded) / abs(k_shielded)
