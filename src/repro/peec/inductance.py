"""Loop and mutual inductance of current paths, and coupling factors.

These routines aggregate the filament-level partial inductances of
:mod:`repro.peec.filament` into the quantities the EMI flow actually uses:

* ``loop_self_inductance(path)`` — the self-inductance of a component's
  internal current loop (its ESL contribution from geometry);
* ``mutual_inductance_paths(a, b)`` — the mutual inductance between two
  placed components, the raw ingredient of interference coupling;
* ``coupling_factor(a, b)`` — the dimensionless ``k = M / sqrt(La * Lb)``
  that the sensitivity analysis and the design rules work with.
"""

from __future__ import annotations

import numpy as np

from ..obs import get_tracer
from ..units import Dimensionless, Henries
from .filament import Filament, mutual_inductance, neumann_mutual_matrix
from .mesh import CurrentPath

__all__ = [
    "loop_self_inductance",
    "mutual_inductance_matrix",
    "mutual_inductance_paths",
    "mutual_inductance_paths_fast",
    "coupling_factor",
    "partial_inductance_matrix",
]


def partial_inductance_matrix(filaments: list[Filament], order: int = 12) -> np.ndarray:
    """Dense symmetric matrix of partial inductances for a filament list.

    Diagonal entries are rectangular-bar self-terms; off-diagonals are
    Neumann mutuals.  Weights are *not* applied — this is the raw PEEC
    matrix, useful for inspecting a discretisation.
    """
    n = len(filaments)
    tracer = get_tracer()
    with tracer.span("peec.inductance.assemble"):
        tracer.count("peec.filament_pairs", n * (n + 1) // 2)
        matrix = np.zeros((n, n), dtype=float)
        for i in range(n):
            matrix[i, i] = filaments[i].self_inductance()
            for j in range(i + 1, n):
                m = mutual_inductance(filaments[i], filaments[j], order)
                matrix[i, j] = m
                matrix[j, i] = m
    return matrix


def loop_self_inductance(path: CurrentPath, order: int = 12) -> Henries:
    """Self-inductance of a current path [H].

    ``L = sum_i w_i^2 L_ii + sum_{i != j} w_i w_j M_ij`` — the double sum
    over the path's own filaments with their signed turn weights.  For a
    physically sensible loop the result is positive; a negative value
    indicates a broken discretisation and raises.
    """
    fils = path.filaments
    n = len(fils)
    tracer = get_tracer()
    tracer.count("peec.self_inductance_evals")
    tracer.count("peec.filament_pairs", n * (n + 1) // 2)
    total = 0.0
    for i in range(n):
        wi = fils[i].weight
        total += wi * wi * fils[i].self_inductance()
        for j in range(i + 1, n):
            total += 2.0 * wi * fils[j].weight * mutual_inductance(fils[i], fils[j], order)
    if total <= 0.0:
        raise ValueError(
            f"non-positive loop inductance ({total:.3e} H) for path {path.name!r}: "
            "check filament directions/weights"
        )
    return total


def mutual_inductance_paths(a: CurrentPath, b: CurrentPath, order: int = 12) -> Henries:
    """Mutual inductance between two current paths [H] (signed).

    The sign encodes the relative winding sense under the chosen terminal
    current directions; the EMI circuit model carries it through so that
    field cancellation by opposed orientation (the paper's design rule)
    is representable.
    """
    tracer = get_tracer()
    tracer.count("peec.mutual_evals")
    tracer.count("peec.filament_pairs", len(a.filaments) * len(b.filaments))
    total = 0.0
    for fa in a.filaments:
        for fb in b.filaments:
            total += fa.weight * fb.weight * mutual_inductance(fa, fb, order)
    return total


def mutual_inductance_matrix(a: CurrentPath, b: CurrentPath, order: int = 8) -> np.ndarray:
    """Pairwise partial mutuals of two *disjoint* paths as one batch [H].

    A thin path-level wrapper over the vectorised
    :func:`repro.peec.filament.neumann_mutual_matrix` kernel: the whole
    filament-pair double loop collapses into numpy broadcasts.  Weights
    are *not* applied; entry ``(i, j)`` is the raw partial mutual of
    ``a.filaments[i]`` against ``b.filaments[j]``.

    Args:
        a, b: the two current paths (geometry in metres); must belong to
            different components so no filament pair nearly touches.
        order: Gauss–Legendre points per filament (dimensionless count).

    Returns:
        ``(len(a), len(b))`` array of partial mutual inductances [H].
    """
    tracer = get_tracer()
    tracer.count("peec.filament_pairs", len(a.filaments) * len(b.filaments))
    return neumann_mutual_matrix(a.filaments, b.filaments, order)


def mutual_inductance_paths_fast(a: CurrentPath, b: CurrentPath, order: int = 8) -> Henries:
    """Vectorised mutual inductance between two *disjoint* paths [H].

    Evaluates the Neumann integral for every filament pair in one numpy
    broadcast (:func:`mutual_inductance_matrix`) and contracts with the
    signed turn weights.  Valid when the two paths belong to different
    components — i.e. no filament pair overlaps or nearly touches — which
    is exactly the coupling-sweep use case; accuracy there is within a
    fraction of a percent of the scalar :func:`mutual_inductance_paths` at
    a fraction of the cost.  For a path against itself use
    :func:`loop_self_inductance`.
    """
    tracer = get_tracer()
    tracer.count("peec.mutual_evals")
    matrix = mutual_inductance_matrix(a, b, order)
    w_a = np.array([f.weight for f in a.filaments])
    w_b = np.array([f.weight for f in b.filaments])
    return float(np.sum((w_a[:, None] * w_b[None, :]) * matrix))


def coupling_factor(
    a: CurrentPath,
    b: CurrentPath,
    la: Henries | None = None,
    lb: Henries | None = None,
    order: int = 12,
) -> Dimensionless:
    """Magnetic coupling factor ``k = M / sqrt(La * Lb)`` (signed).

    Passing precomputed self-inductances avoids recomputing them in sweeps
    where only the relative placement changes (self-L is placement
    invariant).
    """
    if la is None:
        la = loop_self_inductance(a, order)
    if lb is None:
        lb = loop_self_inductance(b, order)
    m = mutual_inductance_paths(a, b, order)
    return m / np.sqrt(la * lb)
