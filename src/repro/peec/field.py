"""Biot–Savart magnetic field evaluation on filament meshes.

Used to draw the stray-field maps of the paper's Fig. 4 (two coupling
bobbin chokes) and Fig. 8 (preferred capacitor positions around common-mode
chokes), and for sanity-checking the PEEC coupling numbers against a direct
field picture.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Vec3
from .filament import MU0, Filament
from .mesh import CurrentPath

__all__ = ["b_field_filament", "b_field", "b_field_grid", "field_magnitude_map"]


def b_field_filament(f: Filament, point: Vec3, current: float = 1.0) -> Vec3:
    """Magnetic flux density of one finite straight filament at ``point`` [T].

    Standard finite-segment Biot–Savart:

    ``B = (mu0 I / 4 pi rho) * (sin(theta2) - sin(theta1)) * e_phi``

    where ``rho`` is the perpendicular distance from the field point to the
    filament's carrier line and the thetas are the angular positions of the
    segment ends.  Points closer than a conductor radius are clamped to
    avoid the line singularity.
    """
    amp = current * f.weight
    t = f.direction
    rel = point - f.start
    axial = rel.dot(t)
    perp = rel - t * axial
    rho = perp.norm()
    radius_clamp = max(f.width, f.thickness) * 0.5
    if rho < radius_clamp:
        rho = radius_clamp
        if perp.norm() < 1e-15:
            # On the axis: field direction undefined but magnitude ~0 outside
            # the conductor; report zero.
            return Vec3.zero()
        perp = perp.normalized() * rho
    e_rho = perp.normalized()
    e_phi = t.cross(e_rho)
    length = f.length
    sin1 = -axial / np.hypot(axial, rho)
    sin2 = (length - axial) / np.hypot(length - axial, rho)
    magnitude = MU0 * amp / (4.0 * np.pi * rho) * (sin2 - sin1)
    return e_phi * magnitude


def b_field(path: CurrentPath, point: Vec3, current: float = 1.0) -> Vec3:
    """Total flux density of a current path at one point [T]."""
    total = Vec3.zero()
    for f in path.filaments:
        total = total + b_field_filament(f, point, current)
    return total


def b_field_grid(
    paths: list[CurrentPath],
    xs: np.ndarray,
    ys: np.ndarray,
    z: float = 0.0,
    currents: list[float] | None = None,
) -> np.ndarray:
    """Flux density vectors on a horizontal grid.

    Args:
        paths: the field-generating structures.
        xs, ys: 1-D coordinate arrays defining the grid.
        z: evaluation height above the board.
        currents: per-path terminal currents (default 1 A each).

    Returns:
        Array of shape ``(len(ys), len(xs), 3)`` in tesla.
    """
    if currents is None:
        currents = [1.0] * len(paths)
    if len(currents) != len(paths):
        raise ValueError("currents must match paths")
    out = np.zeros((len(ys), len(xs), 3), dtype=float)
    for iy, y in enumerate(ys):
        for ix, x in enumerate(xs):
            p = Vec3(float(x), float(y), z)
            b = Vec3.zero()
            for path, current in zip(paths, currents, strict=True):
                b = b + b_field(path, p, current)
            out[iy, ix, 0] = b.x
            out[iy, ix, 1] = b.y
            out[iy, ix, 2] = b.z
    return out


def field_magnitude_map(
    paths: list[CurrentPath],
    xs: np.ndarray,
    ys: np.ndarray,
    z: float = 0.0,
    currents: list[float] | None = None,
) -> np.ndarray:
    """``|B|`` on a horizontal grid, shape ``(len(ys), len(xs))`` [T]."""
    vecs = b_field_grid(paths, xs, ys, z, currents)
    return np.sqrt(np.einsum("ijk,ijk->ij", vecs, vecs))
