"""Partial inductances of straight current filaments.

The PEEC method (Ruehli 1974) discretises only the conducting structures of
a circuit into straight segments and computes *partial* self and mutual
inductances for them; summing over a closed current path yields loop
inductances and, between two paths, the mutual inductance that drives
magnetic interference coupling.

Three calculations live here:

* the **Neumann double integral** for the mutual inductance of two arbitrary
  filaments, evaluated with nested Gauss–Legendre quadrature;
* the **closed form** for parallel filaments (used both as a fast path and
  as an independent cross-check of the quadrature);
* Ruehli's approximation for the **partial self-inductance of a rectangular
  bar**, which regularises the divergent filament self-term with the
  conductor cross-section.

All quantities are SI (metres, henries).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from ..geometry import Transform3D, Vec3
from ..units import Dimensionless, Henries, Meters

__all__ = [
    "MU0",
    "Filament",
    "mutual_inductance",
    "mutual_inductance_parallel",
    "neumann_mutual_inductance",
    "neumann_mutual_matrix",
    "pack_filaments",
    "self_inductance_bar",
]

#: Vacuum permeability [H/m].
MU0 = 4.0e-7 * math.pi

#: Default Gauss–Legendre order per filament for the Neumann integral.
_DEFAULT_ORDER = 12

# Cache of Gauss–Legendre nodes/weights on [0, 1] by order.
_GL_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _gauss_legendre_01(order: int) -> tuple[np.ndarray, np.ndarray]:
    """Nodes and weights of Gauss–Legendre quadrature mapped onto [0, 1]."""
    cached = _GL_CACHE.get(order)
    if cached is None:
        x, w = np.polynomial.legendre.leggauss(order)
        cached = (0.5 * (x + 1.0), 0.5 * w)
        _GL_CACHE[order] = cached
    return cached


@dataclass(frozen=True)
class Filament:
    """A straight current filament with an associated conductor cross-section.

    Attributes:
        start: start point [m].
        end: end point [m].
        width: conductor width [m] — used only for the self-term.
        thickness: conductor thickness [m] — used only for the self-term.
        weight: signed current weight.  A filament traversed by ``n`` turns
            of the winding carries ``weight = n``; image filaments carry a
            negated weight.
    """

    start: Vec3
    end: Vec3
    width: Meters = 1e-3
    thickness: Meters = 35e-6
    weight: Dimensionless = 1.0

    def __post_init__(self) -> None:
        if self.width <= 0.0 or self.thickness <= 0.0:
            raise ValueError("filament cross-section must be positive")
        if self.length < 1e-12:
            raise ValueError("zero-length filament")

    @property
    def length(self) -> Meters:
        """Filament length [m]."""
        return self.start.distance_to(self.end)

    @property
    def direction(self) -> Vec3:
        """Unit vector from start to end."""
        return (self.end - self.start).normalized()

    @property
    def midpoint(self) -> Vec3:
        """Geometric midpoint."""
        return (self.start + self.end) * 0.5

    def transformed(self, transform: Transform3D) -> "Filament":
        """Filament mapped through a rigid transform (weight preserved)."""
        return replace(self, start=transform.apply(self.start), end=transform.apply(self.end))

    def reversed(self) -> "Filament":
        """Same geometry, opposite traversal direction."""
        return replace(self, start=self.end, end=self.start)

    def mirrored_z(self, plane_z: Meters) -> "Filament":
        """Geometric mirror through the plane ``z = plane_z`` (weight kept).

        Image-current construction (geometry mirror + weight negation) is
        done by :mod:`repro.peec.images`, which owns the sign convention.
        """
        return replace(
            self, start=self.start.mirrored_z(plane_z), end=self.end.mirrored_z(plane_z)
        )

    def split(self, pieces: int) -> list["Filament"]:
        """Subdivide into ``pieces`` equal filaments (for near-field accuracy)."""
        if pieces < 1:
            raise ValueError("pieces must be >= 1")
        delta = (self.end - self.start) / pieces
        return [
            replace(self, start=self.start + delta * i, end=self.start + delta * (i + 1))
            for i in range(pieces)
        ]

    def self_inductance(self) -> Henries:
        """Partial self-inductance of this filament's rectangular bar [H]."""
        return self_inductance_bar(self.length, self.width, self.thickness)


def self_inductance_bar(length: Meters, width: Meters, thickness: Meters) -> Henries:
    """Partial self-inductance of a straight rectangular bar (Ruehli).

    ``L = (mu0 * l / 2pi) * (ln(2l/(w+t)) + 0.5 + 0.2235 (w+t)/l)``

    The formula assumes ``l`` of the same order as or larger than ``w+t``;
    for very stubby bars the logarithm can go negative, in which case the
    result is clamped to a small positive value proportional to the length —
    stubby segments contribute negligibly to loop inductance anyway.
    """
    if length <= 0.0:
        raise ValueError("length must be positive")
    if width <= 0.0 or thickness <= 0.0:
        raise ValueError("cross-section must be positive")
    wt = width + thickness
    value = (MU0 * length / (2.0 * math.pi)) * (
        math.log(2.0 * length / wt) + 0.5 + 0.2235 * wt / length
    )
    floor = MU0 * length / (20.0 * math.pi)
    return max(value, floor)


def neumann_mutual_inductance(
    f1: Filament, f2: Filament, order: int = _DEFAULT_ORDER
) -> Henries:
    """Mutual partial inductance via the Neumann double integral [H].

    ``M = (mu0 / 4pi) (t1 . t2) * l1 * l2 * sum_ij w_i w_j / r_ij``

    evaluated with an ``order`` x ``order`` Gauss–Legendre rule.  Accurate to
    better than 0.1 % once the filament separation exceeds roughly a quarter
    of the filament length; closer pairs are subdivided by the caller
    (:func:`mutual_inductance` handles that automatically).

    Note: the geometric weights of the filaments are *not* applied — this is
    the raw pairwise partial inductance.
    """
    t1 = f1.direction
    t2 = f2.direction
    cos_angle = t1.dot(t2)
    if abs(cos_angle) < 1e-12:
        return 0.0  # Perpendicular filaments do not couple (dl1 . dl2 = 0).

    nodes, weights = _gauss_legendre_01(order)
    a = f1.start.as_array()
    d1 = (f1.end - f1.start).as_array()
    b = f2.start.as_array()
    d2 = (f2.end - f2.start).as_array()

    p1 = a[None, :] + nodes[:, None] * d1[None, :]  # (n, 3)
    p2 = b[None, :] + nodes[:, None] * d2[None, :]  # (n, 3)
    diff = p1[:, None, :] - p2[None, :, :]  # (n, n, 3)
    r = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    r = np.maximum(r, 1e-12)
    integral = float(weights @ (1.0 / r) @ weights)
    return MU0 / (4.0 * math.pi) * cos_angle * f1.length * f2.length * integral


def pack_filaments(
    filaments: list[Filament],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Filament list as dense arrays for the batched kernels.

    Args:
        filaments: the segments to pack (geometry in metres).

    Returns:
        ``(starts, deltas, lengths, weights)`` — shapes ``(n, 3)``,
        ``(n, 3)``, ``(n,)``, ``(n,)``; starts/deltas/lengths in metres,
        weights dimensionless signed turn counts.
    """
    starts = np.array([[f.start.x, f.start.y, f.start.z] for f in filaments])
    ends = np.array([[f.end.x, f.end.y, f.end.z] for f in filaments])
    weights = np.array([f.weight for f in filaments])
    deltas = ends - starts
    lengths = np.linalg.norm(deltas, axis=1)
    return starts, deltas, lengths, weights


def neumann_mutual_matrix(
    filaments_a: list[Filament], filaments_b: list[Filament], order: int = 8
) -> np.ndarray:
    """Raw pairwise Neumann mutual inductances as one batched array op [H].

    Vectorises the classic double loop over filament pairs: all
    ``na * nb`` double integrals are evaluated in a single broadcast over
    a ``(na, nb, order, order, 3)`` difference tensor.  Geometric weights
    are *not* applied — entry ``(i, j)`` is the raw partial mutual of
    ``filaments_a[i]`` against ``filaments_b[j]``, exactly what
    :func:`neumann_mutual_inductance` returns for that pair (without the
    perpendicular short-circuit or any subdivision, so the caller owns
    near-field accuracy — valid for the disjoint paths of a coupling
    sweep, not for a path against itself).

    Args:
        filaments_a, filaments_b: the two filament lists (geometry in
            metres).
        order: Gauss–Legendre points per filament (dimensionless count).

    Returns:
        ``(na, nb)`` array of partial mutual inductances [H].
    """
    nodes, weights = _gauss_legendre_01(order)
    s_a, d_a, len_a, _ = pack_filaments(filaments_a)
    s_b, d_b, len_b, _ = pack_filaments(filaments_b)

    # Quadrature points: (na, g, 3) and (nb, g, 3).
    p_a = s_a[:, None, :] + nodes[None, :, None] * d_a[:, None, :]
    p_b = s_b[:, None, :] + nodes[None, :, None] * d_b[:, None, :]

    # Pairwise 1/r integrals: result (na, nb).
    diff = p_a[:, None, :, None, :] - p_b[None, :, None, :, :]  # (na, nb, g, g, 3)
    r = np.sqrt(np.einsum("abijk,abijk->abij", diff, diff))
    r[r < 1e-12] = 1e-12
    integral = np.einsum("i,j,abij->ab", weights, weights, 1.0 / r)

    # Direction cosines and length products (lengths are >= 1e-12 by the
    # Filament invariant; the floor only guards hand-packed arrays).
    len_a[len_a < 1e-12] = 1e-12
    len_b[len_b < 1e-12] = 1e-12
    t_a = d_a * (1.0 / len_a)[:, None]
    t_b = d_b * (1.0 / len_b)[:, None]
    cos = t_a @ t_b.T
    scale = (len_a[:, None] * len_b[None, :]) * cos
    return np.asarray(MU0 / (4.0 * np.pi) * scale * integral)


def mutual_inductance_parallel(f1: Filament, f2: Filament) -> Henries:
    """Closed-form mutual inductance of two parallel filaments [H].

    Uses the textbook antiderivative ``Phi(u) = u asinh(u/d) - sqrt(u^2+d^2)``
    of the axial-offset kernel:

    ``M = (mu0/4pi) [Phi(a2-b1) - Phi(a2-b2) - Phi(a1-b1) + Phi(a1-b2)]``

    where ``a``/``b`` are axial coordinates of the filament ends and ``d``
    is the perpendicular distance between the carrier lines.  The sign
    follows the traversal directions (anti-parallel filaments get M < 0).

    Raises:
        ValueError: if the filaments are not parallel (within 1e-9 rad).
    """
    t1 = f1.direction
    t2 = f2.direction
    cos_angle = t1.dot(t2)
    if abs(abs(cos_angle) - 1.0) > 1e-9:
        raise ValueError("filaments are not parallel")
    sign = 1.0 if cos_angle > 0.0 else -1.0

    # Axial coordinates along t1, perpendicular offset of line 2 from line 1.
    # For anti-parallel filaments b2 < b1; the Phi combination below then
    # evaluates to a negative number, which is exactly the physical sign.
    a1 = 0.0
    a2 = f1.length
    rel_start = f2.start - f1.start
    b1 = rel_start.dot(t1)
    b2 = b1 + sign * f2.length
    perp = rel_start - t1 * rel_start.dot(t1)
    d = perp.norm()
    if d < 1e-12:
        # Collinear filaments: the kernel is singular if they overlap;
        # offset by a tiny distance consistent with a thin conductor.
        d = 1e-9

    def phi(u: float) -> float:
        return u * math.asinh(u / d) - math.sqrt(u * u + d * d)

    total = phi(a2 - b1) - phi(a2 - b2) - phi(a1 - b1) + phi(a1 - b2)
    return MU0 / (4.0 * math.pi) * total


def _are_parallel(f1: Filament, f2: Filament) -> bool:
    return abs(abs(f1.direction.dot(f2.direction)) - 1.0) < 1e-12


def mutual_inductance(f1: Filament, f2: Filament, order: int = _DEFAULT_ORDER) -> Henries:
    """Mutual partial inductance of two filaments, choosing the best method.

    Parallel pairs use the exact closed form.  Skewed pairs use quadrature,
    with automatic subdivision when the pair is close relative to its length
    (the Neumann kernel then varies too quickly for a low-order rule).
    """
    if _are_parallel(f1, f2):
        return mutual_inductance_parallel(f1, f2)

    gap = f1.midpoint.distance_to(f2.midpoint)
    longest = max(f1.length, f2.length)
    if gap > 1e-12 and longest / gap > 4.0:
        pieces = min(8, int(math.ceil(longest / gap / 2.0)))
        total = 0.0
        for s1 in f1.split(pieces):
            for s2 in f2.split(pieces):
                total += neumann_mutual_inductance(s1, s2, order)
        return total
    return neumann_mutual_inductance(f1, f2, order)
