"""Effective permeability — the paper's work-around for ferrite cores.

PEEC cannot represent inhomogeneous permeability, so (following Hoene et
al., PESC 2005, cited as [4]) inductances and mutual inductances computed
for the *air-core* segmented-ring winding model are scaled by an **effective
permeability** factor.  The factor accounts for the core while the field
*path shape* stays the air-core one; the paper quotes a resulting error of
about 15 % for practical setups, acceptable for EMI prediction, because
stray-field lines run mostly through non-ferromagnetic material.

The classic open-magnetic-circuit result is used:

``mu_eff = mu_r / (1 + N * (mu_r - 1))``

with ``N`` the demagnetising factor of the core shape.  For a gapped or
open bobbin core ``N`` is dominated by geometry, which is why even a huge
material ``mu_r`` saturates at a modest ``mu_eff``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..units import Dimensionless, Meters

__all__ = [
    "demagnetizing_factor_rod",
    "effective_permeability",
    "CoreMaterial",
    "FERRITE_N87",
    "FERRITE_3C90",
    "IRON_POWDER_26",
    "AIR_CORE",
    "stray_coupling_scale",
]


def demagnetizing_factor_rod(length: Meters, diameter: Meters) -> Dimensionless:
    """Demagnetising factor of a cylindrical rod magnetised along its axis.

    Uses the Ollendorff/Bozorth fit ``N = (ln(2m) - 1) / m^2 * ...`` in the
    practical simplified form ``N ≈ (ln(2m) - 1) / m**2`` for aspect ratio
    ``m = length/diameter > 2``, clamped into (0, 1/3] and to the sphere
    value 1/3 for stubby rods.
    """
    if length <= 0.0 or diameter <= 0.0:
        raise ValueError("rod dimensions must be positive")
    m = length / diameter
    if m <= 1.0:
        return 1.0 / 3.0
    n = (math.log(2.0 * m) - 1.0) / (m * m)
    return min(max(n, 1e-6), 1.0 / 3.0)


def effective_permeability(mu_r: Dimensionless, demag_factor: Dimensionless) -> Dimensionless:
    """Effective permeability of an open core: ``mu_r / (1 + N (mu_r - 1))``.

    Args:
        mu_r: relative permeability of the core material (>= 1).
        demag_factor: shape demagnetising factor N in [0, 1].
    """
    if mu_r < 1.0:
        raise ValueError("mu_r must be >= 1")
    if not 0.0 <= demag_factor <= 1.0:
        raise ValueError("demagnetising factor must lie in [0, 1]")
    return mu_r / (1.0 + demag_factor * (mu_r - 1.0))


@dataclass(frozen=True)
class CoreMaterial:
    """A magnetic core material for the effective-permeability correction.

    Attributes:
        name: catalogue name.
        mu_r: low-frequency relative permeability.
        stray_fraction: fraction of the winding flux that leaves the core as
            stray field (drives how strongly mutual couplings scale; ~1 for
            open rods, small for closed toroids).
    """

    name: str
    mu_r: Dimensionless
    stray_fraction: Dimensionless = 1.0

    def mu_eff(self, demag_factor: Dimensionless) -> Dimensionless:
        """Effective permeability for a given core shape."""
        return effective_permeability(self.mu_r, demag_factor)


#: Common catalogue materials.
FERRITE_N87 = CoreMaterial("N87", mu_r=2200.0, stray_fraction=0.9)
FERRITE_3C90 = CoreMaterial("3C90", mu_r=2300.0, stray_fraction=0.9)
IRON_POWDER_26 = CoreMaterial("Iron-26", mu_r=75.0, stray_fraction=1.0)
AIR_CORE = CoreMaterial("air", mu_r=1.0, stray_fraction=1.0)


def stray_coupling_scale(mu_eff_a: Dimensionless, mu_eff_b: Dimensionless) -> Dimensionless:
    """Scale factor applied to an air-core mutual inductance M_air.

    The self-inductances scale with ``mu_eff`` each; the *coupling factor*
    ``k = M / sqrt(La Lb)`` of stray fields is, to first order, preserved if
    M scales with ``sqrt(mu_eff_a * mu_eff_b)`` — the field redirection by
    the cores is neglected exactly as the paper prescribes (the documented
    ~15 % error source).
    """
    if mu_eff_a < 1.0 or mu_eff_b < 1.0:
        raise ValueError("effective permeabilities must be >= 1")
    return math.sqrt(mu_eff_a * mu_eff_b)
