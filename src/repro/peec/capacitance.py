"""Partial capacitances — the electric-field side of PEEC.

The paper's introduction notes that magnetic coupling dominates the
considered range but *"capacitive coupling gains more influence at higher
frequencies"*.  This module provides the standard first-order partial
capacitances needed to extend the flow upward in frequency:

* isolated-sphere and sphere-pair capacitances (component bodies reduced
  to equivalent spheres, the E-field analogue of the dipole reduction);
* parallel-plate capacitance (component body over a ground plane).

All values are SI farads.
"""

from __future__ import annotations

import math

__all__ = [
    "EPS0",
    "sphere_self_capacitance",
    "mutual_capacitance_spheres",
    "plate_capacitance",
    "equivalent_radius",
]

#: Vacuum permittivity [F/m].
EPS0 = 8.8541878128e-12


def sphere_self_capacitance(radius: float) -> float:
    """Capacitance of an isolated conducting sphere: ``4 pi eps0 r``.

    Raises:
        ValueError: for a non-positive radius.
    """
    if radius <= 0.0:
        raise ValueError("radius must be positive")
    return 4.0 * math.pi * EPS0 * radius


def mutual_capacitance_spheres(r1: float, r2: float, distance: float) -> float:
    """First-order mutual capacitance of two spheres at centre ``distance``.

    The image-charge series truncated at first order:
    ``C12 = 4 pi eps0 r1 r2 / d`` — accurate to a few percent once
    ``d > 2 (r1 + r2)`` and a sensible upper bound closer in, where the
    value is clamped so the two-body system stays physical
    (``C12 < min(C1, C2)``).

    Raises:
        ValueError: for non-positive radii or distance.
    """
    if r1 <= 0.0 or r2 <= 0.0:
        raise ValueError("radii must be positive")
    if distance <= 0.0:
        raise ValueError("distance must be positive")
    c12 = 4.0 * math.pi * EPS0 * r1 * r2 / distance
    cap_floor = min(sphere_self_capacitance(r1), sphere_self_capacitance(r2))
    return min(c12, 0.9 * cap_floor)


def plate_capacitance(area: float, gap: float, eps_r: float = 1.0) -> float:
    """Parallel-plate capacitance ``eps0 eps_r A / d`` (fringing neglected).

    Raises:
        ValueError: for non-positive area or gap.
    """
    if area <= 0.0 or gap <= 0.0:
        raise ValueError("area and gap must be positive")
    if eps_r < 1.0:
        raise ValueError("eps_r must be >= 1")
    return EPS0 * eps_r * area / gap


def equivalent_radius(footprint_w: float, footprint_h: float, body_height: float) -> float:
    """Equivalent-sphere radius of a cuboid body.

    Uses the radius of the sphere with the same surface area — the
    standard reduction for capacitance estimates of convex bodies (exact
    for the sphere, within ~10 % for typical package aspect ratios).
    """
    if footprint_w <= 0.0 or footprint_h <= 0.0 or body_height <= 0.0:
        raise ValueError("body dimensions must be positive")
    surface = 2.0 * (
        footprint_w * footprint_h
        + footprint_w * body_height
        + footprint_h * body_height
    )
    return math.sqrt(surface / (4.0 * math.pi))
