"""Current paths — ordered filament meshes for component field models.

A :class:`CurrentPath` is the *"simplified field generating structure"* of a
component (the paper's Fig. 3): the internal current loop of a capacitor,
the segmented rings of a choke winding, a trace on the board.  Paths are
built in the component's local frame and mapped into board coordinates by
the placement transform.

Besides holding geometry, the mesh knows how to compute its magnetic dipole
moment (per ampere), which both the fast dipole coupling estimate and the
magnetic-axis extraction for the cos(alpha) placement rule use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..geometry import Transform3D, Vec3
from ..obs import get_tracer
from .filament import Filament

__all__ = ["CurrentPath", "ring_path", "rectangle_path"]


@dataclass
class CurrentPath:
    """An ordered collection of filaments carrying the same terminal current.

    Attributes:
        filaments: the segments; each carries a signed ``weight`` so that a
            multi-turn winding can reuse one geometric ring per layer.
        name: label used in reports and the coupling database.
    """

    filaments: list[Filament] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        if not self.filaments:
            raise ValueError("a current path needs at least one filament")

    def __len__(self) -> int:
        return len(self.filaments)

    def __iter__(self):
        return iter(self.filaments)

    def transformed(self, transform: Transform3D) -> "CurrentPath":
        """Map the whole path through a rigid transform."""
        return CurrentPath([f.transformed(transform) for f in self.filaments], self.name)

    def total_length(self) -> float:
        """Sum of filament lengths, weighted by |turns| (wire length)."""
        return math.fsum(f.length * abs(f.weight) for f in self.filaments)

    def magnetic_moment(self) -> Vec3:
        """Magnetic dipole moment per ampere of terminal current [m^2].

        ``m = 1/2 * sum_k w_k * (r_mid,k x l_k)`` — exact for closed loops,
        a useful leading-order characterisation for nearly closed ones.
        """
        m = Vec3.zero()
        for f in self.filaments:
            dl = (f.end - f.start) * f.weight
            m = m + f.midpoint.cross(dl) * 0.5
        return m

    def magnetic_axis(self) -> Vec3:
        """Unit vector along the dipole moment.

        Falls back to the board normal for paths with a (near-)zero moment,
        e.g. a straight trace, which has no meaningful loop axis.
        """
        m = self.magnetic_moment()
        if m.norm() < 1e-12:
            return Vec3(0.0, 0.0, 1.0)
        return m.normalized()

    def centroid(self) -> Vec3:
        """Length-weighted centroid of the path."""
        total_len = math.fsum(f.length for f in self.filaments)
        acc = Vec3.zero()
        for f in self.filaments:
            acc = acc + f.midpoint * f.length
        return acc / total_len

    def closure_error(self) -> float:
        """Distance between the path end and start (0 for a closed loop).

        Only meaningful for single-loop paths built head-to-tail; multi-ring
        winding models report the closure of the *last* ring.
        """
        return self.filaments[-1].end.distance_to(self.filaments[0].start)

    def merged_with(self, other: "CurrentPath") -> "CurrentPath":
        """Concatenate two paths carrying the same terminal current."""
        return CurrentPath(self.filaments + other.filaments, self.name or other.name)

    def scaled_weights(self, factor: float) -> "CurrentPath":
        """Copy with every filament weight multiplied by ``factor``."""
        from dataclasses import replace

        return CurrentPath(
            [replace(f, weight=f.weight * factor) for f in self.filaments], self.name
        )


def ring_path(
    center: Vec3,
    radius: float,
    segments: int = 12,
    axis: str = "z",
    wire_diameter: float = 0.8e-3,
    weight: float = 1.0,
    name: str = "",
) -> CurrentPath:
    """A circular ring approximated by straight filaments.

    This is the paper's *"simplified winding setup (segmented rings)"* used
    for chokes.  ``axis`` selects the ring normal: ``"z"`` (flat on the
    board), ``"x"`` or ``"y"`` (standing rings, horizontal magnetic axis).

    Args:
        center: ring centre in local coordinates.
        radius: ring radius [m].
        segments: number of straight segments (12 keeps the perimeter error
            below 1.2 %, adequate against the method's ~15 % budget).
        axis: ring normal direction.
        wire_diameter: conductor diameter for the self-term cross-section.
        weight: turns weight applied to every filament.
        name: path label.
    """
    if segments < 3:
        raise ValueError("a ring needs at least 3 segments")
    if radius <= 0.0:
        raise ValueError("radius must be positive")
    pts: list[Vec3] = []
    for i in range(segments):
        angle = 2.0 * math.pi * i / segments
        u = radius * math.cos(angle)
        v = radius * math.sin(angle)
        if axis == "z":
            pts.append(center + Vec3(u, v, 0.0))
        elif axis == "x":
            pts.append(center + Vec3(0.0, u, v))
        elif axis == "y":
            pts.append(center + Vec3(v, 0.0, u))
        else:
            raise ValueError(f"axis must be 'x', 'y' or 'z', got {axis!r}")
    filaments = [
        Filament(
            pts[i],
            pts[(i + 1) % segments],
            width=wire_diameter,
            thickness=wire_diameter,
            weight=weight,
        )
        for i in range(segments)
    ]
    get_tracer().count("peec.filaments_meshed", segments)
    return CurrentPath(filaments, name=name)


def rectangle_path(
    corner_a: Vec3,
    corner_b: Vec3,
    normal: str = "y",
    width: float = 1e-3,
    thickness: float = 0.2e-3,
    weight: float = 1.0,
    name: str = "",
) -> CurrentPath:
    """A rectangular loop in a coordinate plane between two opposite corners.

    Used for capacitor internal loops (pad -> electrode -> pad) where the
    loop lies in a vertical plane.  ``normal`` names the axis perpendicular
    to the loop plane; the two corners must differ in exactly the two
    in-plane coordinates.
    """
    a = corner_a
    b = corner_b
    if normal == "y":
        p1, p2, p3, p4 = a, Vec3(b.x, a.y, a.z), Vec3(b.x, a.y, b.z), Vec3(a.x, a.y, b.z)
    elif normal == "x":
        p1, p2, p3, p4 = a, Vec3(a.x, b.y, a.z), Vec3(a.x, b.y, b.z), Vec3(a.x, a.y, b.z)
    elif normal == "z":
        p1, p2, p3, p4 = a, Vec3(b.x, a.y, a.z), Vec3(b.x, b.y, a.z), Vec3(a.x, b.y, a.z)
    else:
        raise ValueError(f"normal must be 'x', 'y' or 'z', got {normal!r}")
    corners = [p1, p2, p3, p4]
    filaments = []
    for i in range(4):
        s = corners[i]
        e = corners[(i + 1) % 4]
        if s.distance_to(e) < 1e-12:
            raise ValueError("degenerate rectangle loop: corners coincide in-plane")
        filaments.append(Filament(s, e, width=width, thickness=thickness, weight=weight))
    get_tracer().count("peec.filaments_meshed", 4)
    return CurrentPath(filaments, name=name)
