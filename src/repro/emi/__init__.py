"""EMI measurement substrate: LISN, spectra, receiver model, CISPR limits.

Everything needed to turn a circuit simulation into a CISPR-25-style
conducted-emission plot — the y-axis of the paper's evaluation figures.
"""

from .limits import (
    CISPR25_CLASS3_AVG,
    CISPR25_CLASS3_PEAK,
    CISPR25_CLASS5_PEAK,
    LimitLine,
    LimitSegment,
)
from .lisn import LISN_INDUCTANCE, RECEIVER_IMPEDANCE, LisnPorts, add_lisn
from .receiver import EmiReceiver, cispr_rbw, quasi_peak_correction_db
from .separation import ModeSplit, separate_modes
from .spectrum import Spectrum, dbuv_to_volts, volts_to_dbuv

__all__ = [
    "Spectrum",
    "volts_to_dbuv",
    "dbuv_to_volts",
    "add_lisn",
    "LisnPorts",
    "LISN_INDUCTANCE",
    "RECEIVER_IMPEDANCE",
    "EmiReceiver",
    "cispr_rbw",
    "quasi_peak_correction_db",
    "LimitLine",
    "LimitSegment",
    "CISPR25_CLASS3_PEAK",
    "CISPR25_CLASS5_PEAK",
    "CISPR25_CLASS3_AVG",
    "ModeSplit",
    "separate_modes",
]
