"""CISPR 25 artificial network (LISN) — the conducted-emission testbed.

The paper's measurements (Figs. 1, 2, 12) follow CISPR 25: the supply
reaches the converter through a 5 µH / 50 Ω artificial network per line,
and the interference voltage is read at the network's measurement port.
:func:`add_lisn` splices that network into a circuit; the converter models
in :mod:`repro.converters` use one LISN in the positive supply line (single
line measurement, as in the paper's plots).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit import Circuit, Inductor

__all__ = ["LisnPorts", "add_lisn", "LISN_INDUCTANCE", "RECEIVER_IMPEDANCE"]

#: CISPR 25 artificial-network series inductance [H].
LISN_INDUCTANCE = 5e-6

#: Receiver input impedance terminating the measurement port [ohm].
RECEIVER_IMPEDANCE = 50.0

#: Supply-side decoupling capacitor [F].
_SUPPLY_CAP = 1e-6

#: Measurement-port coupling capacitor [F].
_COUPLING_CAP = 0.1e-6

#: Discharge resistor across the measurement path [ohm].
_DISCHARGE_RESISTOR = 1e3


@dataclass(frozen=True)
class LisnPorts:
    """Node names and key elements of one spliced-in LISN."""

    supply_node: str
    eut_node: str
    measurement_node: str
    series_inductor: Inductor


def add_lisn(circuit: Circuit, name: str, supply_node: str, eut_node: str) -> LisnPorts:
    """Insert a CISPR 25 5 µH artificial network between supply and EUT.

    Topology (all shunt elements to ground)::

        supply --[L 5u]-- eut
        supply --[C 1u]-- 0
        eut --[C 0.1u]-- meas --[R 50]-- 0
                          meas --[R 1k]-- 0

    Args:
        circuit: circuit to extend.
        name: prefix for the created element names.
        supply_node: node towards the (ideal) supply.
        eut_node: node towards the equipment under test.

    Returns:
        The port bookkeeping, including the measurement node whose voltage
        is the conducted-emission reading.
    """
    meas = f"{name}.meas"
    inductor = circuit.add_inductor(f"{name}.L", supply_node, eut_node, LISN_INDUCTANCE)
    circuit.add_capacitor(f"{name}.Csup", supply_node, "0", _SUPPLY_CAP)
    circuit.add_capacitor(f"{name}.Cmeas", eut_node, meas, _COUPLING_CAP)
    circuit.add_resistor(f"{name}.Rrx", meas, "0", RECEIVER_IMPEDANCE)
    circuit.add_resistor(f"{name}.Rdis", meas, "0", _DISCHARGE_RESISTOR)
    return LisnPorts(supply_node, eut_node, meas, inductor)
