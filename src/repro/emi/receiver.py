"""EMI test receiver model: resolution-bandwidth binning and detectors.

A measurement receiver sweeps a tuned filter of standardised resolution
bandwidth (RBW) across the band and reports the detector output per tuned
frequency.  For discrete switching harmonics this reduces to combining the
lines that fall inside the RBW window:

* **peak detector** — coherent worst case: the *sum of magnitudes*;
* **average detector** — power-style combination (root-sum-square), a good
  proxy for the average detector on pulsed spectra without modelling the
  full video filter.

CISPR 16-1-1 bands: 9 kHz RBW in band B (150 kHz–30 MHz) and 120 kHz in
bands C/D (30 MHz–1 GHz), which is what CISPR 25 conducted measurements
use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .spectrum import Spectrum, volts_to_dbuv

__all__ = ["EmiReceiver", "cispr_rbw"]


def cispr_rbw(freq: float) -> float:
    """CISPR resolution bandwidth for a tuned frequency [Hz]."""
    if freq < 150e3:
        return 200.0  # band A
    if freq < 30e6:
        return 9e3  # band B
    return 120e3  # bands C/D


def quasi_peak_correction_db(pulse_rate_hz: float, tuned_freq: float) -> float:
    """Quasi-peak reading relative to peak, for a pulsed signal [dB <= 0].

    CISPR 16-1-1's quasi-peak detector weights signals by repetition rate:
    at high pulse repetition frequencies (PRF) the charge circuit keeps up
    and QP -> peak; at low PRF the reading drops.  This implements the
    standard's tabulated weighting as a smooth fit per band:

    * band B (9 kHz RBW):  0 dB above ~10 kHz PRF, dropping with
      ``20 log10(prf / prf_corner)`` below, floored at the single-pulse
      weighting (-43 dB);
    * bands C/D (120 kHz RBW): corner at ~100 kHz PRF, floor -20 dB.

    A converter switching at 250 kHz therefore reads QP = peak in band B —
    the reason the paper's peak plots are the compliance-relevant ones.
    """
    if pulse_rate_hz <= 0.0:
        raise ValueError("pulse rate must be positive")
    corner, floor = (10e3, -43.0) if tuned_freq < 30e6 else (100e3, -20.0)
    if pulse_rate_hz >= corner:
        return 0.0
    import math

    return max(20.0 * math.log10(pulse_rate_hz / corner), floor)


@dataclass
class EmiReceiver:
    """Sweeping measurement receiver.

    Attributes:
        detector: ``"peak"``, ``"average"`` or ``"quasi-peak"``.
        noise_floor_dbuv: additive receiver noise floor.
        pulse_rate_hz: repetition rate assumed by the quasi-peak weighting
            (the converter's switching frequency).
    """

    detector: str = "peak"
    noise_floor_dbuv: float = 0.0
    pulse_rate_hz: float = 250e3

    def __post_init__(self) -> None:
        if self.detector not in ("peak", "average", "quasi-peak"):
            raise ValueError("detector must be 'peak', 'average' or 'quasi-peak'")

    def measure_at(self, spectrum: Spectrum, tuned_freq: float) -> float:
        """Detector reading at one tuned frequency [dBµV]."""
        rbw = cispr_rbw(tuned_freq)
        lo, hi = tuned_freq - rbw / 2.0, tuned_freq + rbw / 2.0
        window = spectrum.band(lo, hi)
        if len(window) == 0:
            return self.noise_floor_dbuv
        mags = window.magnitudes()
        if self.detector == "average":
            level = float(volts_to_dbuv(float(np.sqrt(np.sum(mags**2)))))
        else:
            level = float(volts_to_dbuv(float(np.sum(mags))))
            if self.detector == "quasi-peak":
                level += quasi_peak_correction_db(self.pulse_rate_hz, tuned_freq)
        return max(level, self.noise_floor_dbuv)

    def sweep(self, spectrum: Spectrum, tuned_freqs: np.ndarray) -> Spectrum:
        """Receiver trace over a grid of tuned frequencies.

        Returns a :class:`Spectrum` whose values are real magnitudes (the
        detector output voltage), so its ``dbuv()`` is the familiar plot.
        """
        tuned = np.asarray(tuned_freqs, dtype=float)
        levels_dbuv = np.array([self.measure_at(spectrum, f) for f in tuned])
        volts = 1e-6 * 10.0 ** (levels_dbuv / 20.0)
        return Spectrum(tuned, volts.astype(complex))

    def display_trace(self, spectrum: Spectrum, grid: np.ndarray) -> Spectrum:
        """Max-hold display binning: each grid point reports the strongest
        line in its surrounding log-frequency bin.

        A real receiver steps by at most RBW/2 and therefore never skips a
        line; plotting tools then decimate with max-hold.  This method
        reproduces that decimated trace directly: bins are the midpoints
        between consecutive grid frequencies, and empty bins read the noise
        floor.  Use this (not :meth:`sweep`) when comparing coarse plotted
        curves like the paper's figures.
        """
        grid = np.asarray(grid, dtype=float)
        if len(grid) < 2 or np.any(np.diff(grid) <= 0.0):
            raise ValueError("grid must be increasing with >= 2 points")
        edges = np.empty(len(grid) + 1)
        edges[1:-1] = np.sqrt(grid[:-1] * grid[1:])
        edges[0] = grid[0] ** 2 / edges[1]
        edges[-1] = grid[-1] ** 2 / edges[-2]
        levels = np.full(len(grid), self.noise_floor_dbuv)
        line_levels = spectrum.dbuv()
        idx = np.searchsorted(edges, spectrum.freqs) - 1
        for i, level in zip(idx, line_levels, strict=True):
            if 0 <= i < len(grid):
                levels[i] = max(levels[i], float(level))
        volts = 1e-6 * 10.0 ** (levels / 20.0)
        return Spectrum(grid, volts.astype(complex))

    @staticmethod
    def standard_grid(f_start: float = 150e3, f_stop: float = 108e6, points: int = 240) -> np.ndarray:
        """Logarithmic tuned-frequency grid covering the CISPR 25 range."""
        if f_stop <= f_start or points < 2:
            raise ValueError("need f_stop > f_start and points >= 2")
        return np.logspace(np.log10(f_start), np.log10(f_stop), points)
