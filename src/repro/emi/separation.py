"""Common-mode / differential-mode noise separation.

With a LISN in each supply line, the line voltages decompose as

* common mode:        ``Vcm = (Vpos + Vneg) / 2``
* differential mode:  ``Vdm = (Vpos - Vneg) / 2``

The split tells the filter designer which choke (CM or DM) to grow — and
explains why capacitors coupling into a *common-mode* choke (the paper's
Fig. 8) degrade precisely the CM path.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spectrum import Spectrum

__all__ = ["ModeSplit", "separate_modes"]


@dataclass
class ModeSplit:
    """CM/DM decomposition of a two-line measurement."""

    common_mode: Spectrum
    differential_mode: Spectrum

    def dominant_mode_at(self, freq_index: int) -> str:
        """Which mode carries more energy at a given line index."""
        cm = abs(self.common_mode.values[freq_index])
        dm = abs(self.differential_mode.values[freq_index])
        return "CM" if cm >= dm else "DM"

    def cm_fraction(self) -> float:
        """Overall fraction of measured power in the common mode."""
        cm_power = float((abs(self.common_mode.values) ** 2).sum())
        dm_power = float((abs(self.differential_mode.values) ** 2).sum())
        total = cm_power + dm_power
        if total <= 0.0:
            return 0.0
        return cm_power / total


def separate_modes(v_positive: Spectrum, v_negative: Spectrum) -> ModeSplit:
    """Split two LISN line spectra into CM and DM components.

    Raises:
        ValueError: if the spectra are on different frequency grids.
    """
    import numpy as np

    if len(v_positive) != len(v_negative) or not np.allclose(
        v_positive.freqs, v_negative.freqs
    ):
        raise ValueError("line spectra live on different frequency grids")
    cm = Spectrum(v_positive.freqs.copy(), (v_positive.values + v_negative.values) / 2.0)
    dm = Spectrum(v_positive.freqs.copy(), (v_positive.values - v_negative.values) / 2.0)
    return ModeSplit(cm, dm)
