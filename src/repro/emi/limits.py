"""CISPR 25 conducted-emission limit lines.

CISPR 25 defines limits only inside protected broadcast/mobile bands; the
gaps in between are unconstrained (which is why the limit line in the
paper's Figs. 1/2 is segmented).  The table below reproduces the class 3
and class 5 *voltage method* limits for the peak detector, in dBµV — the
representative mid/strict classes automotive suppliers design against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .spectrum import Spectrum

__all__ = [
    "LimitSegment",
    "LimitLine",
    "CISPR25_CLASS3_PEAK",
    "CISPR25_CLASS5_PEAK",
    "CISPR25_CLASS3_AVG",
]


@dataclass(frozen=True)
class LimitSegment:
    """One protected band with a flat limit level."""

    f_lo: float
    f_hi: float
    level_dbuv: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.f_hi <= self.f_lo:
            raise ValueError("segment must have f_hi > f_lo")


@dataclass
class LimitLine:
    """A segmented limit line and compliance checks against it."""

    name: str
    segments: list[LimitSegment]

    def level_at(self, freq: float) -> float | None:
        """Limit at a frequency, or None outside all protected bands."""
        for seg in self.segments:
            if seg.f_lo <= freq <= seg.f_hi:
                return seg.level_dbuv
        return None

    def violations(self, spectrum: Spectrum) -> list[tuple[float, float, float]]:
        """Lines exceeding the limit: (frequency, level, limit) triples."""
        out: list[tuple[float, float, float]] = []
        levels = spectrum.dbuv()
        for f, level in zip(spectrum.freqs, levels, strict=True):
            limit = self.level_at(float(f))
            if limit is not None and level > limit:
                out.append((float(f), float(level), limit))
        return out

    def passes(self, spectrum: Spectrum) -> bool:
        """True when no line exceeds any protected-band limit."""
        return not self.violations(spectrum)

    def worst_margin_db(self, spectrum: Spectrum) -> float:
        """Smallest (limit - level) over all in-band lines; +inf if no line
        falls into a protected band."""
        margin = float("inf")
        levels = spectrum.dbuv()
        for f, level in zip(spectrum.freqs, levels, strict=True):
            limit = self.level_at(float(f))
            if limit is not None:
                margin = min(margin, limit - float(level))
        return margin

    def as_series(self, points_per_segment: int = 2) -> tuple[np.ndarray, np.ndarray]:
        """Frequency/level arrays for plotting the segmented line."""
        fs: list[float] = []
        ls: list[float] = []
        for seg in self.segments:
            for f in np.linspace(seg.f_lo, seg.f_hi, points_per_segment):
                fs.append(float(f))
                ls.append(seg.level_dbuv)
        return np.array(fs), np.array(ls)


#: CISPR 25 class 3, conducted voltage method, peak detector [dBµV].
CISPR25_CLASS3_PEAK = LimitLine(
    "CISPR 25 class 3 peak",
    [
        LimitSegment(150e3, 300e3, 70.0, "LW"),
        LimitSegment(530e3, 1.8e6, 58.0, "MW"),
        LimitSegment(5.9e6, 6.2e6, 53.0, "SW"),
        LimitSegment(26e6, 28e6, 50.0, "CB"),
        LimitSegment(30e6, 54e6, 50.0, "VHF I"),
        LimitSegment(70e6, 87e6, 42.0, "VHF II"),
        LimitSegment(87e6, 108e6, 46.0, "FM"),
    ],
)

#: CISPR 25 class 5 (strictest), conducted voltage method, peak [dBµV].
CISPR25_CLASS5_PEAK = LimitLine(
    "CISPR 25 class 5 peak",
    [
        LimitSegment(150e3, 300e3, 50.0, "LW"),
        LimitSegment(530e3, 1.8e6, 38.0, "MW"),
        LimitSegment(5.9e6, 6.2e6, 33.0, "SW"),
        LimitSegment(26e6, 28e6, 30.0, "CB"),
        LimitSegment(30e6, 54e6, 30.0, "VHF I"),
        LimitSegment(70e6, 87e6, 22.0, "VHF II"),
        LimitSegment(87e6, 108e6, 26.0, "FM"),
    ],
)


#: CISPR 25 class 3, conducted voltage method, average detector [dBµV]
#: (10 dB below peak in the broadcast bands, per the standard's pairing).
CISPR25_CLASS3_AVG = LimitLine(
    "CISPR 25 class 3 average",
    [
        LimitSegment(150e3, 300e3, 60.0, "LW"),
        LimitSegment(530e3, 1.8e6, 48.0, "MW"),
        LimitSegment(5.9e6, 6.2e6, 43.0, "SW"),
        LimitSegment(26e6, 28e6, 40.0, "CB"),
        LimitSegment(30e6, 54e6, 40.0, "VHF I"),
        LimitSegment(70e6, 87e6, 32.0, "VHF II"),
        LimitSegment(87e6, 108e6, 36.0, "FM"),
    ],
)
