"""Spectra in EMC units.

Conducted-emission results are universally reported in **dBµV** against
frequency on a log axis (the paper's Figs. 1/2/12–14).  :class:`Spectrum`
wraps a set of discrete spectral lines (harmonic phasors or receiver
readings) with the conversions and comparisons the benchmarks need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Spectrum", "volts_to_dbuv", "dbuv_to_volts"]


def volts_to_dbuv(volts: np.ndarray | float) -> np.ndarray | float:
    """Convert a voltage magnitude to dBµV (1 µV reference)."""
    v = np.abs(np.asarray(volts, dtype=float))
    return 20.0 * np.log10(np.maximum(v, 1e-15) / 1e-6)


def dbuv_to_volts(dbuv: np.ndarray | float) -> np.ndarray | float:
    """Convert dBµV back to volts."""
    return 1e-6 * 10.0 ** (np.asarray(dbuv, dtype=float) / 20.0)


@dataclass
class Spectrum:
    """Discrete spectral lines: frequencies [Hz] and complex amplitudes [V].

    The amplitude convention is *one-sided*: a sinusoid ``A sin`` appears
    with ``|value| = A``.
    """

    freqs: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.freqs = np.asarray(self.freqs, dtype=float)
        self.values = np.asarray(self.values, dtype=complex)
        if self.freqs.shape != self.values.shape or self.freqs.ndim != 1:
            raise ValueError("freqs and values must be matching 1-D arrays")
        if np.any(np.diff(self.freqs) <= 0.0):
            raise ValueError("frequencies must be strictly increasing")

    def __len__(self) -> int:
        return len(self.freqs)

    def magnitudes(self) -> np.ndarray:
        """Line magnitudes [V]."""
        return np.abs(self.values)

    def dbuv(self) -> np.ndarray:
        """Line levels in dBµV."""
        return np.asarray(volts_to_dbuv(self.magnitudes()))

    def band(self, f_lo: float, f_hi: float) -> "Spectrum":
        """Sub-spectrum restricted to ``[f_lo, f_hi]``."""
        mask = (self.freqs >= f_lo) & (self.freqs <= f_hi)
        return Spectrum(self.freqs[mask], self.values[mask])

    def max_dbuv_in(self, f_lo: float, f_hi: float) -> float:
        """Highest line level inside a band (``-inf`` if the band is empty)."""
        sub = self.band(f_lo, f_hi)
        if len(sub) == 0:
            return float("-inf")
        return float(np.max(sub.dbuv()))

    def scaled(self, factor: complex) -> "Spectrum":
        """Spectrum multiplied by a constant (e.g. a probe factor)."""
        return Spectrum(self.freqs.copy(), self.values * factor)

    def delta_db(self, other: "Spectrum") -> np.ndarray:
        """Per-line level difference ``self - other`` in dB.

        Raises:
            ValueError: if the frequency grids differ.
        """
        if len(self) != len(other) or not np.allclose(self.freqs, other.freqs):
            raise ValueError("spectra live on different frequency grids")
        return self.dbuv() - other.dbuv()

    def correlation_db(self, other: "Spectrum") -> float:
        """Pearson correlation of the two dB traces (the paper's
        "good coincidence" criterion made quantitative)."""
        a = self.dbuv()
        b = other.dbuv()
        if len(a) != len(b):
            raise ValueError("spectra live on different frequency grids")
        if np.std(a) < 1e-12 or np.std(b) < 1e-12:
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])

    def mean_abs_error_db(self, other: "Spectrum") -> float:
        """Mean absolute level difference in dB."""
        return float(np.mean(np.abs(self.delta_db(other))))

    @staticmethod
    def from_lines(lines: list[tuple[float, complex]]) -> "Spectrum":
        """Build from (frequency, amplitude) pairs in any order."""
        if not lines:
            raise ValueError("need at least one spectral line")
        lines = sorted(lines, key=lambda fv: fv[0])
        return Spectrum(
            np.array([f for f, _ in lines]), np.array([v for _, v in lines])
        )
