"""Quickstart: from a coupling question to a rule-clean placement.

This walks the library's core loop in miniature:

1. ask the PEEC engine how strongly two filter capacitors couple,
2. derive the minimum-distance rule (PEMD) that keeps them decoupled,
3. hand the rule to the automatic placer,
4. check the result with the online DRC.

Run:  python examples/quickstart.py
"""

from repro.components import FilmCapacitorX2, small_bobbin_choke
from repro.coupling import pair_coupling_factor
from repro.geometry import Placement2D, Polygon2D
from repro.placement import (
    AutoPlacer,
    Board,
    DesignRuleChecker,
    PlacedComponent,
    PlacementProblem,
)
from repro.rules import RuleSet, derive_pemd


def main() -> None:
    # 1. A field question: two X2 capacitors, 25 mm apart, parallel axes.
    cap_a = FilmCapacitorX2()
    cap_b = FilmCapacitorX2()
    k = pair_coupling_factor(
        cap_a, Placement2D.at(0.0, 0.0), cap_b, Placement2D.at(0.0, -0.025)
    )
    print(f"coupling of two X2 caps at 25 mm, parallel axes: k = {k:+.4f}")

    # 2. Derive the distance rule that keeps |k| below 0.01.
    derivation = derive_pemd(cap_a, cap_b, k_threshold=0.01)
    print(
        f"fitted law k(d) = {derivation.fit.c:.2e} * d^-{derivation.fit.n:.2f}"
        f"  =>  PEMD = {derivation.pemd * 1e3:.1f} mm"
        f"  (rotation-proof residual {derivation.residual:.2f})"
    )

    # 3. Build a small board and let the automatic placer satisfy the rules.
    problem = PlacementProblem([Board(0, Polygon2D.rectangle(0, 0, 0.08, 0.06))])
    problem.add_component(PlacedComponent("C1", cap_a))
    problem.add_component(PlacedComponent("C2", cap_b))
    problem.add_component(PlacedComponent("L1", small_bobbin_choke()))
    problem.add_net("N1", [("C1", "1"), ("L1", "1")])
    problem.add_net("N2", [("L1", "2"), ("C2", "1")])
    problem.rules = RuleSet(
        min_distance=[
            derivation.rule("C1", "C2"),
            derive_pemd(cap_a, problem.components["L1"].component, 0.01).rule(
                "C1", "L1"
            ),
        ]
    )
    report = AutoPlacer(problem).run()
    print(
        f"\nauto-placed {report.placed_count} parts in {report.runtime_s * 1e3:.0f} ms, "
        f"{report.violations_after} violations"
    )
    for ref, comp in problem.components.items():
        p = comp.placement
        print(
            f"  {ref}: ({p.position.x * 1e3:5.1f}, {p.position.y * 1e3:5.1f}) mm  "
            f"rot {p.rotation_deg:5.1f} deg"
        )

    # 4. The red/green circles of the paper's GUI, as data.
    for marker in DesignRuleChecker(problem).rule_markers():
        print(
            f"  rule {marker.ref_a}-{marker.ref_b}: {marker.color} "
            f"(EMD/2 = {marker.radius * 1e3:.1f} mm)"
        )


if __name__ == "__main__":
    main()
