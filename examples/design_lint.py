"""Design lint: catch broken inputs before any solver runs.

The checker (``repro.check``) statically validates netlists, coupling
data, placement constraints and component models against a catalogue of
stable rule codes (see docs/CHECKS.md).  This example:

1. lints the shipped demo board — clean by construction,
2. corrupts a copy three ways (a non-physical coupling threshold, a
   keepout swallowing the whole board, a single-pin net) and shows the
   diagnostics the linter raises,
3. demonstrates the flow's opt-in pre-solve gate.

Run:  python examples/design_lint.py
"""

from dataclasses import replace
from pathlib import Path

from repro.check import DesignCheckError, Severity, run_checks
from repro.converters import BuckConverterDesign, build_demo_board
from repro.core import EmiDesignFlow
from repro.geometry import Cuboid, Rect
from repro.placement import Keepout3D, Net

BOARD_FILE = Path(__file__).parent / "boards" / "demo_board.txt"


def main() -> None:
    # 1. A healthy design: every shipped example lints clean.
    problem = build_demo_board()
    report = run_checks(problem=problem, subject="demo board (shipped)")
    print(report.text())
    assert report.is_clean(), "shipped demo board must be diagnostic-clean"

    # 2. Break it three ways and lint again.
    broken = build_demo_board()
    # (a) a minimum-distance rule claiming a coupling threshold k = 1.2
    broken.rules.min_distance[0] = replace(
        broken.rules.min_distance[0], k_threshold=1.2
    )
    # (b) a keepout covering the entire board at copper level
    xmin, ymin, xmax, ymax = broken.boards[0].outline.bbox()
    broken.boards[0].keepouts.append(
        Keepout3D(
            name="blanket",
            cuboid=Cuboid(Rect(xmin, ymin, xmax, ymax), 0.0, 0.05),
        )
    )
    # (c) a net with a single pin — nothing to route to
    broken.nets.append(Net(name="NC_STUB", pins=[("C1", "1")]))

    report = run_checks(problem=broken, subject="demo board (corrupted)")
    print(report.text())
    for code in ("CPL001", "PLC002", "NET002"):
        assert code in report.codes(), f"expected {code} to fire"
    print(
        f"exit code with --fail-on error would be "
        f"{report.exit_code(Severity.ERROR)}"
    )

    # 3. The same battery gates a flow run when precheck=True.
    flow = EmiDesignFlow(BuckConverterDesign(), precheck=True)
    flow.run_precheck()
    print("precheck: buck converter design is clean — flow may solve")

    bad_flow = EmiDesignFlow(BuckConverterDesign(), precheck=True)
    bad_flow.design.placement_problem = _corrupted(bad_flow)  # type: ignore[method-assign]
    try:
        bad_flow.predict()
    except DesignCheckError as exc:
        print(f"precheck refused to solve: {exc.report.count(Severity.ERROR)} error(s)")

    # The board files under examples/boards/ lint clean through the CLI too:
    #   repro-emi check examples/boards/demo_board.txt
    print(f"board file for the CLI: {BOARD_FILE.name}")


def _corrupted(flow: EmiDesignFlow):
    """A placement_problem() stand-in whose board is fully kept out."""

    def build():
        problem = BuckConverterDesign().placement_problem()
        xmin, ymin, xmax, ymax = problem.boards[0].outline.bbox()
        problem.boards[0].keepouts.append(
            Keepout3D(
                name="blanket",
                cuboid=Cuboid(Rect(xmin, ymin, xmax, ymax), 0.0, 0.05),
            )
        )
        return problem

    return build


if __name__ == "__main__":
    main()
