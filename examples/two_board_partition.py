"""Two-board placement: partitioning a dense filter onto rigid boards.

Exercises the optional step 2 of the paper's automatic method: the circuit
is bipartitioned onto two boards (functional groups stay atomic, area is
balanced, cut nets minimised), then each board is placed under its own
rules.

Run:  python examples/two_board_partition.py
"""

from repro.components import (
    CeramicCapacitor,
    ElectrolyticCapacitor,
    FilmCapacitorX2,
    PowerMosfet,
    small_bobbin_choke,
)
from repro.geometry import Polygon2D
from repro.placement import (
    AutoPlacer,
    Board,
    DesignRuleChecker,
    PlacedComponent,
    PlacementProblem,
)
from repro.rules import MinDistanceRule, RuleSet
from repro.viz import series_table


def build_problem() -> PlacementProblem:
    boards = [
        Board(0, Polygon2D.rectangle(0.0, 0.0, 0.06, 0.05)),
        Board(1, Polygon2D.rectangle(0.0, 0.0, 0.06, 0.05)),
    ]
    problem = PlacementProblem(boards)
    catalogue = {
        "CX1": FilmCapacitorX2(),
        "CX2": FilmCapacitorX2(),
        "L1": small_bobbin_choke(),
        "L2": small_bobbin_choke(),
        "CE1": ElectrolyticCapacitor(),
        "CE2": ElectrolyticCapacitor(),
        "Q1": PowerMosfet(),
        "CC1": CeramicCapacitor(),
        "CC2": CeramicCapacitor(),
        "CC3": CeramicCapacitor(),
    }
    for ref, comp in catalogue.items():
        problem.add_component(PlacedComponent(ref, comp))

    # Input stage talks among itself; output stage likewise; one bridge.
    problem.add_net("NI1", [("CX1", "1"), ("L1", "1"), ("CE1", "1")])
    problem.add_net("NI2", [("L1", "2"), ("Q1", "D"), ("CC1", "1")])
    problem.add_net("NO1", [("CX2", "1"), ("L2", "1"), ("CE2", "1")])
    problem.add_net("NO2", [("L2", "2"), ("CC2", "1"), ("CC3", "1")])
    problem.add_net("BRIDGE", [("Q1", "S"), ("L2", "1")])

    problem.define_group("input", ["CX1", "L1", "CE1"])
    problem.define_group("output", ["CX2", "L2", "CE2"])

    problem.rules = RuleSet(
        min_distance=[
            MinDistanceRule("CX1", "CX2", pemd=0.030),
            MinDistanceRule("CX1", "L1", pemd=0.024),
            MinDistanceRule("CX2", "L2", pemd=0.024),
            MinDistanceRule("L1", "L2", pemd=0.028),
            MinDistanceRule("CE1", "L1", pemd=0.018),
            MinDistanceRule("CE2", "L2", pemd=0.018),
        ]
    )
    return problem


def main() -> None:
    problem = build_problem()
    report = AutoPlacer(problem, partition=True).run()

    print(
        f"placed {report.placed_count} parts on two boards in "
        f"{report.runtime_s * 1e3:.0f} ms; violations: {report.violations_after}"
    )
    rows = [
        [
            ref,
            comp.board,
            comp.group or "-",
            f"({comp.center().x * 1e3:.1f}, {comp.center().y * 1e3:.1f})",
            f"{comp.placement.rotation_deg:.0f}",
        ]
        for ref, comp in problem.components.items()
    ]
    print(series_table(["ref", "board", "group", "position mm", "rot deg"], rows))

    # Note: cross-board pairs decouple by construction (rigid separation),
    # so partitioning is itself an EMC lever — check which rules it removed.
    same_board = [
        r
        for r in problem.rules.min_distance
        if problem.components[r.ref_a].board == problem.components[r.ref_b].board
    ]
    print(
        f"\nmin-distance rules active after partitioning: {len(same_board)} "
        f"of {len(problem.rules.min_distance)} (cross-board pairs decouple)"
    )
    assert DesignRuleChecker(problem).is_legal()
    print("final DRC: clean")


if __name__ == "__main__":
    main()
