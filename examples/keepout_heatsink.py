"""3-D keepouts with z-offset: placing under a heatsink overhang.

One of the paper's distinctive constraint types: "3D keepouts with/without
z-offset".  A heatsink that overhangs the board at 8 mm height blocks tall
components but lets low-profile parts slide underneath — a genuinely 3-D
decision a 2-D placer cannot make.

Run:  python examples/keepout_heatsink.py
"""

from repro.components import (
    CeramicCapacitor,
    ElectrolyticCapacitor,
    FilmCapacitorX2,
    PowerMosfet,
    TantalumCapacitorSMD,
)
from repro.geometry import Cuboid, Polygon2D, Rect
from repro.placement import (
    AutoPlacer,
    Board,
    DesignRuleChecker,
    Keepout3D,
    PlacedComponent,
    PlacementProblem,
)
from repro.viz import series_table


def main() -> None:
    board = Board(0, Polygon2D.rectangle(0.0, 0.0, 0.06, 0.04))
    # Heatsink overhang: covers the left half of the board, 8 mm above it.
    overhang = Keepout3D(
        "heatsink-overhang",
        Cuboid(Rect(0.0, 0.0, 0.03, 0.04), zmin=8e-3, zmax=30e-3),
    )
    # Its mounting post blocks everything down to the board.
    post = Keepout3D("heatsink-post", Cuboid(Rect(0.0, 0.0, 0.012, 0.012), 0.0, 30e-3))
    board.keepouts += [overhang, post]

    problem = PlacementProblem([board])
    parts = {
        "Q1": PowerMosfet(),               # 2.3 mm tall: fits underneath
        "CT1": TantalumCapacitorSMD(),     # 2.9 mm: fits
        "CC1": CeramicCapacitor(),         # 1.5 mm: fits
        "CX1": FilmCapacitorX2(),          # 15 mm tall: must stay clear
        "CE1": ElectrolyticCapacitor(),    # 16 mm tall: must stay clear
    }
    for ref, comp in parts.items():
        problem.add_component(PlacedComponent(ref, comp))
    problem.add_net("N1", [("Q1", "D"), ("CT1", "1"), ("CX1", "1")])
    problem.add_net("N2", [("CC1", "1"), ("CE1", "1"), ("Q1", "S")])

    report = AutoPlacer(problem).run()
    print(
        f"placed {report.placed_count} parts in {report.runtime_s * 1e3:.0f} ms; "
        f"violations: {report.violations_after}\n"
    )
    rows = []
    for ref, comp in problem.components.items():
        x = comp.center().x
        under = "under overhang" if x < 0.03 else "open area"
        rows.append(
            [
                ref,
                f"{comp.component.body_height * 1e3:.1f}",
                f"({x * 1e3:.1f}, {comp.center().y * 1e3:.1f})",
                under,
            ]
        )
    print(series_table(["part", "height mm", "position mm", "zone"], rows))

    tall_under = [
        ref
        for ref, comp in problem.components.items()
        if comp.component.body_height > 8e-3 and comp.center().x < 0.03
    ]
    print(
        f"\ntall parts under the 8 mm overhang: {tall_under or 'none'} "
        "(the z-offset keepout admits only low-profile parts there)"
    )
    assert DesignRuleChecker(problem).is_legal()


if __name__ == "__main__":
    main()
