"""Talk to the EMI design service with nothing but the stdlib.

The service (``repro-emi serve``, see docs/SERVICE.md) is plain
HTTP/JSON + Server-Sent Events, so a client needs only ``urllib`` and
``json``.  This script walks the full round trip:

1. submit the demo board for check → auto-place → DRC,
2. follow the job live on its SSE event stream,
3. fetch the artifacts and the result summary.

Run against a running server:   python examples/service_client.py --url http://127.0.0.1:8765
Run self-contained (no server): python examples/service_client.py
(the self-contained mode boots an in-process service on an ephemeral
port, which is also how the test suite exercises this script).
"""

import argparse
import json
import tempfile
import urllib.request
from pathlib import Path

BOARD = (Path(__file__).parent / "boards" / "demo_board.txt").read_text()


def submit_job(base_url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base_url + "/jobs",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def follow_events(base_url: str, job_id: str) -> dict:
    """Stream SSE frames until the terminal ``event: end`` snapshot."""
    stages_seen = []
    event_count = 0
    event_type = data = None
    with urllib.request.urlopen(f"{base_url}/jobs/{job_id}/events") as stream:
        for raw in stream:
            line = raw.decode().rstrip("\n")
            if line.startswith("event: "):
                event_type = line[len("event: ") :]
            elif line.startswith("data: "):
                data = line[len("data: ") :]
            elif not line and event_type:  # blank line terminates a frame
                if event_type == "end":
                    return {"events": event_count, "stages": stages_seen,
                            "snapshot": json.loads(data)}
                event_count += 1
                event = json.loads(data)
                if event["kind"] == "stage" and event["attrs"]["status"] == "start":
                    stages_seen.append(event["name"])
                event_type = data = None
    raise RuntimeError("event stream ended without a terminal frame")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", help="base URL of a running repro-emi service")
    args = parser.parse_args()

    service = None
    if args.url:
        base_url = args.url.rstrip("/")
    else:
        from repro.service import EmiService, ServiceConfig

        service = EmiService(
            ServiceConfig(
                port=0,  # ephemeral port: never collides
                pool_workers=1,
                data_dir=Path(tempfile.mkdtemp(prefix="repro-emi-svc-")),
                cache_dir=None,
            )
        )
        base_url = service.start()
        print(f"booted in-process service at {base_url}")

    try:
        snapshot = submit_job(base_url, {"board": BOARD})
        print(f"submitted {snapshot['id']}  state={snapshot['state']}")

        outcome = follow_events(base_url, snapshot["id"])
        final = outcome["snapshot"]
        print(f"streamed {outcome['events']} events; stages: "
              + " -> ".join(outcome["stages"]))
        print(f"final state: {final['state']}  progress={final['progress']:.0%}")

        result = final["result"]
        print(f"placed {result['placed_count']} parts, "
              f"{result['violations']} DRC violations, "
              f"{result['runtime_s'] * 1e3:.0f} ms placement runtime")

        with urllib.request.urlopen(
            f"{base_url}/jobs/{final['id']}/artifacts"
        ) as response:
            names = json.load(response)["artifacts"]
        print(f"artifacts: {', '.join(names)}")

        with urllib.request.urlopen(base_url + "/metrics") as response:
            completed = [
                line
                for line in response.read().decode().splitlines()
                if 'counter="service.jobs_completed"' in line
            ]
        print(f"prometheus says: {completed[0]}")
    finally:
        if service is not None:
            service.stop()
            print("service drained and stopped")


if __name__ == "__main__":
    main()
