"""The full paper flow on the automotive buck converter demonstrator.

Reproduces the evaluation story of Stube et al. (DATE 2008) end to end:

* predict conducted emissions of the converter (CISPR 25 LISN),
* rank the coupling sensitivities, derive placement rules,
* place the board twice — EMI-blind ("unfavourable", the paper's Fig. 1)
  and EMI-aware (Fig. 2/16) — and compare the spectra,
* write SVG board views with the red/green rule circles (Figs. 15/17).

Run:  python examples/buck_converter_emi.py
Artifacts land in examples/out/.
"""

from pathlib import Path

from repro.converters import BuckConverterDesign
from repro.core import EmiDesignFlow
from repro.emi import CISPR25_CLASS3_PEAK
from repro.viz import render_board_svg, render_field_svg, series_table, spectrum_plot

OUT = Path(__file__).parent / "out"


def main() -> None:
    OUT.mkdir(exist_ok=True)
    design = BuckConverterDesign()
    flow = EmiDesignFlow(design)

    print("== 1. sensitivity analysis (which couplings matter?) ==")
    for entry in flow.run_sensitivity()[:6]:
        print(
            f"  {entry.inductor_a:10s} x {entry.inductor_b:10s}"
            f"  impact {entry.impact_db:5.1f} dB @ {entry.worst_freq / 1e6:6.2f} MHz"
        )
    print(f"  relevant pairs (> {flow.sensitivity_threshold_db} dB): "
          f"{len(flow.relevant_pairs())} of {len(flow.run_sensitivity())}")

    print("\n== 2. derived minimum-distance rules (PEMD) ==")
    rows = [
        [r.ref_a, r.ref_b, f"{r.pemd * 1e3:.1f}", f"{r.residual:.2f}"]
        for r in flow.derive_rules()
    ]
    print(series_table(["ref A", "ref B", "PEMD mm", "residual"], rows))

    print("\n== 3. placement: unfavourable vs optimised ==")
    evaluations = flow.compare_layouts()
    for name, ev in evaluations.items():
        print(
            f"  {name:10s}: {ev.violations} rule violations, "
            f"CISPR class-3 margin {ev.worst_margin_db:+.1f} dB "
            f"({'PASS' if ev.passes_limits() else 'FAIL'})"
        )
        svg = render_board_svg(ev.problem, title=f"buck converter — {name}")
        (OUT / f"buck_{name}.svg").write_text(svg)
        (OUT / f"buck_{name}_field.svg").write_text(
            render_field_svg(ev.problem, title=f"stray field — {name}")
        )

    print("\n== 4. conducted emission comparison (receiver traces) ==")
    traces = {
        name: flow.receiver_trace(ev.spectrum) for name, ev in evaluations.items()
    }
    print(spectrum_plot(traces, limit=CISPR25_CLASS3_PEAK, height=16))

    baseline = evaluations["baseline"].spectrum
    optimized = evaluations["optimized"].spectrum
    improvement = (baseline.dbuv() - optimized.dbuv()).max()
    print(f"\nmax per-harmonic improvement from placement alone: {improvement:.1f} dB")
    print(f"SVG board views written to {OUT}/")


if __name__ == "__main__":
    main()
