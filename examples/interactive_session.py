"""Interactive placement adviser: online DRC while moving and rotating.

Recreates the paper's section-4 workflow without the GUI: select a part,
drag it somewhere problematic, watch the rules go red, fix it with the
90-degree decoupling rotation, then shrink the layout with the guarded
compaction adviser ("minimization of the system volume").

Run:  python examples/interactive_session.py
"""

from repro.converters import BuckConverterDesign
from repro.core import EmiDesignFlow
from repro.geometry import Vec2
from repro.placement import InteractiveSession


def show(result) -> None:
    state = "LEGAL" if result.legal else "VIOLATED"
    print(f"  -> {state}; markers: ", end="")
    print(
        ", ".join(
            f"{m.ref_a}-{m.ref_b}:{m.color}" for m in result.markers
        )
    )
    for violation in result.violations:
        print(f"     ! {violation.message}")


def main() -> None:
    flow = EmiDesignFlow(BuckConverterDesign())
    problem, report = flow.place_optimized()
    print(
        f"auto layout: {report.placed_count} parts, "
        f"{report.violations_after} violations"
    )

    session = InteractiveSession(problem)

    print("\n1. drag CX1 next to the power choke L1 (bad idea):")
    session.select("CX1")
    target = problem.components["L1"].center() + Vec2(0.012, 0.0)
    result = session.move_to(target)
    show(result)

    print("\n2. undo, like the GUI's ESC:")
    session.undo()
    print(f"  -> board legal again: {session.board_is_legal()}")

    print("\n3. nudge CX2 1 mm at a time and watch the online DRC:")
    session.select("CX2")
    for _ in range(3):
        result = session.move_by(Vec2(1e-3, 0.0))
        show(result)
        if not result.legal:
            session.undo()
            print("  (reverted the illegal nudge)")
            break

    print("\n4. volume minimisation with the compaction adviser:")
    area_before = session.area()
    moves = 0
    for ref in list(problem.components):
        if problem.components[ref].fixed:
            continue
        while session.compact_step(ref, step=1e-3) is not None:
            moves += 1
    area_after = session.area()
    print(
        f"  {moves} guarded moves: bounding area "
        f"{area_before * 1e4:.1f} -> {area_after * 1e4:.1f} cm^2 "
        f"({(1 - area_after / area_before) * 100:.0f}% smaller), "
        f"still legal: {session.board_is_legal()}"
    )


if __name__ == "__main__":
    main()
