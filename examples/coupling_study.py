"""Coupling study: the paper's Figs. 4-8 as one interactive script.

Sweeps the PEEC coupling engine across the placement degrees of freedom:
distance (X-caps and bobbin coils), relative rotation (the cos rule), and
angular position around 2- and 3-winding common-mode chokes.

Run:  python examples/coupling_study.py
"""

import numpy as np

from repro.components import (
    FilmCapacitorX2,
    cm_choke_2w,
    cm_choke_3w,
    large_bobbin_choke,
    small_bobbin_choke,
)
from repro.coupling import (
    decoupling_sweep,
    distance_sweep,
    fit_power_law,
    rotation_sweep,
)
from repro.geometry import Transform3D, Vec3
from repro.peec import field_magnitude_map
from repro.viz import heatmap, series_table


def study_distance() -> None:
    print("== k versus distance (Fig. 5 / Fig. 7) ==")
    distances = np.geomspace(0.022, 0.09, 7)
    cap_pair = distance_sweep(
        FilmCapacitorX2(), FilmCapacitorX2(), distances, direction_deg=-90.0
    )
    coil_pair = distance_sweep(small_bobbin_choke(), large_bobbin_choke(), distances)
    rows = [
        [f"{d * 1e3:.0f}", f"{cap_pair[i]:.5f}", f"{coil_pair[i]:.5f}"]
        for i, d in enumerate(distances)
    ]
    print(series_table(["d mm", "X2 caps", "bobbin S-L"], rows))
    for label, data in (("caps", cap_pair), ("coils", coil_pair)):
        fit = fit_power_law(distances, data)
        print(
            f"  {label}: k ~ d^-{fit.n:.2f}, distance for k=0.01: "
            f"{fit.distance_for_coupling(0.01) * 1e3:.1f} mm"
        )


def study_rotation() -> None:
    print("\n== k versus rotation at 25 mm (Fig. 6 / Fig. 10) ==")
    angles = np.arange(0.0, 91.0, 15.0)
    ks = rotation_sweep(FilmCapacitorX2(), FilmCapacitorX2(), 0.025, angles)
    rows = [
        [f"{a:.0f}", f"{k:+.5f}", f"{abs(np.cos(np.radians(a))):.3f}"]
        for a, k in zip(angles, ks, strict=True)
    ]
    print(series_table(["angle deg", "k", "cos bound"], rows))


def study_cm_chokes() -> None:
    print("\n== capacitor around CM chokes (Fig. 8) ==")
    angles = np.linspace(0, 330, 12)
    cap = FilmCapacitorX2()
    for label, choke in (("2-winding", cm_choke_2w()), ("3-winding", cm_choke_3w())):
        kmax, kmin = decoupling_sweep(choke, cap, 0.03, angles)
        print(
            f"  {label}: worst-case k ranges {kmax.min():.4f}..{kmax.max():.4f}; "
            f"orientation-minimised k <= {kmin.max():.2e}"
            + ("  (decoupled positions exist)" if kmin.max() < 1e-6 else
               "  (NO decoupled position)")
        )


def study_field_map() -> None:
    print("\n== stray-field map of two coupling coils (Fig. 4) ==")
    a = small_bobbin_choke().current_path
    b = large_bobbin_choke().current_path.transformed(
        Transform3D(Vec3(0.045, 0.0, 0.0))
    )
    xs = np.linspace(-0.02, 0.065, 60)
    ys = np.linspace(-0.02, 0.02, 16)
    print(heatmap(field_magnitude_map([a, b], xs, ys, z=0.006)))


def main() -> None:
    study_distance()
    study_rotation()
    study_cm_chokes()
    study_field_map()


if __name__ == "__main__":
    main()
