"""High-frequency extensions: capacitive coupling, traces, CM/DM, quasi-peak.

The paper flags three directions it does not explore: capacitive coupling
"gains more influence at higher frequencies", the connecting structures
carry their own parasitics, and real benches measure both supply lines.
This script exercises the reproduction's implementations of all three,
plus the CISPR quasi-peak detector.

Run:  python examples/hf_extensions.py
"""

import numpy as np

from repro.converters import (
    CAPACITIVE_NODES,
    COUPLING_BRANCHES,
    BuckConverterDesign,
    cmdm_spectra,
    layout_couplings,
)
from repro.coupling import capacitive_layout_couplings
from repro.emi import EmiReceiver, separate_modes
from repro.placement import BaselinePlacer
from repro.viz import series_table


def main() -> None:
    design = BuckConverterDesign()
    problem = design.placement_problem()
    BaselinePlacer(problem).run()

    print("== 1. capacitive coupling (paper: 'more influence at higher f') ==")
    capacitances = capacitive_layout_couplings(problem, list(CAPACITIVE_NODES))
    strongest = sorted(capacitances.items(), key=lambda kv: -kv[1])[:4]
    for (a, b), value in strongest:
        print(f"  {a}-{b}: {value * 1e12:.2f} pF")
    base = design.emission_spectrum()
    with_cap = design.emission_spectrum(capacitive=capacitances)
    delta = np.abs(with_cap.dbuv() - base.dbuv())
    freqs = base.freqs
    print(
        f"  effect below 5 MHz: {float(np.max(delta[freqs < 5e6])):.2f} dB, "
        f"above 30 MHz: {float(np.max(delta[freqs > 30e6])):.1f} dB"
    )

    print("\n== 2. placement-dependent trace inductances ==")
    trace_l = design.trace_inductances_from_layout(problem)
    rows = [[net, f"{value * 1e9:.1f}"] for net, value in trace_l.items()]
    print(series_table(["power net", "trace L nH"], rows))

    print("\n== 3. two-line measurement and CM/DM split ==")
    magnetic = layout_couplings(problem, list(COUPLING_BRANCHES.values()))
    line_p, line_n = cmdm_spectra(design, couplings=magnetic)
    split = separate_modes(line_p, line_n)
    print(f"  common-mode power fraction: {split.cm_fraction() * 100:.1f}%")
    print(
        "  (no Y-caps / CM choke in this design: the heatsink capacitance "
        "makes CM dominate — the classic argument for CM filtering)"
    )

    print("\n== 4. detectors: peak vs quasi-peak vs average ==")
    grid = EmiReceiver.standard_grid(points=6)
    rows = []
    for detector in ("peak", "quasi-peak", "average"):
        rx = EmiReceiver(detector, noise_floor_dbuv=5.0, pulse_rate_hz=250e3)
        trace = rx.display_trace(base, EmiReceiver.standard_grid(points=120))
        rows.append([detector, f"{float(np.max(trace.dbuv())):.1f}"])
    _ = grid
    print(series_table(["detector", "max level dBuV"], rows))
    print(
        "  at a 250 kHz switching rate the quasi-peak weighting equals the "
        "peak reading (PRF above the CISPR corner)."
    )


if __name__ == "__main__":
    main()
