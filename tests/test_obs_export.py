"""Unit tests for the report exporters (repro.obs.export)."""

import json
from pathlib import Path

from repro.obs import (
    RunReport,
    Span,
    Tracer,
    chrome_trace_json,
    to_chrome_trace,
    to_prometheus,
)

GOLDEN = Path(__file__).parent / "data" / "chrome_trace_golden.json"


def golden_report() -> RunReport:
    """A fixed small report with exact binary-fraction times (stable JSON)."""
    root = Span("run")
    root.count = 1
    root.wall_s = 1.0
    rules = root.child("flow.rules")
    rules.count = 1
    rules.wall_s = 0.5
    solve = rules.child("coupling.field_solve")
    solve.count = 4
    solve.wall_s = 0.25
    solve.counters["peec.filament_pairs"] = 128.0
    placement = root.child("flow.placement")
    placement.count = 2
    placement.wall_s = 0.375
    return RunReport(
        root=root,
        gauges={"mem.flow.rules.peak_bytes": 2048.0},
        meta={"command": "demo", "status": "ok"},
    )


class TestChromeTrace:
    def test_event_structure(self):
        trace = to_chrome_trace(golden_report())
        events = trace["traceEvents"]
        assert [e["name"] for e in events] == [
            "run",
            "flow.rules",
            "coupling.field_solve",
            "flow.placement",
        ]
        assert all(e["ph"] == "X" for e in events)
        by_name = {e["name"]: e for e in events}
        # Durations are wall seconds in microseconds.
        assert by_name["run"]["dur"] == 1_000_000.0
        assert by_name["flow.rules"]["dur"] == 500_000.0

    def test_children_nest_within_parents(self):
        trace = to_chrome_trace(golden_report())
        by_name = {e["name"]: e for e in trace["traceEvents"]}
        parent = by_name["flow.rules"]
        child = by_name["coupling.field_solve"]
        assert child["ts"] >= parent["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-9

    def test_siblings_laid_out_sequentially(self):
        trace = to_chrome_trace(golden_report())
        by_name = {e["name"]: e for e in trace["traceEvents"]}
        first = by_name["flow.rules"]
        second = by_name["flow.placement"]
        assert second["ts"] == first["ts"] + first["dur"]

    def test_counters_and_other_data(self):
        trace = to_chrome_trace(golden_report())
        by_name = {e["name"]: e for e in trace["traceEvents"]}
        args = by_name["coupling.field_solve"]["args"]
        assert args["count"] == 4
        assert args["counters"] == {"peec.filament_pairs": 128.0}
        other = trace["otherData"]
        assert other["meta"]["status"] == "ok"
        assert other["gauges"]["mem.flow.rules.peak_bytes"] == 2048.0
        assert other["counters_total"]["peec.filament_pairs"] == 128.0

    def test_golden_file(self):
        """The serialised trace is pinned byte-for-byte.

        Regenerate deliberately (after reviewing the diff) with:
        ``python -c "import tests.test_obs_export as t; t.regenerate_golden()"``
        """
        assert chrome_trace_json(golden_report()) + "\n" == GOLDEN.read_text()

    def test_from_real_tracer(self):
        tracer = Tracer(meta={"command": "x"})
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        report = tracer.report()
        trace = to_chrome_trace(report)
        assert len(trace["traceEvents"]) == 3
        text = json.dumps(trace)
        assert json.loads(text)["displayTimeUnit"] == "ms"


class TestPrometheus:
    def test_families_and_samples(self):
        text = to_prometheus(golden_report())
        assert "# TYPE repro_emi_span_wall_seconds gauge" in text
        assert 'repro_emi_span_wall_seconds{path="run/flow.rules"} 0.5' in text
        assert 'repro_emi_span_calls_total{path="run/flow.placement"} 2' in text
        assert (
            'repro_emi_counter_total{counter="peec.filament_pairs"} 128' in text
        )
        assert (
            'repro_emi_gauge{name="mem.flow.rules.peak_bytes"} 2048' in text
        )
        assert text.endswith("\n")

    def test_custom_prefix(self):
        text = to_prometheus(golden_report(), prefix="acme")
        assert "acme_span_wall_seconds" in text
        assert "repro_emi" not in text

    def test_label_escaping(self):
        root = Span("run")
        root.count = 1
        weird = root.child('sp"an\\x')
        weird.count = 1
        weird.wall_s = 1.0
        text = to_prometheus(RunReport(root=root))
        assert 'path="run/sp\\"an\\\\x"' in text

    def test_empty_report_has_span_families_only(self):
        text = to_prometheus(RunReport(root=Span("run")))
        assert "span_wall_seconds" in text
        assert "counter_total" not in text
        assert "repro_emi_gauge" not in text


class TestDerivedCacheGauges:
    def _report(self, counters):
        root = Span("run")
        root.count = 1
        root.wall_s = 1.0
        root.counters.update(counters)
        return RunReport(root=root)

    def test_memory_tier_hit_ratio(self):
        text = to_prometheus(
            self._report({"coupling.cache_hits": 3.0, "coupling.cache_misses": 1.0})
        )
        assert 'repro_emi_gauge{name="coupling.cache_hit_ratio"} 0.75' in text

    def test_persistent_tier_counts_stale_as_miss(self):
        text = to_prometheus(
            self._report({"cache.hit": 2.0, "cache.miss": 1.0, "cache.stale": 1.0})
        )
        assert 'repro_emi_gauge{name="cache.hit_ratio"} 0.5' in text

    def test_no_lookups_emits_no_ratio(self):
        # A 0/0 tier stays silent — it would read as "always missing".
        text = to_prometheus(self._report({"cache.write": 5.0}))
        assert "hit_ratio" not in text

    def test_all_misses_is_zero_not_absent(self):
        text = to_prometheus(self._report({"coupling.cache_misses": 4.0}))
        assert 'repro_emi_gauge{name="coupling.cache_hit_ratio"} 0' in text

    def test_derived_gauges_do_not_clobber_report_gauges(self):
        report = self._report({"coupling.cache_hits": 1.0})
        report.gauges["mem.x"] = 7.0
        text = to_prometheus(report)
        assert 'repro_emi_gauge{name="mem.x"} 7' in text
        assert 'repro_emi_gauge{name="coupling.cache_hit_ratio"} 1' in text


def regenerate_golden() -> None:  # pragma: no cover - maintenance helper
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(chrome_trace_json(golden_report()) + "\n")
    print(f"wrote {GOLDEN}")
