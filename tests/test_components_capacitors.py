"""Unit tests for the capacitor family."""

import pytest

from repro.components import (
    CeramicCapacitor,
    ElectrolyticCapacitor,
    FilmCapacitorX2,
    TantalumCapacitorSMD,
)


ALL_CAPS = [
    FilmCapacitorX2,
    TantalumCapacitorSMD,
    ElectrolyticCapacitor,
    CeramicCapacitor,
]


class TestCatalogueValues:
    @pytest.mark.parametrize("cls", ALL_CAPS)
    def test_positive_values(self, cls):
        cap = cls()
        assert cap.capacitance > 0.0
        assert cap.esr > 0.0
        assert cap.esl > 0.0

    def test_esl_magnitudes_ordered_by_package(self):
        # Bigger packages / longer loops => more ESL.
        mlcc = CeramicCapacitor().esl
        tant = TantalumCapacitorSMD().esl
        film = FilmCapacitorX2().esl
        assert mlcc < tant < film

    def test_esl_nanohenry_range(self):
        # All within the physically expected sub-30 nH window.
        for cls in ALL_CAPS:
            assert 1e-10 < cls().esl < 30e-9

    def test_x2_matches_paper_value(self):
        # The paper's Fig. 5 uses 1.5 uF X capacitors.
        assert FilmCapacitorX2().capacitance == pytest.approx(1.5e-6)

    def test_invalid_capacitance_rejected(self):
        with pytest.raises(ValueError):
            FilmCapacitorX2(capacitance=0.0)

    def test_invalid_loop_rejected(self):
        with pytest.raises(ValueError):
            FilmCapacitorX2(loop_height=0.0)


class TestFieldModel:
    @pytest.mark.parametrize("cls", ALL_CAPS)
    def test_loop_is_closed_rectangle(self, cls):
        path = cls().current_path
        assert len(path) == 4
        assert path.closure_error() == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("cls", ALL_CAPS)
    def test_axis_horizontal(self, cls):
        axis = cls().magnetic_axis_local()
        assert abs(axis.z) < 1e-9
        assert abs(axis.y) == pytest.approx(1.0)

    def test_loop_inside_body(self):
        cap = FilmCapacitorX2()
        for f in cap.current_path:
            assert abs(f.start.x) <= cap.footprint_w / 2 + 1e-9
            assert 0.0 <= f.start.z <= cap.body_height + 1e-9

    def test_resized_loop_changes_esl(self):
        small = FilmCapacitorX2(loop_height=5e-3)
        tall = FilmCapacitorX2(loop_height=14e-3)
        assert tall.esl > small.esl

    def test_pads_at_loop_span(self):
        cap = TantalumCapacitorSMD()
        assert cap.pad_position("2").x - cap.pad_position("1").x == pytest.approx(
            cap.loop_span
        )
