"""Shared fixtures.

Expensive artefacts (rule derivation, full design-flow comparisons) are
session-scoped so the suite exercises them exactly once; cheap builders are
function-scoped factories so tests can mutate freely.
"""

from __future__ import annotations

import os

import pytest

from repro.components import (
    FilmCapacitorX2,
    PowerDiode,
    PowerMosfet,
    small_bobbin_choke,
)
from repro.converters import BuckConverterDesign
from repro.core import EmiDesignFlow
from repro.geometry import Polygon2D
from repro.placement import Board, PlacedComponent, PlacementProblem
from repro.rules import MinDistanceRule, RuleSet


@pytest.fixture(autouse=True)
def _isolated_coupling_cache(monkeypatch, tmp_path):
    """Keep the persistent coupling cache out of the user's ~/.cache."""
    monkeypatch.setenv("REPRO_EMI_CACHE_DIR", str(tmp_path / "coupling-cache"))


# -- runtime lock sanitizer (`make race-check`) ------------------------------
#
# With REPRO_EMI_LOCK_SANITIZER=1 every threading.Lock/RLock created during
# the session is instrumented (see repro.lint.sanitizer): lock-order
# inversions and over-threshold hold times become findings, and the test on
# whose watch a finding appeared fails with both acquisition stacks.

_RACE_CHECK = os.environ.get("REPRO_EMI_LOCK_SANITIZER", "") not in ("", "0")


@pytest.fixture(scope="session", autouse=_RACE_CHECK)
def _session_lock_sanitizer():
    """Install one sanitizer for the whole session (env-var opt-in)."""
    from repro.lint.sanitizer import LockSanitizer, install, uninstall

    sanitizer = install(LockSanitizer())
    yield sanitizer
    uninstall()


@pytest.fixture(autouse=_RACE_CHECK)
def _fail_on_lock_findings(_session_lock_sanitizer):
    """Fail the test during which a sanitizer finding was recorded."""
    before = len(_session_lock_sanitizer.report())
    yield
    findings = _session_lock_sanitizer.report()[before:]
    if findings:
        rendered = "\n\n".join(f.render() for f in findings)
        pytest.fail(f"lock sanitizer recorded {len(findings)} finding(s):\n{rendered}")


@pytest.fixture
def x2_cap():
    return FilmCapacitorX2()


@pytest.fixture
def bobbin():
    return small_bobbin_choke()


def build_small_problem(with_rules: bool = True) -> PlacementProblem:
    """A 7-part problem on an 80x60 board, optionally with PEMD rules."""
    board = Board(0, Polygon2D.rectangle(0.0, 0.0, 0.08, 0.06))
    problem = PlacementProblem([board])
    problem.add_component(PlacedComponent("C1", FilmCapacitorX2()))
    problem.add_component(PlacedComponent("C2", FilmCapacitorX2()))
    problem.add_component(PlacedComponent("C3", FilmCapacitorX2()))
    problem.add_component(PlacedComponent("L1", small_bobbin_choke()))
    problem.add_component(PlacedComponent("L2", small_bobbin_choke()))
    problem.add_component(PlacedComponent("Q1", PowerMosfet()))
    problem.add_component(PlacedComponent("D1", PowerDiode()))
    problem.add_net("N1", [("C1", "1"), ("L1", "1")])
    problem.add_net("N2", [("L1", "2"), ("C2", "1"), ("Q1", "D")])
    problem.add_net("N3", [("Q1", "S"), ("D1", "K"), ("L2", "1")])
    problem.add_net("N4", [("L2", "2"), ("C3", "1")])
    if with_rules:
        problem.rules = RuleSet(
            min_distance=[
                MinDistanceRule("C1", "C2", pemd=0.025),
                MinDistanceRule("C1", "L1", pemd=0.030),
                MinDistanceRule("L1", "L2", pemd=0.035),
                MinDistanceRule("C2", "L2", pemd=0.028),
                MinDistanceRule("C2", "C3", pemd=0.022),
            ]
        )
    return problem


@pytest.fixture
def small_problem() -> PlacementProblem:
    return build_small_problem()


@pytest.fixture(scope="session")
def buck_design() -> BuckConverterDesign:
    return BuckConverterDesign()


@pytest.fixture(scope="session")
def design_flow(buck_design) -> EmiDesignFlow:
    """A flow with sensitivity and rules already computed (cached inside)."""
    flow = EmiDesignFlow(buck_design)
    flow.derive_rules()
    return flow


@pytest.fixture(scope="session")
def layout_comparison(design_flow):
    """The baseline-versus-optimised evaluation pair (expensive; run once)."""
    return design_flow.compare_layouts()
