"""Unit tests for the coupling database cache."""

import pytest

from repro.components import FilmCapacitorX2
from repro.coupling import CouplingDatabase, pair_coupling_factor
from repro.geometry import Placement2D


class TestCaching:
    def test_cache_hit_on_repeat(self, x2_cap):
        db = CouplingDatabase()
        other = FilmCapacitorX2()
        pa, pb = Placement2D.at(0, 0), Placement2D.at(0.03, 0)
        r1 = db.coupling(x2_cap, pa, other, pb)
        r2 = db.coupling(x2_cap, pa, other, pb)
        assert r1 is r2
        assert db.hits == 1
        assert db.misses == 1

    def test_relative_pose_invariance_hits_cache(self, x2_cap):
        db = CouplingDatabase()
        other = FilmCapacitorX2()
        db.coupling(x2_cap, Placement2D.at(0, 0), other, Placement2D.at(0.03, 0))
        # Same relative pose, different absolute location.
        db.coupling(
            x2_cap, Placement2D.at(0.01, 0.01), other, Placement2D.at(0.04, 0.01)
        )
        assert db.hits == 1

    def test_swapped_operands_hit_mirror_key(self, x2_cap):
        db = CouplingDatabase()
        other = FilmCapacitorX2()
        pa, pb = Placement2D.at(0, 0), Placement2D.at(0.03, 0)
        db.coupling(x2_cap, pa, other, pb)
        db.coupling(other, pb, x2_cap, pa)
        assert db.hits == 1

    def test_different_pose_misses(self, x2_cap):
        db = CouplingDatabase()
        other = FilmCapacitorX2()
        db.coupling(x2_cap, Placement2D.at(0, 0), other, Placement2D.at(0.03, 0))
        db.coupling(x2_cap, Placement2D.at(0, 0), other, Placement2D.at(0.05, 0))
        assert db.misses == 2

    def test_clear(self, x2_cap):
        db = CouplingDatabase()
        other = FilmCapacitorX2()
        db.coupling(x2_cap, Placement2D.at(0, 0), other, Placement2D.at(0.03, 0))
        db.clear()
        assert db.cache_size() == 0
        assert db.misses == 0


class TestPairwise:
    def test_all_pairs_count(self, x2_cap):
        db = CouplingDatabase()
        placed = [
            ("C1", x2_cap, Placement2D.at(0, 0)),
            ("C2", FilmCapacitorX2(), Placement2D.at(0.03, 0)),
            ("C3", FilmCapacitorX2(), Placement2D.at(0, 0.03)),
        ]
        results = db.pairwise_couplings(placed)
        assert len(results) == 3
        assert all(a < b for a, b in results)

    def test_values_match_direct_computation(self, x2_cap):
        db = CouplingDatabase()
        other = FilmCapacitorX2()
        pa, pb = Placement2D.at(0, 0), Placement2D.at(0.035, 0.005, 45)
        res = db.coupling(x2_cap, pa, other, pb)
        direct = pair_coupling_factor(x2_cap, pa, other, pb)
        assert res.k == pytest.approx(direct, rel=1e-9)

    def test_ground_plane_respected(self, x2_cap):
        free_db = CouplingDatabase()
        shielded_db = CouplingDatabase(ground_plane_z=-0.5e-3)
        other = FilmCapacitorX2()
        pa, pb = Placement2D.at(0, 0), Placement2D.at(0.03, 0)
        k_free = abs(free_db.coupling(x2_cap, pa, other, pb).k)
        k_shld = abs(shielded_db.coupling(x2_cap, pa, other, pb).k)
        assert k_shld != pytest.approx(k_free, rel=0.05)
        assert shielded_db.coupling(x2_cap, pa, other, pb).shielded


class TestResultValidation:
    """|k| <= 1 is enforced at insertion (rule CPL001, see docs/CHECKS.md)."""

    def _doctored(self, monkeypatch, k: float):
        from repro.coupling import database as database_module
        from repro.coupling.pair import CouplingResult

        def fake(comp_a, pa, comp_b, pb, ground_plane_z, order):
            return CouplingResult(
                k=k, mutual_h=1e-9, self_a_h=1e-8, self_b_h=1e-8, shielded=False
            )

        monkeypatch.setattr(database_module, "component_coupling", fake)

    def test_marginal_overshoot_is_clamped(self, x2_cap, monkeypatch):
        self._doctored(monkeypatch, 1.005)
        db = CouplingDatabase()
        res = db.coupling(x2_cap, Placement2D.at(0, 0), x2_cap, Placement2D.at(0.03, 0))
        assert res.k == 1.0

    def test_negative_overshoot_clamps_to_minus_one(self, x2_cap, monkeypatch):
        self._doctored(monkeypatch, -1.01)
        db = CouplingDatabase()
        res = db.coupling(x2_cap, Placement2D.at(0, 0), x2_cap, Placement2D.at(0.03, 0))
        assert res.k == -1.0

    def test_gross_violation_is_rejected(self, x2_cap, monkeypatch):
        self._doctored(monkeypatch, 1.2)
        db = CouplingDatabase()
        with pytest.raises(ValueError, match=r"CPL001") as excinfo:
            db.coupling(x2_cap, Placement2D.at(0, 0), x2_cap, Placement2D.at(0.03, 0))
        assert "1.2" in str(excinfo.value)
        assert db.cache_size() == 0  # nothing poisoned the cache

    def test_physical_results_pass_through(self, x2_cap):
        db = CouplingDatabase()
        res = db.coupling(
            x2_cap, Placement2D.at(0, 0), FilmCapacitorX2(), Placement2D.at(0.03, 0)
        )
        assert abs(res.k) <= 1.0
        assert db.cache_size() == 1
