"""Unit tests for the synthetic CISPR measurement substitute."""

import numpy as np

from repro.circuit import Circuit
from repro.converters import perturb_circuit, synthesize_measurement


class TestPerturbCircuit:
    def base(self) -> Circuit:
        c = Circuit()
        c.add_vsource("V1", "in", "0", ac=1.0)
        c.add_resistor("R1", "in", "out", 100.0)
        c.add_capacitor("C1", "out", "0", 1e-6)
        c.add_inductor("L1", "out", "0", 1e-6)
        return c

    def test_l_and_c_detuned_within_band(self):
        rng = np.random.default_rng(1)
        variant = perturb_circuit(self.base(), rng, tolerance=0.1)
        c = variant.find("C1").capacitance
        l = variant.find("L1").inductance
        assert 0.9e-6 <= c <= 1.1e-6
        assert 0.9e-6 <= l <= 1.1e-6
        assert (c, l) != (1e-6, 1e-6)

    def test_resistors_untouched(self):
        rng = np.random.default_rng(1)
        variant = perturb_circuit(self.base(), rng, tolerance=0.1)
        assert variant.find("R1").resistance == 100.0

    def test_original_unmodified(self):
        base = self.base()
        perturb_circuit(base, np.random.default_rng(0), tolerance=0.2)
        assert base.find("C1").capacitance == 1e-6


class TestSynthesizeMeasurement:
    def test_reproducible_by_seed(self, buck_design):
        m1 = synthesize_measurement(buck_design, {}, seed=7)
        m2 = synthesize_measurement(buck_design, {}, seed=7)
        assert np.allclose(m1.values, m2.values)

    def test_seed_changes_result(self, buck_design):
        m1 = synthesize_measurement(buck_design, {}, seed=7)
        m2 = synthesize_measurement(buck_design, {}, seed=8)
        assert not np.allclose(np.abs(m1.values), np.abs(m2.values))

    def test_noise_floor_lifts_quiet_lines(self, buck_design):
        quiet = synthesize_measurement(buck_design, {}, noise_floor_dbuv=0.0)
        loud_floor = synthesize_measurement(buck_design, {}, noise_floor_dbuv=30.0)
        # A 30 dBuV floor must raise the quietest decile of the trace.
        assert float(np.percentile(loud_floor.dbuv(), 10)) > float(
            np.percentile(quiet.dbuv(), 10)
        )

    def test_same_grid_as_prediction(self, buck_design):
        m = synthesize_measurement(buck_design, {})
        p = buck_design.emission_spectrum()
        assert np.allclose(m.freqs, p.freqs)

    def test_tracks_its_own_couplings(self, buck_design):
        couplings = {("CX1", "CX2"): 0.06}
        meas = synthesize_measurement(buck_design, couplings, seed=3)
        with_k = buck_design.emission_spectrum(couplings)
        without_k = buck_design.emission_spectrum()
        # The Fig. 12/14 structure: the measurement agrees far better with
        # the coupled prediction than with the uncoupled one.
        assert meas.mean_abs_error_db(with_k) < meas.mean_abs_error_db(without_k)
