"""Unit tests for PEMD derivation from coupling sweeps."""

import pytest

from repro.components import FilmCapacitorX2, small_bobbin_choke
from repro.coupling import distance_sweep
from repro.rules import derive_pemd, derive_rule_set
from repro.sensitivity import SensitivityEntry

import numpy as np


class TestDerivePemd:
    def test_cap_pair_pemd_plausible(self, x2_cap):
        derivation = derive_pemd(x2_cap, FilmCapacitorX2(), k_threshold=0.01)
        # Two 1.5 uF X-caps need a couple of centimetres (paper Fig. 5 scale).
        assert 0.015 < derivation.pemd < 0.06
        assert derivation.fit.r_squared > 0.95

    def test_smaller_threshold_larger_pemd(self, x2_cap):
        other = FilmCapacitorX2()
        loose = derive_pemd(x2_cap, other, k_threshold=0.05)
        tight = derive_pemd(x2_cap, other, k_threshold=0.005)
        assert tight.pemd > loose.pemd

    def test_threshold_actually_enforced(self, x2_cap):
        other = FilmCapacitorX2()
        derivation = derive_pemd(x2_cap, other, k_threshold=0.01)
        # Coupling measured at the derived PEMD (parallel axes, along the
        # common axis) must be at the threshold.
        k = distance_sweep(
            x2_cap,
            other,
            np.array([derivation.pemd]),
            rotation_b_deg=0.0,
            direction_deg=-90.0,
        )[0]
        assert k == pytest.approx(0.01, rel=0.25)

    def test_perpendicular_residual_for_cap_pair(self, x2_cap):
        derivation = derive_pemd(x2_cap, FilmCapacitorX2(), k_threshold=0.01)
        # At the worst-case oblique direction the perpendicular coupling is
        # nearly as strong as parallel: the residual must be large.
        assert derivation.residual > 0.7
        assert derivation.pemd_perp <= derivation.pemd

    def test_mixed_pair_axes_aligned(self, x2_cap):
        # Cap (axis -y) vs choke (axis +x): the parallel-axes sweep must
        # rotate the choke, otherwise every sample is zero.
        derivation = derive_pemd(x2_cap, small_bobbin_choke(), k_threshold=0.01)
        assert derivation.pemd > 0.01

    def test_invalid_threshold(self, x2_cap):
        with pytest.raises(ValueError):
            derive_pemd(x2_cap, FilmCapacitorX2(), k_threshold=0.0)


class TestDeriveRuleSet:
    def test_maps_inductors_to_refdes(self, x2_cap):
        parts = {"C1": x2_cap, "C2": FilmCapacitorX2()}
        relevant = [SensitivityEntry("C1.ESL", "C2.ESL", 10.0, 1e6)]
        owner = {"C1.ESL": "C1", "C2.ESL": "C2"}
        rules = derive_rule_set(parts, relevant, owner, k_threshold_db_map=0.01)
        assert len(rules) == 1
        assert rules[0].pair() == ("C1", "C2")
        assert rules[0].source == "fit"

    def test_skips_unmapped_and_self_pairs(self, x2_cap):
        parts = {"C1": x2_cap}
        relevant = [
            SensitivityEntry("C1.ESL", "UNKNOWN", 10.0, 1e6),
            SensitivityEntry("C1.ESL", "C1.trace", 8.0, 1e6),
        ]
        owner = {"C1.ESL": "C1", "C1.trace": "C1"}
        rules = derive_rule_set(parts, relevant, owner)
        assert rules == []

    def test_type_pair_cache_reused(self, x2_cap):
        parts = {
            "C1": x2_cap,
            "C2": FilmCapacitorX2(),
            "C3": FilmCapacitorX2(),
        }
        relevant = [
            SensitivityEntry("C1.ESL", "C2.ESL", 10.0, 1e6),
            SensitivityEntry("C1.ESL", "C3.ESL", 9.0, 1e6),
        ]
        owner = {"C1.ESL": "C1", "C2.ESL": "C2", "C3.ESL": "C3"}
        cache: dict = {}
        rules = derive_rule_set(parts, relevant, owner, cache=cache)
        assert len(rules) == 2
        # Same part-number pair => one derivation in the cache.
        assert len(cache) == 1
        assert rules[0].pemd == pytest.approx(rules[1].pemd)

    def test_duplicate_pairs_deduplicated(self, x2_cap):
        parts = {"C1": x2_cap, "C2": FilmCapacitorX2()}
        relevant = [
            SensitivityEntry("C1.ESL", "C2.ESL", 10.0, 1e6),
            SensitivityEntry("C2.ESL", "C1.ESL", 9.0, 2e6),
        ]
        owner = {"C1.ESL": "C1", "C2.ESL": "C2"}
        rules = derive_rule_set(parts, relevant, owner)
        assert len(rules) == 1
