"""Tests for the ``repro-emi check`` CLI subcommand."""

import json

import pytest

from repro.cli import build_parser, main
from repro.io import write_problem

from conftest import build_small_problem

NETLIST = """\
* pi filter
V1 in 0 dc=12
L1 in out 10u
C1 out 0 1u
R1 out 0 50
"""


@pytest.fixture
def board_file(tmp_path):
    path = tmp_path / "board.txt"
    path.write_text(write_problem(build_small_problem(), title="check cli"))
    return path


@pytest.fixture
def broken_board_file(tmp_path, board_file):
    # Corrupt the K metadata of the first minimum-distance rule.
    lines = board_file.read_text().splitlines()
    for i, line in enumerate(lines):
        if line.startswith("RULE MINDIST"):
            lines[i] = line + " K 1.2"
            break
    path = tmp_path / "broken.txt"
    path.write_text("\n".join(lines) + "\n")
    return path


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["check", "x.txt"])
        assert args.format == "text"
        assert args.fail_on == "warning"
        assert args.netlist is None

    def test_flags(self):
        args = build_parser().parse_args(
            ["check", "x.txt", "--format", "json", "--fail-on", "error"]
        )
        assert args.format == "json"
        assert args.fail_on == "error"

    def test_rejects_unknown_format(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "x.txt", "--format", "xml"])


class TestCheckCommand:
    def test_clean_board_exits_zero(self, board_file, capsys):
        assert main(["check", str(board_file)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_broken_board_exits_two(self, broken_board_file, capsys):
        code = main(["check", str(broken_board_file)])
        assert code == 2
        assert "CPL001" in capsys.readouterr().out

    def test_fail_on_error_ignores_warnings(self, tmp_path, capsys):
        problem = build_small_problem()
        problem.add_net("NC", [("C1", "2")])  # NET002 warning only
        path = tmp_path / "warn.txt"
        path.write_text(write_problem(problem, title="warnings"))
        assert main(["check", str(path)]) == 1
        assert main(["check", str(path), "--fail-on", "error"]) == 0

    def test_json_output_schema(self, broken_board_file, capsys):
        code = main(["check", str(broken_board_file), "--format", "json"])
        assert code == 2
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == "repro-check-report/1"
        assert data["max_severity"] == "error"
        assert any(d["code"] == "CPL001" for d in data["diagnostics"])

    def test_netlist_flag_adds_circuit_analyzers(self, board_file, tmp_path, capsys):
        netlist = tmp_path / "filter.cir"
        netlist.write_text(NETLIST)
        code = main(["check", str(board_file), "--netlist", str(netlist)])
        assert code == 0
        out = capsys.readouterr().out
        assert "netlist" in out

    def test_missing_board_file(self, tmp_path, capsys):
        code = main(["check", str(tmp_path / "ghost.txt")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_unparseable_board_file(self, tmp_path, capsys):
        path = tmp_path / "garbage.txt"
        path.write_text("BOARD without numbers\n")
        code = main(["check", str(path)])
        assert code == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_missing_netlist_file(self, board_file, tmp_path, capsys):
        code = main(
            ["check", str(board_file), "--netlist", str(tmp_path / "ghost.cir")]
        )
        assert code == 2
        assert "cannot read" in capsys.readouterr().err
