"""Unit tests for the component-model analyzer (CMP0xx rules)."""

from dataclasses import dataclass, field

from repro.check import check_component_model
from repro.components import (
    FilmCapacitorX2,
    PowerDiode,
    PowerMosfet,
    small_bobbin_choke,
)
from repro.components.base import Component
from repro.geometry import Vec3
from repro.peec import CoreMaterial, ring_path

FERRITE = CoreMaterial("test-ferrite", mu_r=2000.0, stray_fraction=0.3)


def _codes(diagnostics):
    return sorted(d.code for d in diagnostics)


@dataclass
class RingPart(Component):
    """A well-formed air-core test part: one flat 6 mm ring."""

    part_number: str = "TEST-RING"
    footprint_w: float = 0.015
    footprint_h: float = 0.015
    body_height: float = 0.008
    ring_radius: float = 0.006

    def build_current_path(self):
        return ring_path(
            Vec3(0.0, 0.0, 0.004), self.ring_radius, name=self.part_number
        )


@dataclass
class FieldlessPart(Component):
    """A part without a field model (a connector)."""

    part_number: str = "TEST-CONN"
    footprint_w: float = 0.01
    footprint_h: float = 0.01
    body_height: float = 0.005


class TestLibraryParts:
    def test_shipped_parts_are_clean(self):
        for part in (
            FilmCapacitorX2(),
            small_bobbin_choke(),
            PowerMosfet(),
            PowerDiode(),
        ):
            assert check_component_model(part) == [], part.part_number

    def test_well_formed_test_part_is_clean(self):
        assert check_component_model(RingPart()) == []

    def test_fieldless_part_skips_field_rules(self):
        # No current path -> nothing to check beyond the parasitics.
        assert check_component_model(FieldlessPart()) == []


class TestCmp001NegativeEsr:
    def test_negative_esr(self):
        class ActivePart(RingPart):
            @property
            def esr(self):
                return -0.5

        diags = check_component_model(ActivePart())
        assert "CMP001" in _codes(diags)

    def test_negative_esr_reported_even_without_field_model(self):
        class ActiveConn(FieldlessPart):
            @property
            def esr(self):
                return -0.5

        assert _codes(check_component_model(ActiveConn())) == ["CMP001"]


class TestCmp002SuspiciousEsl:
    def test_huge_esl(self):
        class HenryPart(RingPart):
            @property
            def esl(self):
                return 0.5  # 0.5 H of "parasitic" inductance

        diags = check_component_model(HenryPart())
        assert "CMP002" in _codes(diags)
        assert any("0.5" in d.message or "5.000e-01" in d.message for d in diags)

    def test_nonpositive_esl(self):
        class ZeroEslPart(RingPart):
            @property
            def esl(self):
                return 0.0

        assert "CMP002" in _codes(check_component_model(ZeroEslPart()))


class TestCmp003DegenerateLoop:
    def test_cored_part_with_degenerate_loop(self):
        @dataclass
        class FlatLoop(RingPart):
            part_number: str = "TEST-DEGEN"
            core: CoreMaterial = field(default_factory=lambda: FERRITE)
            ring_radius: float = 1e-6  # vanishing loop: moment ~ 3e-12 m^2

        diags = check_component_model(FlatLoop())
        assert "CMP003" in _codes(diags)

    def test_air_core_degenerate_loop_is_tolerated(self):
        @dataclass
        class AirLoop(RingPart):
            part_number: str = "TEST-AIRDEGEN"
            ring_radius: float = 1e-6

        assert "CMP003" not in _codes(check_component_model(AirLoop()))


class TestCmp004AxisNotUnit:
    def test_non_unit_axis(self):
        class BadAxis(RingPart):
            def magnetic_axis_local(self):
                return Vec3(0.0, 0.0, 2.0)

        diags = check_component_model(BadAxis())
        assert "CMP004" in _codes(diags)
        assert any("2.0" in d.message for d in diags)


class TestCmp005PathOutsideFootprint:
    def test_oversized_current_path(self):
        @dataclass
        class Sprawler(RingPart):
            part_number: str = "TEST-SPRAWL"
            ring_radius: float = 0.05  # 50 mm ring on a 15 mm body

        diags = check_component_model(Sprawler())
        assert "CMP005" in _codes(diags)

    def test_label_appears_in_object_path(self):
        @dataclass
        class Sprawler(RingPart):
            ring_radius: float = 0.05

        diags = check_component_model(Sprawler(), label="L9")
        assert all(d.obj == "component:L9" for d in diags)
