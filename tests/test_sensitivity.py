"""Unit tests for the coupling sensitivity analysis."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.sensitivity import SensitivityAnalyzer, SensitivityEntry


def pi_filter_circuit() -> Circuit:
    """A pi filter between a noise source and a 50-ohm measurement node.

    Couplings between CA.ESL and CB.ESL bypass the choke and visibly raise
    the output level — the textbook case the paper's example cites.
    """
    c = Circuit("pi filter")
    c.add_vsource("VN", "src", "0", ac=1.0)
    c.add_resistor("RS", "src", "a", 10.0)
    c.add_real_capacitor("CA", "a", "0", 1e-6, esr=0.02, esl=15e-9)
    c.add_real_inductor("LF", "a", "b", 100e-6, esr=0.05)
    c.add_real_capacitor("CB", "b", "0", 1e-6, esr=0.02, esl=15e-9)
    c.add_resistor("RM", "b", "0", 50.0)
    # An electrically irrelevant stub inductor far from the signal path.
    c.add_inductor("LSTUB", "stub", "0", 1e-6)
    c.add_resistor("RSTUB", "b", "stub", 1e6)
    return c


FREQS = np.geomspace(1e6, 50e6, 12)


class TestAnalyzer:
    def test_probe_increases_filter_leakage(self):
        analyzer = SensitivityAnalyzer(pi_filter_circuit(), "b", FREQS, k_probe=0.05)
        entry = analyzer.probe_pair("CA.ESL", "CB.ESL")
        assert entry.impact_db > 3.0
        assert entry.worst_freq in FREQS

    def test_irrelevant_pair_low_impact(self):
        analyzer = SensitivityAnalyzer(pi_filter_circuit(), "b", FREQS, k_probe=0.05)
        relevant = analyzer.probe_pair("CA.ESL", "CB.ESL")
        irrelevant = analyzer.probe_pair("CA.ESL", "LSTUB")
        assert irrelevant.impact_db < relevant.impact_db

    def test_rank_sorted_descending(self):
        analyzer = SensitivityAnalyzer(pi_filter_circuit(), "b", FREQS, k_probe=0.05)
        ranking = analyzer.rank()
        impacts = [e.impact_db for e in ranking]
        assert impacts == sorted(impacts, reverse=True)
        assert len(ranking) == 6  # C(4 inductors, 2)

    def test_relevant_pairs_threshold(self):
        analyzer = SensitivityAnalyzer(pi_filter_circuit(), "b", FREQS, k_probe=0.05)
        relevant = analyzer.relevant_pairs(threshold_db=3.0)
        assert relevant
        assert all(e.impact_db >= 3.0 for e in relevant)
        pairs = {e.pair() for e in relevant}
        assert ("CA.ESL", "CB.ESL") in pairs

    def test_reduction_ratio(self):
        analyzer = SensitivityAnalyzer(pi_filter_circuit(), "b", FREQS, k_probe=0.05)
        ratio = analyzer.reduction_ratio(threshold_db=3.0)
        assert 0.0 < ratio < 1.0

    def test_baseline_cached(self):
        analyzer = SensitivityAnalyzer(pi_filter_circuit(), "b", FREQS)
        b1 = analyzer.baseline_db()
        b2 = analyzer.baseline_db()
        assert b1 is b2

    def test_probe_does_not_mutate_circuit(self):
        circuit = pi_filter_circuit()
        analyzer = SensitivityAnalyzer(circuit, "b", FREQS, k_probe=0.05)
        analyzer.probe_pair("CA.ESL", "CB.ESL")
        assert circuit.coupling_value("CA.ESL", "CB.ESL") == 0.0

    def test_probe_adds_on_top_of_existing(self):
        circuit = pi_filter_circuit()
        circuit.set_coupling("CA.ESL", "CB.ESL", 0.02)
        analyzer = SensitivityAnalyzer(circuit, "b", FREQS, k_probe=0.05)
        entry = analyzer.probe_pair("CA.ESL", "CB.ESL")
        assert entry.impact_db > 0.0

    def test_invalid_probe(self):
        with pytest.raises(ValueError):
            SensitivityAnalyzer(pi_filter_circuit(), "b", FREQS, k_probe=0.0)

    def test_explicit_candidates(self):
        analyzer = SensitivityAnalyzer(pi_filter_circuit(), "b", FREQS, k_probe=0.05)
        ranking = analyzer.rank([("CA.ESL", "LF.L")])
        assert len(ranking) == 1


class TestEntry:
    def test_pair_canonical(self):
        e = SensitivityEntry("Lb", "La", 3.0, 1e6)
        assert e.pair() == ("La", "Lb")
