"""Unit tests for the automatic sequential placer."""

import pytest

from repro.components import FilmCapacitorX2
from repro.geometry import Cuboid, Placement2D, Polygon2D, Rect
from repro.placement import (
    AutoPlacer,
    Board,
    DesignRuleChecker,
    Keepout3D,
    PlacedComponent,
    PlacementError,
    PlacementProblem,
    PlacerWeights,
)
from repro.rules import MinDistanceRule, RuleSet

from conftest import build_small_problem


class TestAutoPlacement:
    def test_places_everything_legally(self):
        problem = build_small_problem()
        report = AutoPlacer(problem).run()
        assert report.placed_count == 7
        assert report.violations_after == 0
        assert report.legal
        assert DesignRuleChecker(problem).is_legal()

    def test_runtime_seconds_scale(self):
        problem = build_small_problem()
        report = AutoPlacer(problem).run()
        # The paper quotes seconds for 29 parts; 7 parts must be well under.
        assert report.runtime_s < 5.0

    def test_priority_order_rules_first(self):
        problem = build_small_problem()
        report = AutoPlacer(problem).run()
        # L1 carries the largest PEMD budget (30+35 mm) -> placed early;
        # D1 has no rules -> placed last among the singles.
        assert report.order.index("L1") < report.order.index("D1")

    def test_preplaced_respected(self):
        problem = build_small_problem()
        problem.components["Q1"].placement = Placement2D.at(0.04, 0.03)
        problem.components["Q1"].fixed = True
        AutoPlacer(problem).run()
        assert problem.components["Q1"].center().is_close(
            Placement2D.at(0.04, 0.03).position
        )

    def test_impossible_problem_raises(self):
        tiny = Board(0, Polygon2D.rectangle(0, 0, 0.02, 0.02))
        problem = PlacementProblem([tiny])
        for i in range(4):
            problem.add_component(PlacedComponent(f"C{i}", FilmCapacitorX2()))
        with pytest.raises(PlacementError, match="no legal location"):
            AutoPlacer(problem).run()

    def test_keepout_avoided(self):
        board = Board(
            0,
            Polygon2D.rectangle(0, 0, 0.08, 0.06),
            keepouts=[Keepout3D("k", Cuboid(Rect(0.0, 0.0, 0.04, 0.06), 0.0, 0.05))],
        )
        problem = PlacementProblem([board])
        problem.add_component(PlacedComponent("C1", FilmCapacitorX2()))
        problem.add_component(PlacedComponent("C2", FilmCapacitorX2()))
        AutoPlacer(problem).run()
        for comp in problem.placed():
            assert comp.center().x > 0.04 - 1e-9

    def test_rules_disabled_mode(self):
        problem = build_small_problem()
        report = AutoPlacer(problem, respect_min_distance=False).run()
        assert report.placed_count == 7
        # Body legality still holds in baseline mode.
        checker = DesignRuleChecker(problem)
        assert not checker.check_body_spacing()
        assert not checker.check_keepin()

    def test_weights_affect_layout(self):
        problem_a = build_small_problem()
        AutoPlacer(problem_a, weights=PlacerWeights(wirelength=5.0, compactness=0.0)).run()
        problem_b = build_small_problem()
        AutoPlacer(problem_b, weights=PlacerWeights(wirelength=0.0, compactness=5.0)).run()
        pos_a = sorted((c.center().x, c.center().y) for c in problem_a.placed())
        pos_b = sorted((c.center().x, c.center().y) for c in problem_b.placed())
        assert pos_a != pos_b

    def test_group_members_near_each_other(self):
        problem = build_small_problem()
        problem.define_group("in", ["C1", "L1"])
        problem.define_group("out", ["C3", "L2"])
        AutoPlacer(problem).run()
        from repro.placement import group_spread

        # Groups stay tighter than the board diagonal.
        assert group_spread(problem, "in") < 0.06
        assert group_spread(problem, "out") < 0.06


class TestRotationIntegration:
    def test_rotation_plan_used(self):
        problem = build_small_problem()
        report = AutoPlacer(problem, optimize_rotation=True).run()
        assert report.rotation_plan is not None
        assert report.rotation_plan.final_emd_sum <= report.rotation_plan.initial_emd_sum

    def test_no_rotation_mode(self):
        problem = build_small_problem()
        report = AutoPlacer(problem, optimize_rotation=False).run()
        assert report.rotation_plan is None
        assert report.violations_after == 0


class TestTightBoard:
    def test_dense_rules_still_placeable(self):
        # Six capacitors with mutual 20 mm rules on a 90x70 board: needs
        # both rotation and careful positioning.
        problem = PlacementProblem([Board(0, Polygon2D.rectangle(0, 0, 0.09, 0.07))])
        refs = []
        for i in range(6):
            ref = f"C{i + 1}"
            problem.add_component(PlacedComponent(ref, FilmCapacitorX2()))
            refs.append(ref)
        rules = [
            MinDistanceRule(refs[i], refs[j], pemd=0.02)
            for i in range(6)
            for j in range(i + 1, 6)
        ]
        problem.rules = RuleSet(min_distance=rules)
        report = AutoPlacer(problem).run()
        assert report.violations_after == 0
