"""Unit tests for the interactive placement session (online DRC)."""

import pytest

from repro.geometry import Vec2
from repro.placement import AutoPlacer, InteractiveSession

from conftest import build_small_problem


def session_with_layout() -> InteractiveSession:
    problem = build_small_problem()
    AutoPlacer(problem).run()
    return InteractiveSession(problem)


class TestSelection:
    def test_select_unknown_raises(self):
        session = session_with_layout()
        with pytest.raises(KeyError):
            session.select("Z9")

    def test_select_fixed_raises(self):
        session = session_with_layout()
        session.problem.components["C1"].fixed = True
        with pytest.raises(ValueError):
            session.select("C1")

    def test_operation_without_selection_raises(self):
        session = session_with_layout()
        with pytest.raises(RuntimeError):
            session.move_by(Vec2(1e-3, 0.0))


class TestMoveAndRotate:
    def test_legal_move_feedback(self):
        session = session_with_layout()
        session.select("D1")
        result = session.move_by(Vec2(1e-3, 0.0))
        assert result.refdes == "D1"
        assert isinstance(result.area, float)
        assert result.markers  # rules exist in the fixture

    def test_violating_move_reports_red(self):
        session = session_with_layout()
        c2 = session.problem.components["C2"]
        c1 = session.problem.components["C1"]
        session.select("C2")
        # Teleport C2 onto C1: overlap + min-distance violations.
        result = session.move_to(c1.center() + Vec2(1e-3, 0.0))
        assert not result.legal
        kinds = {v.kind for v in result.violations}
        assert "overlap" in kinds

    def test_rotate_to_and_by(self):
        session = session_with_layout()
        session.select("C3")
        session.rotate_to(0.0)
        result = session.rotate_by(90.0)
        comp = session.problem.components["C3"]
        assert comp.placement.rotation_deg == pytest.approx(90.0)
        assert result.refdes == "C3"

    def test_move_unplaced_requires_move_to(self):
        session = session_with_layout()
        session.problem.components["D1"].placement = None
        session.select("D1")
        with pytest.raises(RuntimeError):
            session.move_by(Vec2(1e-3, 0))
        result = session.move_to(Vec2(0.01, 0.01))
        assert session.problem.components["D1"].is_placed
        assert result.refdes == "D1"


class TestUndo:
    def test_undo_restores_placement(self):
        session = session_with_layout()
        session.select("C2")
        before = session.problem.components["C2"].placement
        session.move_by(Vec2(5e-3, 0.0))
        assert session.undo()
        assert session.problem.components["C2"].placement == before

    def test_undo_empty_stack(self):
        session = session_with_layout()
        assert not session.undo()

    def test_undo_across_operations(self):
        session = session_with_layout()
        session.select("C2")
        p0 = session.problem.components["C2"].placement
        session.move_by(Vec2(1e-3, 0.0))
        session.rotate_by(90.0)
        session.undo()
        session.undo()
        assert session.problem.components["C2"].placement == p0


class TestAdviser:
    def test_compact_step_shrinks_or_stops(self):
        session = session_with_layout()
        area0 = session.area()
        moved_any = False
        for ref in list(session.problem.components):
            if session.problem.components[ref].fixed:
                continue
            for _ in range(10):
                result = session.compact_step(ref, step=0.5e-3)
                if result is None:
                    break
                moved_any = True
        if moved_any:
            assert session.area() <= area0 + 1e-12
        assert session.board_is_legal()

    def test_board_is_legal_after_auto_place(self):
        session = session_with_layout()
        assert session.board_is_legal()


class TestSuggestPosition:
    def test_suggestion_is_legal(self):
        session = session_with_layout()
        suggestion = session.suggest_position("C2")
        assert suggestion is not None
        session.select("C2")
        result = session.move_to(suggestion)
        assert result.legal

    def test_current_placement_restored(self):
        session = session_with_layout()
        before = session.problem.components["C2"].placement
        session.suggest_position("C2")
        assert session.problem.components["C2"].placement == before

    def test_unknown_refdes(self):
        session = session_with_layout()
        with pytest.raises(KeyError):
            session.suggest_position("Z9")

    def test_unplaced_component_gets_suggestion(self):
        session = session_with_layout()
        session.problem.components["D1"].placement = None
        suggestion = session.suggest_position("D1")
        assert suggestion is not None
