"""Unit tests for the netlist analyzer (NET0xx rules)."""

from repro.check import check_netlist, check_problem_nets
from repro.circuit import Circuit

from conftest import build_small_problem


def _codes(diagnostics):
    return sorted(d.code for d in diagnostics)


def build_clean_circuit() -> Circuit:
    c = Circuit("clean")
    c.add_vsource("V1", "in", "0", dc=12.0)
    c.add_inductor("L1", "in", "sw", 10e-6)
    c.add_resistor("R1", "sw", "out", 1.0)
    c.add_capacitor("C1", "out", "0", 1e-6)
    c.add_resistor("Rload", "out", "0", 50.0)
    return c


class TestCleanCircuit:
    def test_no_findings(self):
        assert check_netlist(build_clean_circuit()) == []

    def test_ground_aliases_are_canonical(self):
        c = Circuit("alias")
        c.add_vsource("V1", "in", "GND", dc=1.0)
        c.add_resistor("R1", "in", "0", 10.0)
        # 'GND' and '0' are the same node: no floating, no dangling.
        assert check_netlist(c) == []


class TestFloatingNodes:
    def test_capacitor_only_island_floats(self):
        c = build_clean_circuit()
        # A node connected solely through a capacitor has no DC return.
        c.add_capacitor("Cx", "sw", "island", 1e-9)
        c.add_capacitor("Cy", "island", "0", 1e-9)
        diags = check_netlist(c)
        assert "NET001" in _codes(diags)
        flagged = [d for d in diags if d.code == "NET001"]
        assert any("island" in d.message for d in flagged)

    def test_resistor_path_grounds_the_node(self):
        c = build_clean_circuit()
        c.add_capacitor("Cx", "sw", "island", 1e-9)
        c.add_resistor("Rb", "island", "0", 1e6)
        assert not [d for d in check_netlist(c) if d.code == "NET001"]


class TestDanglingNodes:
    def test_single_terminal_node(self):
        c = build_clean_circuit()
        c.add_resistor("Rstub", "out", "nowhere", 10.0)
        diags = [d for d in check_netlist(c) if d.code == "NET002"]
        assert len(diags) == 1
        assert "nowhere" in diags[0].message
        assert diags[0].obj == "circuit/node:nowhere"


class TestShortedSources:
    def test_source_across_ground_aliases(self):
        c = Circuit("short")
        c.add_vsource("V1", "0", "GND", dc=5.0)
        c.add_resistor("R1", "0", "a", 1.0)
        c.add_resistor("R2", "a", "0", 1.0)
        diags = [d for d in check_netlist(c) if d.code == "NET003"]
        assert len(diags) == 1
        assert "V1" in diags[0].message

    def test_parallel_sources(self):
        c = Circuit("parallel")
        c.add_vsource("V1", "in", "0", dc=5.0)
        c.add_vsource("V2", "0", "in", dc=3.0)
        c.add_resistor("R1", "in", "0", 1.0)
        diags = [d for d in check_netlist(c) if d.code == "NET003"]
        assert len(diags) == 1
        assert "V1" in diags[0].message and "V2" in diags[0].message

    def test_series_sources_are_fine(self):
        c = Circuit("series")
        c.add_vsource("V1", "in", "mid", dc=5.0)
        c.add_vsource("V2", "mid", "0", dc=5.0)
        c.add_resistor("R1", "in", "0", 1.0)
        assert not [d for d in check_netlist(c) if d.code == "NET003"]


class TestGroundReference:
    def test_ungrounded_circuit(self):
        c = Circuit("nogride")
        c.add_vsource("V1", "a", "b", dc=1.0)
        c.add_resistor("R1", "a", "b", 1.0)
        diags = check_netlist(c)
        assert "NET004" in _codes(diags)
        # Every non-ground node also fails the reachability walk.
        assert "NET001" in _codes(diags)

    def test_empty_circuit_has_no_findings(self):
        assert check_netlist(Circuit("empty")) == []


class TestValueMagnitudes:
    def test_farad_scale_capacitor_flagged(self):
        c = build_clean_circuit()
        c.add_capacitor("Cbig", "out", "0", 4.7)  # 4.7 F: surely meant uF
        diags = [d for d in check_netlist(c) if d.code == "NET005"]
        assert len(diags) == 1
        assert "Cbig" in diags[0].message

    def test_teraohm_resistance_flagged(self):
        c = build_clean_circuit()
        c.add_resistor("Rhuge", "out", "0", 1e12)  # 1 Tohm: not a board part
        assert [d.code for d in check_netlist(c) if d.code == "NET005"] == ["NET005"]

    def test_board_level_values_pass(self):
        c = build_clean_circuit()
        c.add_inductor("Lp", "out", "0", 5e-9)  # 5 nH trace parasitic
        assert not [d for d in check_netlist(c) if d.code == "NET005"]


class TestProblemNets:
    def test_small_problem_nets_are_clean(self):
        assert check_problem_nets(build_small_problem()) == []

    def test_single_pin_net(self):
        problem = build_small_problem()
        problem.add_net("NC", [("C1", "2")])
        diags = check_problem_nets(problem)
        assert _codes(diags) == ["NET002"]
        assert "NC" in diags[0].message

    def test_empty_net(self):
        problem = build_small_problem()
        problem.add_net("VOID", [])
        diags = check_problem_nets(problem)
        assert _codes(diags) == ["NET002"]
        assert "(none)" in diags[0].message
