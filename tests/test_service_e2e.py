"""The issue's acceptance run: 8 concurrent demo-board jobs over HTTP.

Every job must reach ``succeeded`` with a schema-valid RunReport
artifact and a gap-free, monotonic SSE sequence, while the service's
queue-depth and completion counters appear in the Prometheus export.
All jobs share one persistent coupling cache, so the test also
exercises concurrent writers against the content-addressed store.
"""

import json
import threading
import urllib.request

from repro.obs import RunReport
from repro.service import EmiService, ServiceConfig

from test_service_http import read_sse, request_json

N_JOBS = 8


def test_eight_concurrent_flow_jobs(tmp_path):
    config = ServiceConfig(
        port=0,
        pool_workers=4,
        data_dir=tmp_path / "data",
        cache_dir=tmp_path / "cache",  # shared by all 8 jobs
        job_timeout_s=300.0,
    )
    service = EmiService(config)
    base_url = service.start()
    try:
        # submit all eight before any finishes: the queue must actually fill
        payload = {"design": {"kind": "buck", "params": {}}, "options": {"workers": 1}}
        job_ids = []
        for _ in range(N_JOBS):
            status, snap = request_json(base_url + "/jobs", "POST", payload)
            assert status == 202
            job_ids.append(snap["id"])
        assert len(set(job_ids)) == N_JOBS

        # one SSE subscriber per job, all concurrent
        outcomes: dict[str, tuple] = {}
        errors: list[BaseException] = []

        def follow(job_id: str) -> None:
            try:
                outcomes[job_id] = read_sse(base_url, job_id, timeout=280)
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=follow, args=(job_id,), name=f"sse-{job_id}")
            for job_id in job_ids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors, errors
        assert len(outcomes) == N_JOBS

        for job_id in job_ids:
            ids, events, end = outcomes[job_id]
            assert end["state"] == "succeeded", (job_id, end["error"])
            assert end["progress"] == 1.0
            assert end["events_dropped"] == 0
            # gap-free monotonic SSE sequence, from the very first event
            assert ids == list(range(1, len(ids) + 1)), job_id
            assert [e["seq"] for e in events] == ids

            # schema-valid RunReport artifact for every job
            with urllib.request.urlopen(
                f"{base_url}/jobs/{job_id}/artifacts/run_report.json"
            ) as response:
                report = RunReport.from_json(response.read().decode())
            assert report.meta["status"] == "ok"
            assert report.meta["job_id"] == job_id
            assert report.root.wall_s > 0.0

            # the paper's headline must hold in every artifact set
            with urllib.request.urlopen(
                f"{base_url}/jobs/{job_id}/artifacts/result.json"
            ) as response:
                result = json.load(response)
            assert result["layouts"]["optimized"]["passes_limits"]

        # the shared persistent cache pays off across jobs
        metrics_text = urllib.request.urlopen(base_url + "/metrics").read().decode()
        assert "service.queue_depth" in metrics_text
        assert "service.jobs_completed" in metrics_text
        completed = [
            line
            for line in metrics_text.splitlines()
            if 'counter="service.jobs_completed"' in line
        ]
        assert completed and completed[0].endswith(f" {N_JOBS}")
        hits = [
            line
            for line in metrics_text.splitlines()
            if 'counter="service.cache_hits"' in line
        ]
        assert hits, "shared cache must register hits across the 8 jobs"
    finally:
        service.stop()
