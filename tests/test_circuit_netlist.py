"""Unit tests for the Circuit container and component-level builders."""

import pytest

from repro.circuit import Circuit, Inductor


class TestBasicAdds:
    def test_duplicate_names_rejected(self):
        c = Circuit()
        c.add_resistor("R1", "a", "b", 1.0)
        with pytest.raises(ValueError):
            c.add_resistor("R1", "b", "c", 2.0)

    def test_node_names_exclude_ground(self):
        c = Circuit()
        c.add_resistor("R1", "in", "0", 1.0)
        c.add_resistor("R2", "in", "out", 1.0)
        assert c.node_names() == ["in", "out"]

    def test_find(self):
        c = Circuit()
        c.add_capacitor("C1", "a", "0", 1e-9)
        assert c.find("C1").capacitance == 1e-9
        with pytest.raises(KeyError):
            c.find("C2")

    def test_stats(self):
        c = Circuit()
        c.add_resistor("R1", "a", "0", 1.0)
        c.add_inductor("L1", "a", "b", 1e-6)
        c.add_inductor("L2", "b", "0", 1e-6)
        c.add_coupling("K1", "L1", "L2", 0.1)
        stats = c.stats()
        assert stats["Resistor"] == 1
        assert stats["Inductor"] == 2
        assert stats["MutualCoupling"] == 1


class TestCouplings:
    def circuit(self) -> Circuit:
        c = Circuit()
        c.add_inductor("L1", "a", "0", 1e-6)
        c.add_inductor("L2", "b", "0", 1e-6)
        return c

    def test_coupling_requires_existing_inductors(self):
        c = self.circuit()
        with pytest.raises(KeyError):
            c.add_coupling("K1", "L1", "L9", 0.1)

    def test_set_coupling_creates_then_updates(self):
        c = self.circuit()
        c.set_coupling("L1", "L2", 0.1)
        assert c.coupling_value("L1", "L2") == 0.1
        c.set_coupling("L2", "L1", 0.2)  # order-insensitive update
        assert c.coupling_value("L1", "L2") == 0.2
        assert len(c.couplings) == 1

    def test_remove_coupling(self):
        c = self.circuit()
        c.set_coupling("L1", "L2", 0.1)
        assert c.remove_coupling("L2", "L1")
        assert not c.remove_coupling("L1", "L2")
        assert c.coupling_value("L1", "L2") == 0.0

    def test_duplicate_coupling_name_rejected(self):
        c = self.circuit()
        c.add_coupling("K1", "L1", "L2", 0.1)
        with pytest.raises(ValueError):
            c.add_coupling("K1", "L2", "L1", 0.2)


class TestRealComponentBuilders:
    def test_real_capacitor_full_expansion(self):
        c = Circuit()
        esl = c.add_real_capacitor("CX", "in", "0", 1e-6, esr=0.01, esl=10e-9)
        assert isinstance(esl, Inductor)
        assert esl.name == "CX.ESL"
        names = {e.name for e in c.elements}
        assert names == {"CX.C", "CX.ESR", "CX.ESL"}

    def test_real_capacitor_ideal(self):
        c = Circuit()
        assert c.add_real_capacitor("CX", "in", "0", 1e-6) is None
        assert len(c.elements) == 1

    def test_real_capacitor_negative_parasitics(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.add_real_capacitor("CX", "in", "0", 1e-6, esr=-1.0)

    def test_real_inductor_with_epc(self):
        c = Circuit()
        main = c.add_real_inductor("LF", "a", "b", 10e-6, esr=0.05, epc=5e-12)
        assert main.name == "LF.L"
        names = {e.name for e in c.elements}
        assert names == {"LF.L", "LF.ESR", "LF.EPC"}

    def test_trace(self):
        c = Circuit()
        ind = c.add_trace("T1", "a", "b", 20e-9, resistance=2e-3)
        assert ind.inductance == 20e-9
        assert {e.name for e in c.elements} == {"T1.L", "T1.R"}

    def test_clone_independent(self):
        c = Circuit()
        c.add_inductor("L1", "a", "0", 1e-6)
        c.add_inductor("L2", "b", "0", 1e-6)
        c.set_coupling("L1", "L2", 0.1)
        d = c.clone()
        d.set_coupling("L1", "L2", 0.5)
        assert c.coupling_value("L1", "L2") == 0.1
