"""Unit tests for shielded/unshielded SMD power inductors."""

import pytest

from repro.components import (
    SmdPowerInductor,
    shielded_power_inductor,
    unshielded_power_inductor,
)
from repro.coupling import pair_coupling_factor
from repro.geometry import Placement2D
from repro.rules import derive_pemd


class TestConstruction:
    def test_vertical_axis(self):
        axis = shielded_power_inductor().magnetic_axis_local()
        assert abs(axis.z) == pytest.approx(1.0, abs=1e-6)

    def test_rotation_invariant_residual(self):
        assert shielded_power_inductor().decoupling_residual == pytest.approx(1.0)

    def test_same_winding_same_inductance(self):
        # The shield changes the stray field, not the (first-order) L.
        assert shielded_power_inductor().self_inductance == pytest.approx(
            unshielded_power_inductor().self_inductance
        )

    def test_core_assignment(self):
        assert shielded_power_inductor().core.stray_fraction < 0.2
        assert unshielded_power_inductor().core.stray_fraction > 0.8

    def test_rated_override(self):
        ind = SmdPowerInductor(rated_inductance=22e-6)
        assert ind.inductance == pytest.approx(22e-6)

    def test_invalid_turns(self):
        with pytest.raises(ValueError):
            SmdPowerInductor(turns=0)

    def test_esr_plausible(self):
        assert 1e-3 < shielded_power_inductor().esr < 1.0


class TestShieldingEffect:
    def test_shield_cuts_coupling(self):
        pa, pb = Placement2D.at(0, 0), Placement2D.at(0.02, 0)
        k_shielded = abs(
            pair_coupling_factor(
                shielded_power_inductor(), pa, shielded_power_inductor(), pb
            )
        )
        k_open = abs(
            pair_coupling_factor(
                unshielded_power_inductor(), pa, unshielded_power_inductor(), pb
            )
        )
        assert k_shielded < 0.2 * k_open

    def test_shield_shrinks_pemd(self):
        pemd_shielded = derive_pemd(
            shielded_power_inductor(), shielded_power_inductor(), 0.01
        ).pemd
        pemd_open = derive_pemd(
            unshielded_power_inductor(), unshielded_power_inductor(), 0.01
        ).pemd
        # Part selection as an EMC lever: the shielded pair may sit roughly
        # twice as close for the same coupling budget.
        assert pemd_shielded < 0.7 * pemd_open

    def test_mixed_pair_between_the_extremes(self):
        pa, pb = Placement2D.at(0, 0), Placement2D.at(0.02, 0)
        k_mixed = abs(
            pair_coupling_factor(
                shielded_power_inductor(), pa, unshielded_power_inductor(), pb
            )
        )
        k_open = abs(
            pair_coupling_factor(
                unshielded_power_inductor(), pa, unshielded_power_inductor(), pb
            )
        )
        k_shielded = abs(
            pair_coupling_factor(
                shielded_power_inductor(), pa, shielded_power_inductor(), pb
            )
        )
        assert k_shielded < k_mixed < k_open


class TestLibraryAndIo:
    def test_in_default_library(self):
        from repro.components import default_library

        lib = default_library()
        assert "SMD-IND-SH" in lib and "SMD-IND-UN" in lib

    def test_ascii_roundtrip(self):
        from repro.geometry import Polygon2D
        from repro.io import read_problem, write_problem
        from repro.placement import Board, PlacedComponent, PlacementProblem

        problem = PlacementProblem([Board(0, Polygon2D.rectangle(0, 0, 0.05, 0.05))])
        problem.add_component(PlacedComponent("L1", shielded_power_inductor()))
        again = read_problem(write_problem(problem))
        twin = again.components["L1"].component
        assert type(twin).__name__ == "SmdPowerInductor"
        assert twin.footprint_w == pytest.approx(10e-3)
