"""Unit tests of the service job model: payload parsing, ids, lifecycle."""

import threading

import pytest

from repro.obs import EventBus, EventRingBuffer
from repro.service import (
    Job,
    JobState,
    PayloadError,
    content_hash,
    parse_job_payload,
)
from repro.service.errors import JobCancelled, JobTimeout

SMALL_BOARD = """EMIPLACE 1
TITLE service test board
BOARD 0 GROUND 1
  OUTLINE 0,0 70,0 70,50 0,50
END
COMP CX1 TYPE FilmCapacitorX2 PN CX1-X2 SIZE 18x8x15
COMP LF1 TYPE BobbinChoke PN LF1-CH SIZE 12x10x12
COMP Q1 TYPE PowerMosfet PN Q1-DPAK SIZE 10x9x2.3
NET VIN CX1.1 LF1.1
NET VBUS LF1.2 Q1.D
RULE CLEAR * * 0.5
"""


def make_job(payload=None, **overrides):
    request = parse_job_payload(
        payload or {"design": {"kind": "buck", "params": {}}}
    )
    if overrides:
        from dataclasses import replace

        request = replace(
            request, options=replace(request.options, **overrides)
        )
    import tempfile
    from pathlib import Path

    return Job(
        id="j0001-" + request.digest[:12],
        seq=1,
        request=request,
        artifacts_dir=Path(tempfile.mkdtemp()),
        bus=EventBus(),
        ring=EventRingBuffer(capacity=256),
        sink=None,
    )


class TestContentHash:
    def test_deterministic_and_order_insensitive(self):
        a = {"design": {"kind": "buck", "params": {"t_rise": 1e-8}}}
        b = {"design": {"params": {"t_rise": 1e-8}, "kind": "buck"}}
        assert content_hash(a) == content_hash(b)
        assert len(content_hash(a)) == 64

    def test_distinct_payloads_differ(self):
        a = {"design": {"kind": "buck", "params": {}}}
        b = {"design": {"kind": "buck", "params": {"t_rise": 2e-8}}}
        assert content_hash(a) != content_hash(b)


class TestParseFlowPayload:
    def test_minimal(self):
        request = parse_job_payload({"design": {"kind": "buck", "params": {}}})
        assert request.kind == "flow"
        assert request.options.workers == 1
        assert request.options.precheck is True
        assert request.build_design() is not None

    def test_params_flow_into_design(self):
        request = parse_job_payload(
            {"design": {"kind": "buck", "params": {"switching_frequency": 250e3}}}
        )
        assert request.build_design().switching_frequency == 250e3

    def test_options_parsed(self):
        request = parse_job_payload(
            {
                "design": {"kind": "buck", "params": {}},
                "options": {"workers": 4, "timeout_s": 10.0, "precheck": False},
            }
        )
        assert request.options.workers == 4
        assert request.options.timeout_s == 10.0
        assert "check" not in request.stage_plan()

    @pytest.mark.parametrize(
        "payload",
        [
            "not a mapping",
            {},
            {"design": {"kind": "buck"}, "board": SMALL_BOARD},
            {"design": {"kind": "llc", "params": {}}},
            {"design": {"kind": "buck", "params": {"nonsense": 1.0}}},
            {"design": {"kind": "buck", "params": {"input_voltage": -14.0}}},
            {"design": {"kind": "buck", "params": {}}, "options": {"workers": 0}},
            {"design": {"kind": "buck", "params": {}}, "options": {"workers": 99}},
            {"design": {"kind": "buck", "params": {}}, "options": {"timeout_s": -1}},
            {"design": {"kind": "buck", "params": {}}, "options": {"typo": 1}},
            {"design": {"kind": "buck", "params": {}}, "extra_key": True},
            {"board": 42},
            {"board": ""},
            {"board": "THIS IS NOT EMIPLACE\n"},
        ],
    )
    def test_rejections(self, payload):
        with pytest.raises(PayloadError):
            parse_job_payload(payload)

    def test_rejection_message_names_the_key(self):
        with pytest.raises(PayloadError, match="nonsense"):
            parse_job_payload(
                {"design": {"kind": "buck", "params": {"nonsense": 1.0}}}
            )


class TestParseBoardPayload:
    def test_valid_board(self):
        request = parse_job_payload({"board": SMALL_BOARD})
        assert request.kind == "board"
        assert request.build_problem().components

    def test_failing_board_carries_check_report(self):
        # A keepout swallowing the whole board is a check *error*.
        bad = SMALL_BOARD.replace(
            "END",
            "  KEEPOUT big 0,0 70,50 Z 0 99\nEND",
        )
        with pytest.raises(PayloadError) as excinfo:
            parse_job_payload({"board": bad})
        report = excinfo.value.check_report
        assert report is not None
        assert report.errors()


class TestJobLifecycle:
    def test_happy_path(self):
        job = make_job()
        assert job.state == JobState.QUEUED
        assert job.mark_running()
        assert job.state == JobState.RUNNING
        job.finish(JobState.SUCCEEDED, result={"ok": True})
        assert job.state == JobState.SUCCEEDED
        assert job.is_terminal()
        # finish is idempotent: a late second verdict cannot flip it.
        job.finish(JobState.FAILED, error={"kind": "late"})
        assert job.state == JobState.SUCCEEDED
        assert job.error is None

    def test_cancel_while_queued_is_immediate(self):
        job = make_job()
        assert job.request_cancel()
        assert job.state == JobState.CANCELLED
        assert not job.mark_running()

    def test_cancel_while_running_is_cooperative(self):
        job = make_job()
        job.mark_running()
        assert job.request_cancel()
        assert job.state == JobState.RUNNING  # still running...
        with pytest.raises(JobCancelled):
            job.checkpoint()  # ...until the next checkpoint

    def test_cancel_after_terminal_is_refused(self):
        job = make_job()
        job.mark_running()
        job.finish(JobState.SUCCEEDED)
        assert not job.request_cancel()
        assert job.state == JobState.SUCCEEDED

    def test_timeout_at_checkpoint(self):
        job = make_job(timeout_s=0.000001)
        job.mark_running()
        with pytest.raises(JobTimeout):
            job.checkpoint()

    def test_terminal_event_published(self):
        job = make_job()
        job.mark_running()
        job.finish(JobState.SUCCEEDED)
        names = [e.name for e in job.ring.snapshot()]
        assert "service.job_queued" in names
        assert "service.job_started" in names
        assert "service.job_finished" in names


class TestSnapshot:
    def test_snapshot_shape(self):
        job = make_job()
        snap = job.snapshot()
        assert snap["state"] == "queued"
        assert snap["kind"] == "flow"
        assert snap["content_hash"] == job.request.digest
        assert snap["progress"] == 0.0
        assert snap["error"] is None
        assert isinstance(snap["artifacts"], list)

    def test_stage_progress_from_bus(self):
        job = make_job()
        job.mark_running()
        plan = job.request.stage_plan()
        job.bus.publish("stage", name=plan[0], attrs={"status": "start"})
        snap = job.snapshot()
        assert snap["current_stage"] == plan[0]
        assert snap["stages"][plan[0]] == "running"
        assert 0.0 < snap["progress"] < 1.0
        job.bus.publish("stage", name=plan[0], attrs={"status": "done"})
        assert job.snapshot()["stages"][plan[0]] == "done"

    def test_seq_is_gap_free(self):
        job = make_job()
        for _ in range(10):
            job.bus.publish("log", name="tick")
        seqs = [e.seq for e in job.ring.snapshot()]
        assert seqs == list(range(1, len(seqs) + 1))

    def test_concurrent_publishers_keep_seq_dense(self):
        job = make_job()

        def hammer():
            for _ in range(100):
                job.bus.publish("counter", name="n", value=1.0)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = sorted(e.seq for e in job.ring.snapshot())
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
