"""Unit tests for the end-to-end EmiDesignFlow facade.

Uses session-scoped fixtures: the expensive artefacts (sensitivity ranking,
derived rules, the layout comparison) are computed once for the whole
suite.
"""

import numpy as np
import pytest

from repro.converters import COUPLING_BRANCHES


class TestSensitivityStage:
    def test_ranking_covers_all_branch_pairs(self, design_flow):
        entries = design_flow.run_sensitivity()
        n = len(COUPLING_BRANCHES)
        assert len(entries) == n * (n - 1) // 2

    def test_ranking_cached(self, design_flow):
        assert design_flow.run_sensitivity() is design_flow.run_sensitivity()

    def test_relevant_pairs_subset(self, design_flow):
        relevant = design_flow.relevant_pairs()
        assert 0 < len(relevant) < len(design_flow.run_sensitivity())
        assert all(e.impact_db >= design_flow.sensitivity_threshold_db for e in relevant)

    def test_input_filter_pairs_dominate(self, design_flow):
        # The most dangerous couplings involve the LISN-side capacitor CX1.
        top5 = design_flow.run_sensitivity()[:5]
        assert any("CX1.ESL" in (e.inductor_a, e.inductor_b) for e in top5)


class TestRuleStage:
    def test_rules_cover_relevant_pairs(self, design_flow):
        rules = design_flow.derive_rules()
        assert rules
        refs = {r.pair() for r in rules}
        assert len(refs) == len(rules)  # no duplicates

    def test_pemd_magnitudes(self, design_flow):
        for rule in design_flow.derive_rules():
            assert 0.005 < rule.pemd < 0.08
            assert 0.0 <= rule.residual <= 1.0

    def test_problem_with_rules(self, design_flow):
        problem = design_flow.problem_with_rules()
        assert problem.rules.min_distance == design_flow.derive_rules()


class TestComparison:
    def test_baseline_violates_optimized_does_not(self, layout_comparison):
        assert layout_comparison["baseline"].violations > 0
        assert layout_comparison["optimized"].violations == 0

    def test_optimized_layout_quieter(self, layout_comparison):
        b = layout_comparison["baseline"].spectrum
        o = layout_comparison["optimized"].spectrum
        delta = b.dbuv() - o.dbuv()
        # The paper: optimised placement reduces emissions up to ~20 dB;
        # our reproduction must show a double-digit peak improvement.
        assert float(np.max(delta)) > 8.0

    def test_optimized_margin_better(self, layout_comparison):
        assert (
            layout_comparison["optimized"].worst_margin_db
            > layout_comparison["baseline"].worst_margin_db
        )

    def test_couplings_recorded(self, layout_comparison):
        for ev in layout_comparison.values():
            assert ev.couplings
            assert all(abs(k) <= 1.0 for k in ev.couplings.values())

    def test_baseline_has_stronger_couplings(self, layout_comparison):
        base_max = max(abs(k) for k in layout_comparison["baseline"].couplings.values())
        opt_max = max(abs(k) for k in layout_comparison["optimized"].couplings.values())
        assert base_max > opt_max


class TestVerificationHelpers:
    def test_measurement_tracks_full_model(self, design_flow, layout_comparison):
        ev = layout_comparison["baseline"]
        meas = design_flow.measurement_for(ev)
        with_k = ev.spectrum
        without_k = design_flow.predict()
        assert meas.mean_abs_error_db(with_k) < meas.mean_abs_error_db(without_k)

    def test_receiver_trace_grid(self, design_flow, layout_comparison):
        trace = design_flow.receiver_trace(
            layout_comparison["optimized"].spectrum, points=80
        )
        assert len(trace) == 80
        assert trace.freqs[0] == pytest.approx(150e3)

    def test_predict_without_couplings_matches_design(self, design_flow, buck_design):
        a = design_flow.predict()
        b = buck_design.emission_spectrum()
        assert np.allclose(np.abs(a.values), np.abs(b.values))


class TestGroundPlaneFlow:
    def test_plane_changes_rules_and_couplings(self):
        from repro.converters import BuckConverterDesign
        from repro.core import EmiDesignFlow

        # The plane *enhances* the horizontal-axis couplings (image
        # theory), so the rules grow — give the layout room to satisfy
        # them.
        design = BuckConverterDesign(board_width=0.1, board_height=0.08)
        flow = EmiDesignFlow(design, ground_plane_z=-0.5e-3)
        rules = flow.derive_rules()
        assert rules
        problem, _ = flow.place_optimized()
        evaluation = flow.evaluate("shielded", problem)
        assert evaluation.violations == 0
        assert all(abs(k) <= 1.0 for k in evaluation.couplings.values())

    def test_plane_rules_differ_from_free_space(self, design_flow, buck_design):
        from repro.core import EmiDesignFlow

        shielded_flow = EmiDesignFlow(buck_design, ground_plane_z=-0.5e-3)
        free_rules = {r.pair(): r.pemd for r in design_flow.derive_rules()}
        shielded_rules = {r.pair(): r.pemd for r in shielded_flow.derive_rules()}
        common = set(free_rules) & set(shielded_rules)
        assert common
        # The plane moves at least some PEMDs noticeably (either way).
        moved = [
            p for p in common
            if abs(shielded_rules[p] - free_rules[p]) > 0.1 * free_rules[p]
        ]
        assert moved


class TestFlowReport:
    def test_report_structure(self, design_flow, layout_comparison):
        from repro.core import flow_report

        report = flow_report(design_flow, layout_comparison)
        assert report.startswith("# EMI design-flow report")
        assert "## Sensitivity analysis" in report
        assert "## Derived minimum-distance rules" in report
        assert "### Layout: baseline" in report
        assert "### Layout: optimized" in report
        assert "PASS" in report and "FAIL" in report

    def test_report_quotes_rules(self, design_flow, layout_comparison):
        from repro.core import flow_report

        report = flow_report(design_flow, layout_comparison)
        for rule in design_flow.derive_rules():
            assert f"{rule.ref_a}-{rule.ref_b}" in report

    def test_report_headline_delta(self, design_flow, layout_comparison):
        from repro.core import flow_report

        report = flow_report(design_flow, layout_comparison)
        assert "placement alone" in report


class TestFlowObservability:
    """One span per flow stage, with populated counters (obs integration)."""

    FLOW_STAGES = [
        "flow.simulate",
        "flow.sensitivity",
        "flow.rules",
        "flow.placement",
        "flow.verification",
    ]

    @pytest.fixture
    def traced_flow_report(self, monkeypatch):
        from repro import obs
        import repro.core.flow as flow_mod
        from repro.converters import BuckConverterDesign
        from repro.core import EmiDesignFlow

        # Shrink the flow (fewer branches, coarse frequency grid) so the
        # end-to-end traced run stays fast; the span structure is identical.
        subset = dict(list(flow_mod.COUPLING_BRANCHES.items())[:4])
        monkeypatch.setattr(flow_mod, "COUPLING_BRANCHES", subset)
        flow = EmiDesignFlow(BuckConverterDesign(), sensitivity_threshold_db=0.0)
        monkeypatch.setattr(
            flow, "sensitivity_frequencies", lambda: np.array([150e3, 2e6, 30e6])
        )
        tracer = obs.enable(meta={"test": "flow-stages"})
        try:
            flow.predict()
            flow.run_sensitivity()
            flow.derive_rules()
            problem, placement_report = flow.place_optimized()
            flow.evaluate("optimized", problem)
        finally:
            obs.disable()
        return tracer.report(), placement_report

    def test_one_span_per_flow_stage(self, traced_flow_report):
        report, _ = traced_flow_report
        for stage in self.FLOW_STAGES:
            span = report.find(stage)
            assert span is not None, f"missing flow stage span {stage}"
            assert span.count == 1
            assert span.wall_s > 0.0

    def test_stage_spans_are_siblings_at_top_level(self, traced_flow_report):
        report, _ = traced_flow_report
        top = set(report.root.children)
        assert {"flow.sensitivity", "flow.rules", "flow.placement",
                "flow.verification"} <= top

    def test_counters_populated_across_layers(self, traced_flow_report):
        report, _ = traced_flow_report
        totals = report.totals()
        assert totals["circuit.mna_factorizations"] > 0
        assert totals["coupling.sweep_points"] > 0
        assert totals["coupling.cache_misses"] > 0
        assert totals["placement.candidates_scored"] > 0
        assert totals["placement.components_placed"] > 0
        assert totals["sensitivity.probes"] > 0
        assert totals["peec.filament_pairs"] > 0

    def test_placement_runtime_sourced_from_span_tree(self, traced_flow_report):
        report, placement_report = traced_flow_report
        run_span = report.find("placement.run")
        assert run_span is not None
        # runtime_s is the placement.run span's wall time and covers the
        # full three-step method (its children are within it).
        assert placement_report.runtime_s == pytest.approx(run_span.wall_s)
        children_wall = sum(c.wall_s for c in run_span.children.values())
        assert children_wall <= run_span.wall_s + 1e-9
        assert report.find("placement.sequential") is not None

    def test_report_json_round_trips(self, traced_flow_report):
        from repro.obs import RunReport

        report, _ = traced_flow_report
        clone = RunReport.from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()
