"""Unit tests for the observability layer (tracing, counters, reports)."""

import json
import time

import pytest

from repro import obs
from repro.obs import NULL_TRACER, NullTracer, RunReport, Span, Tracer


@pytest.fixture(autouse=True)
def _restore_global_tracer():
    """Never leak an enabled tracer into other tests."""
    yield
    obs.disable()


class TestSpanTree:
    def test_nesting_structure(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        root = tracer.root
        assert set(root.children) == {"a", "c"}
        a = root.children["a"]
        assert set(a.children) == {"b"}
        assert a.count == 1
        assert a.children["b"].count == 2

    def test_wall_time_accumulates(self):
        tracer = Tracer()
        for _ in range(2):
            with tracer.span("sleepy"):
                time.sleep(0.01)
        span = tracer.root.children["sleepy"]
        assert span.count == 2
        assert span.wall_s >= 0.02

    def test_child_time_within_parent(self):
        tracer = Tracer()
        with tracer.span("outer"), tracer.span("inner"):
            time.sleep(0.005)
        outer = tracer.root.children["outer"]
        assert outer.wall_s >= outer.children["inner"].wall_s

    def test_handle_exposes_elapsed(self):
        tracer = Tracer()
        with tracer.span("x") as handle:
            time.sleep(0.002)
        assert handle.elapsed_s is not None
        assert handle.elapsed_s >= 0.002

    def test_span_reentrant_after_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError), tracer.span("boom"):
            raise RuntimeError("x")
        # The stack unwound: new spans land at the root again.
        with tracer.span("after"):
            pass
        assert set(tracer.root.children) == {"boom", "after"}

    def test_find_searches_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"), tracer.span("needle"):
            pass
        assert tracer.root.find("needle") is tracer.root.children["a"].children["needle"]
        assert tracer.root.find("missing") is None


class TestCounters:
    def test_counts_attach_to_innermost_span(self):
        tracer = Tracer()
        with tracer.span("a"):
            tracer.count("widgets", 2)
            with tracer.span("b"):
                tracer.count("widgets", 3)
        assert tracer.root.children["a"].counters["widgets"] == 2
        assert tracer.root.children["a"].children["b"].counters["widgets"] == 3

    def test_totals_aggregate_over_tree(self):
        tracer = Tracer()
        tracer.count("widgets")
        with tracer.span("a"):
            tracer.count("widgets", 4)
        assert tracer.report().totals()["widgets"] == 5

    def test_gauges_last_write_wins(self):
        tracer = Tracer()
        tracer.gauge("temperature", 1.0)
        tracer.gauge("temperature", 7.5)
        assert tracer.report().gauges == {"temperature": 7.5}


class TestRunReport:
    def _sample_report(self) -> RunReport:
        tracer = Tracer(meta={"command": "test"})
        with tracer.span("stage.one"):
            tracer.count("items", 3)
            with tracer.span("stage.two"):
                tracer.count("items", 1)
        tracer.gauge("cache.hit_rate", 0.5)
        return tracer.report()

    def test_json_round_trip(self):
        report = self._sample_report()
        clone = RunReport.from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()
        assert clone.totals() == {"items": 4}
        assert clone.meta["command"] == "test"
        assert clone.find("stage.two").counters == {"items": 1}

    def test_json_is_schema_versioned(self):
        data = json.loads(self._sample_report().to_json())
        assert data["schema_version"] == 1
        assert data["spans"]["name"] == "run"
        assert data["counters_total"]["items"] == 4

    def test_write_reads_back(self, tmp_path):
        report = self._sample_report()
        path = tmp_path / "metrics.json"
        report.write(path)
        clone = RunReport.from_json(path.read_text())
        assert clone.find("stage.one").count == 1

    def test_table_rendering(self):
        table = self._sample_report().table()
        assert "span" in table and "wall [s]" in table
        assert "stage.one" in table
        assert "  stage.two" not in table.splitlines()[0]
        assert "counters:" in table and "items" in table
        assert "gauges:" in table and "cache.hit_rate" in table

    def test_table_handles_empty_run(self):
        table = Tracer().report().table()
        assert table.splitlines()[1].startswith("run")


class TestNullTracer:
    def test_default_global_tracer_is_null(self):
        assert isinstance(obs.get_tracer(), NullTracer)
        assert obs.get_tracer() is NULL_TRACER

    def test_null_span_is_shared_noop(self):
        handle_a = NULL_TRACER.span("a")
        handle_b = NULL_TRACER.span("b")
        assert handle_a is handle_b
        with handle_a as entered:
            assert entered is handle_a
        assert handle_a.elapsed_s is None

    def test_null_counters_and_gauges_discard(self):
        NULL_TRACER.count("x", 10)
        NULL_TRACER.gauge("y", 1.0)  # must not raise, must not record

    def test_instrumented_code_runs_under_null_tracer(self):
        # Representative hot path: exercised with tracing disabled.
        from repro.components import FilmCapacitorX2
        from repro.coupling import CouplingDatabase
        from repro.geometry import Placement2D

        db = CouplingDatabase()
        cap = FilmCapacitorX2()
        db.coupling(cap, Placement2D.at(0, 0), cap, Placement2D.at(0.03, 0))
        assert isinstance(obs.get_tracer(), NullTracer)


class TestEnableDisable:
    def test_enable_installs_and_disable_restores(self):
        tracer = obs.enable(meta={"k": "v"})
        assert obs.get_tracer() is tracer
        previous = obs.disable()
        assert previous is tracer
        assert obs.get_tracer() is NULL_TRACER

    def test_enabled_tracer_sees_instrumented_code(self):
        from repro.components import FilmCapacitorX2
        from repro.coupling import CouplingDatabase
        from repro.geometry import Placement2D

        tracer = obs.enable()
        db = CouplingDatabase()
        cap = FilmCapacitorX2()
        place = Placement2D.at(0.03, 0)
        db.coupling(cap, Placement2D.at(0, 0), cap, place)
        db.coupling(cap, Placement2D.at(0, 0), cap, place)
        obs.disable()
        report = tracer.report()
        totals = report.totals()
        assert totals["coupling.cache_misses"] == 1
        assert totals["coupling.cache_hits"] == 1
        solve = report.find("coupling.field_solve")
        assert solve is not None and solve.count == 1 and solve.wall_s > 0


class TestCacheStats:
    def test_stats_snapshot(self):
        from repro.components import FilmCapacitorX2
        from repro.coupling import CouplingDatabase
        from repro.geometry import Placement2D

        db = CouplingDatabase()
        cap = FilmCapacitorX2()
        place = Placement2D.at(0.03, 0)
        db.coupling(cap, Placement2D.at(0, 0), cap, place)
        db.coupling(cap, Placement2D.at(0, 0), cap, place)
        stats = db.stats
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.lookups == 2
        assert stats.hit_rate == pytest.approx(0.5)

    def test_stats_empty_database(self):
        from repro.coupling import CouplingDatabase

        stats = CouplingDatabase().stats
        assert stats.lookups == 0
        assert stats.hit_rate == 0.0


class TestSpanSerialization:
    def test_span_dict_round_trip(self):
        span = Span("root")
        span.count = 1
        span.wall_s = 0.25
        child = span.child("leaf")
        child.count = 3
        child.wall_s = 0.1
        child.counters["n"] = 7
        clone = Span.from_dict(span.to_dict())
        assert clone.to_dict() == span.to_dict()
        assert clone.children["leaf"].counters == {"n": 7}


class TestSpanMerge:
    def test_merge_accumulates_and_recurses(self):
        a = Tracer()
        with a.span("stage"):
            a.count("items", 5)
            with a.span("inner"):
                pass
        b = Tracer()
        with b.span("stage"):
            b.count("items", 7)
        with b.span("other"):
            pass
        target = a.root
        target.merge(b.root)
        assert target.count == 2  # both roots
        stage = target.children["stage"]
        assert stage.count == 2
        assert stage.counters["items"] == 12
        assert set(target.children) == {"stage", "other"}
        assert stage.children["inner"].count == 1

    def test_merge_ignores_other_name(self):
        worker_root = Span("run")
        worker_root.count = 1
        worker_root.wall_s = 0.5
        node = Span("parallel.worker")
        node.merge(worker_root)
        assert node.name == "parallel.worker"
        assert node.wall_s == 0.5

    def test_walk_paths_unique(self):
        tracer = Tracer()
        with tracer.span("a"), tracer.span("x"):
            pass
        with tracer.span("b"), tracer.span("x"):
            pass
        paths = ["/".join(p) for p, _ in tracer.root.walk_paths()]
        assert len(paths) == len(set(paths))
        assert "run/a/x" in paths and "run/b/x" in paths


class TestAbsorbWorker:
    def test_absorbs_under_open_span(self):
        worker = Tracer()
        with worker.span("peec.solve"):
            worker.count("peec.filament_pairs", 42)
        worker.gauge("scratch", 3.0)
        worker.root.wall_s = 0.25
        payload = {"spans": worker.root.to_dict(), "gauges": dict(worker.gauges)}

        parent = Tracer()
        with parent.span("parallel.map"):
            parent.absorb_worker(payload)
            parent.absorb_worker(payload)
        node = parent.root.children["parallel.map"].children["parallel.worker"]
        assert node.count == 2
        assert node.wall_s == 0.5
        assert node.children["peec.solve"].counters["peec.filament_pairs"] == 84
        assert parent.gauges["parallel.worker.scratch"] == 3.0

    def test_null_tracer_discards(self):
        NULL_TRACER.absorb_worker({"spans": {"name": "run"}})
        NULL_TRACER.stop_mem_trace()


class TestMemTrace:
    def test_mem_gauges_per_top_level_span(self):
        tracer = Tracer(mem_trace=True)
        try:
            with tracer.span("allocating"):
                blob = [0] * 200_000
            assert blob is not None
            with tracer.span("quiet"):
                pass
        finally:
            tracer.stop_mem_trace()
        gauges = tracer.report().gauges
        assert gauges["mem.allocating.peak_bytes"] > 200_000 * 8 * 0.9
        assert gauges["mem.allocating.current_bytes"] >= 0
        assert "mem.quiet.peak_bytes" in gauges

    def test_nested_spans_get_no_mem_gauges(self):
        tracer = Tracer(mem_trace=True)
        try:
            with tracer.span("outer"), tracer.span("inner"):
                pass
        finally:
            tracer.stop_mem_trace()
        gauges = tracer.report().gauges
        assert "mem.outer.peak_bytes" in gauges
        assert "mem.inner.peak_bytes" not in gauges

    def test_off_by_default_and_stop_idempotent(self):
        import tracemalloc

        tracer = Tracer()
        assert not tracer.mem_trace
        with tracer.span("x"):
            pass
        assert "mem.x.peak_bytes" not in tracer.gauges
        mem_tracer = Tracer(mem_trace=True)
        mem_tracer.stop_mem_trace()
        mem_tracer.stop_mem_trace()
        assert not tracemalloc.is_tracing()


class TestRunReportRoundTripProperty:
    """Hypothesis: from_json(to_json(r)) is bit-exact on the whole report."""

    @staticmethod
    def _span_from_spec(spec):
        name, wall, count, counters, children = spec
        span = Span(name)
        span.wall_s = wall
        span.count = count
        span.counters = dict(counters)
        for i, child_spec in enumerate(children):
            child = TestRunReportRoundTripProperty._span_from_spec(child_spec)
            # Children are keyed by name; disambiguate duplicates.
            child.name = f"{child.name}.{i}"
            span.children[child.name] = child
        return span

    def test_round_trip_bit_exact(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        names = st.text(
            alphabet="abcdefgh.xyz_0123456789", min_size=1, max_size=16
        )
        finite = st.floats(allow_nan=False, allow_infinity=False)
        counters = st.dictionaries(names, finite, max_size=4)
        span_spec = st.deferred(
            lambda: st.tuples(
                names,
                finite,
                st.integers(min_value=0, max_value=10**9),
                counters,
                st.lists(span_spec, max_size=3),
            )
        )
        meta_values = st.one_of(
            st.none(),
            st.booleans(),
            st.integers(min_value=-(10**12), max_value=10**12),
            finite,
            st.text(max_size=32),
        )

        @settings(max_examples=60, deadline=None)
        @given(
            spec=span_spec,
            gauges=st.dictionaries(names, finite, max_size=4),
            meta=st.dictionaries(names, meta_values, max_size=4),
        )
        def inner(spec, gauges, meta):
            report = RunReport(
                root=self._span_from_spec(spec), gauges=gauges, meta=meta
            )
            clone = RunReport.from_json(report.to_json())
            # Bit-exact: the span tree, gauges and meta all survive.
            assert clone.to_dict() == report.to_dict()
            assert clone.root.to_dict() == report.root.to_dict()
            assert clone.gauges == report.gauges
            assert clone.meta == report.meta

        inner()
