"""Property-based tests for the circuit simulator (hypothesis)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit, MnaSystem, TrapezoidSource

resistance = st.floats(min_value=0.1, max_value=1e5, allow_nan=False)
capacitance = st.floats(min_value=1e-12, max_value=1e-4, allow_nan=False)
inductance = st.floats(min_value=1e-9, max_value=1e-2, allow_nan=False)
frequency = st.floats(min_value=1e2, max_value=1e8, allow_nan=False)
kfactor = st.floats(min_value=-0.95, max_value=0.95, allow_nan=False)


class TestMnaProperties:
    @settings(max_examples=40)
    @given(resistance, resistance, frequency)
    def test_divider_bounded_by_source(self, r1, r2, f):
        c = Circuit()
        c.add_vsource("V1", "in", "0", ac=1.0)
        c.add_resistor("R1", "in", "mid", r1)
        c.add_resistor("R2", "mid", "0", r2)
        sol = MnaSystem(c).solve_ac(f)
        v = abs(sol.voltage("mid"))
        assert 0.0 <= v <= 1.0 + 1e-9
        assert math.isclose(v, r2 / (r1 + r2), rel_tol=1e-9)

    @settings(max_examples=40)
    @given(resistance, capacitance, frequency)
    def test_rc_passivity(self, r, cap, f):
        c = Circuit()
        c.add_vsource("V1", "in", "0", ac=1.0)
        c.add_resistor("R1", "in", "out", r)
        c.add_capacitor("C1", "out", "0", cap)
        sol = MnaSystem(c).solve_ac(f)
        assert abs(sol.voltage("out")) <= 1.0 + 1e-9

    @settings(max_examples=40)
    @given(inductance, inductance, kfactor, frequency)
    def test_transformer_passivity(self, l1, l2, k, f):
        c = Circuit()
        c.add_vsource("V1", "p", "0", ac=1.0)
        c.add_resistor("Rs", "p", "a", 1.0)
        c.add_inductor("L1", "a", "0", l1)
        c.add_inductor("L2", "s", "0", l2)
        c.add_resistor("RL", "s", "0", 50.0)
        c.add_coupling("K1", "L1", "L2", k)
        sol = MnaSystem(c).solve_ac(f)
        # Output power cannot exceed what the source can deliver into 1 ohm.
        v_s = abs(sol.voltage("s"))
        assert v_s <= math.sqrt(50.0 / 4.0) + 1e-6

    @settings(max_examples=30)
    @given(resistance, inductance, capacitance, frequency)
    def test_superposition(self, r, l, cap, f):
        def build(a1: float, a2: float) -> complex:
            c = Circuit()
            c.add_vsource("V1", "in", "0", ac=a1)
            c.add_isource("I1", "0", "out", ac=a2)
            c.add_resistor("R1", "in", "out", r)
            c.add_inductor("L1", "out", "gl", l)
            c.add_resistor("RG", "gl", "0", 1.0)
            c.add_capacitor("C1", "out", "0", cap)
            return MnaSystem(c).solve_ac(f).voltage("out")

        both = build(1.0, 1e-3)
        only_v = build(1.0, 0.0)
        only_i = build(0.0, 1e-3)
        assert abs(both - (only_v + only_i)) < 1e-6 * max(1.0, abs(both))


class TestTrapezoidProperties:
    @settings(max_examples=30)
    @given(
        st.floats(min_value=0.2, max_value=0.8),
        st.floats(min_value=1e4, max_value=1e6),
        st.integers(min_value=1, max_value=40),
    )
    def test_parseval_partial(self, duty, f0, n_harmonics):
        src = TrapezoidSource(0.0, 1.0, f0, duty=duty, t_rise=0.02 / f0, t_fall=0.02 / f0)
        # Partial harmonic power never exceeds the waveform AC power.
        ts = np.linspace(0.0, src.period, 4096, endpoint=False)
        vs = np.array([src.value_at(t) for t in ts])
        total_ac_power = float(np.mean((vs - np.mean(vs)) ** 2))
        partial = sum(
            abs(src.harmonic(n)) ** 2 / 2.0 for n in range(1, n_harmonics + 1)
        )
        assert partial <= total_ac_power * 1.02 + 1e-12

    @settings(max_examples=30)
    @given(st.floats(min_value=0.2, max_value=0.8), st.integers(min_value=1, max_value=100))
    def test_harmonics_below_envelope(self, duty, n):
        src = TrapezoidSource(0.0, 1.0, 1e5, duty=duty, t_rise=2e-7, t_fall=2e-7)
        level = abs(src.harmonic(n))
        env_db = float(src.envelope_db(np.array([n * 1e5]))[0])
        level_db = 20 * math.log10(max(level, 1e-30))
        assert level_db <= env_db + 0.5

    @settings(max_examples=20)
    @given(st.floats(min_value=0.3, max_value=0.7))
    def test_dc_is_duty_times_amplitude(self, duty):
        src = TrapezoidSource(0.0, 1.0, 1e5, duty=duty, t_rise=1e-7, t_fall=1e-7)
        assert math.isclose(src.harmonic(0).real, duty, rel_tol=1e-9)
