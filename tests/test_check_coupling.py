"""Unit tests for the coupling analyzer (CPL0xx rules)."""

from dataclasses import replace

from repro.check import check_coupling_map, check_couplings, check_rule_couplings
from repro.circuit import Circuit

from conftest import build_small_problem


def _codes(diagnostics):
    return sorted(d.code for d in diagnostics)


def build_coupled_circuit(k: float = 0.1) -> Circuit:
    c = Circuit("coupled")
    c.add_vsource("V1", "in", "0", dc=1.0)
    c.add_inductor("L1", "in", "a", 10e-6)
    c.add_inductor("L2", "a", "0", 22e-6)
    c.add_resistor("R1", "a", "0", 50.0)
    c.add_coupling("K12", "L1", "L2", k)
    return c


class TestCircuitCouplings:
    def test_moderate_coupling_is_clean(self):
        assert check_couplings(build_coupled_circuit(0.1)) == []

    def test_mutated_k_above_one(self):
        # MutualCoupling validates at construction; the analyzer guards
        # against later mutation (sensitivity probes, manual edits).
        c = build_coupled_circuit(0.5)
        c.couplings[0].k = 1.2
        diags = check_couplings(c)
        assert "CPL001" in _codes(diags)
        assert any("1.2" in d.message for d in diags)

    def test_near_unity_warning(self):
        diags = check_couplings(build_coupled_circuit(0.99))
        assert "CPL005" in _codes(diags)

    def test_orphaned_coupling(self):
        c = build_coupled_circuit()
        c.couplings[0].inductor_b = "Lmissing"
        diags = check_couplings(c)
        assert "CPL002" in _codes(diags)
        assert any("Lmissing" in d.message for d in diags)

    def test_duplicate_pair(self):
        c = build_coupled_circuit()
        c.add_coupling("Kdup", "L2", "L1", 0.2)
        diags = check_couplings(c)
        assert "CPL003" in _codes(diags)
        dup = [d for d in diags if d.code == "CPL003"][0]
        assert "K12" in dup.message and "Kdup" in dup.message

    def test_non_psd_matrix(self):
        c = Circuit("triangle")
        c.add_vsource("V1", "a", "0", dc=1.0)
        for name, n1, n2 in (("L1", "a", "b"), ("L2", "b", "c"), ("L3", "c", "0")):
            c.add_inductor(name, n1, n2, 10e-6)
        # Three equal inductors all coupled at k = -0.9 store negative
        # energy: the symmetric eigenvalue L (1 + 2k) goes negative.
        c.add_coupling("K12", "L1", "L2", -0.9)
        c.add_coupling("K13", "L1", "L3", -0.9)
        c.add_coupling("K23", "L2", "L3", -0.9)
        diags = check_couplings(c)
        assert "CPL004" in _codes(diags)

    def test_psd_skips_orphaned_couplings(self):
        c = build_coupled_circuit(0.5)
        c.couplings[0].inductor_b = "Lmissing"
        codes = _codes(check_couplings(c))
        assert "CPL002" in codes
        assert "CPL004" not in codes


class TestCouplingMap:
    def test_clean_map(self):
        assert check_coupling_map({("C1", "L1"): 0.02, ("L1", "L2"): -0.3}) == []

    def test_out_of_range(self):
        diags = check_coupling_map({("L1", "L2"): 1.5})
        assert _codes(diags) == ["CPL001"]

    def test_self_coupling(self):
        diags = check_coupling_map({("L1", "L1"): 0.1})
        assert _codes(diags) == ["CPL002"]

    def test_near_unity(self):
        diags = check_coupling_map({("L1", "L2"): -0.985})
        assert _codes(diags) == ["CPL005"]


class TestRuleCouplings:
    def test_small_problem_rules_are_clean(self):
        assert check_rule_couplings(build_small_problem()) == []

    def test_k_threshold_above_one(self):
        problem = build_small_problem()
        problem.rules.min_distance[0] = replace(
            problem.rules.min_distance[0], k_threshold=1.2
        )
        diags = check_rule_couplings(problem)
        assert _codes(diags) == ["CPL001"]
        assert "1.2" in diags[0].message
