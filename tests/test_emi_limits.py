"""Unit tests for CISPR 25 limit lines."""

import numpy as np
import pytest

from repro.emi import (
    CISPR25_CLASS3_PEAK,
    CISPR25_CLASS5_PEAK,
    LimitSegment,
    Spectrum,
)


class TestSegments:
    def test_invalid_segment(self):
        with pytest.raises(ValueError):
            LimitSegment(2e6, 1e6, 50.0)

    def test_class3_has_protected_bands(self):
        assert CISPR25_CLASS3_PEAK.level_at(200e3) == 70.0
        assert CISPR25_CLASS3_PEAK.level_at(1e6) == 58.0
        assert CISPR25_CLASS3_PEAK.level_at(100e6) == 46.0

    def test_gaps_unconstrained(self):
        # Between LW and MW (e.g. 400 kHz) CISPR 25 has no limit.
        assert CISPR25_CLASS3_PEAK.level_at(400e3) is None

    def test_class5_stricter_than_class3(self):
        for freq in (200e3, 1e6, 6e6, 27e6, 40e6, 100e6):
            l3 = CISPR25_CLASS3_PEAK.level_at(freq)
            l5 = CISPR25_CLASS5_PEAK.level_at(freq)
            assert l3 is not None and l5 is not None
            assert l5 < l3


class TestCompliance:
    def spectrum(self, level_dbuv: float) -> Spectrum:
        freqs = np.array([200e3, 1e6, 40e6])
        volts = np.full(3, 1e-6 * 10 ** (level_dbuv / 20.0), dtype=complex)
        return Spectrum(freqs, volts)

    def test_quiet_spectrum_passes(self):
        assert CISPR25_CLASS3_PEAK.passes(self.spectrum(30.0))

    def test_loud_spectrum_fails(self):
        assert not CISPR25_CLASS3_PEAK.passes(self.spectrum(80.0))

    def test_violations_report_details(self):
        violations = CISPR25_CLASS3_PEAK.violations(self.spectrum(60.0))
        # 60 dBuV violates MW (58) and VHF I (50) but not LW (70).
        freqs = [v[0] for v in violations]
        assert 1e6 in freqs and 40e6 in freqs and 200e3 not in freqs

    def test_out_of_band_lines_ignored(self):
        s = Spectrum(np.array([400e3]), np.array([1.0], dtype=complex))
        assert CISPR25_CLASS3_PEAK.passes(s)
        assert CISPR25_CLASS3_PEAK.worst_margin_db(s) == float("inf")

    def test_worst_margin(self):
        margin = CISPR25_CLASS3_PEAK.worst_margin_db(self.spectrum(45.0))
        # Tightest band among the three lines is VHF I at 50 dBuV.
        assert margin == pytest.approx(5.0, abs=0.01)

    def test_as_series_covers_segments(self):
        fs, ls = CISPR25_CLASS3_PEAK.as_series()
        assert len(fs) == 2 * len(CISPR25_CLASS3_PEAK.segments)
        assert len(fs) == len(ls)


class TestAverageLimits:
    def test_average_below_peak_everywhere(self):
        from repro.emi import CISPR25_CLASS3_AVG

        for seg in CISPR25_CLASS3_AVG.segments:
            peak = CISPR25_CLASS3_PEAK.level_at((seg.f_lo + seg.f_hi) / 2.0)
            assert peak is not None
            assert seg.level_dbuv == peak - 10.0

    def test_average_compliance_is_stricter(self):
        from repro.emi import CISPR25_CLASS3_AVG

        freqs = np.array([1e6])
        level = 1e-6 * 10 ** (52.0 / 20.0)
        s = Spectrum(freqs, np.array([level], dtype=complex))
        # 52 dBuV at MW: passes peak (58) but fails average (48).
        assert CISPR25_CLASS3_PEAK.passes(s)
        assert not CISPR25_CLASS3_AVG.passes(s)
