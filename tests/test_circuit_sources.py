"""Unit tests for PWL Fourier coefficients and the trapezoid source."""

import math

import numpy as np
import pytest

from repro.circuit import (
    TrapezoidSource,
    pwl_fourier_coefficient,
    trapezoid_breakpoints,
)


class TestPwlFourier:
    def test_dc_of_constant(self):
        t = np.array([0.0, 1.0])
        v = np.array([3.0, 3.0])
        assert pwl_fourier_coefficient(t, v, 1.0, 0) == pytest.approx(3.0)

    def test_harmonics_of_constant_vanish(self):
        t = np.array([0.0, 1.0])
        v = np.array([2.0, 2.0])
        assert abs(pwl_fourier_coefficient(t, v, 1.0, 3)) < 1e-12

    def test_triangle_wave_known_coefficients(self):
        # Symmetric triangle: |c_n| = 2A/(pi^2 n^2) for odd n (sine series
        # amplitude 8A/pi^2/n^2 -> one-sided c_n doubled is 4A/(pi n)^2 ...
        # verify against direct FFT instead of error-prone algebra.
        period = 1.0
        t = np.array([0.0, 0.25, 0.75, 1.0])
        v = np.array([0.0, 1.0, -1.0, 0.0])
        n_samples = 1 << 14
        ts = np.arange(n_samples) / n_samples
        vs = np.interp(ts, t, v)
        fft = np.fft.fft(vs) / n_samples
        for n in (1, 2, 3, 5):
            analytic = pwl_fourier_coefficient(t, v, period, n)
            assert analytic == pytest.approx(fft[n], abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            pwl_fourier_coefficient(np.array([0.0]), np.array([1.0]), 1.0, 1)
        with pytest.raises(ValueError):
            pwl_fourier_coefficient(
                np.array([0.1, 1.0]), np.array([0.0, 0.0]), 1.0, 1
            )
        with pytest.raises(ValueError):
            pwl_fourier_coefficient(
                np.array([0.0, 0.6, 0.5, 1.0]), np.array([0, 1, 1, 0]), 1.0, 1
            )


class TestTrapezoidBreakpoints:
    def test_spans_period(self):
        t, v = trapezoid_breakpoints(4e-6, 0.5, 50e-9, 50e-9)
        assert t[0] == 0.0
        assert t[-1] == pytest.approx(4e-6)
        assert v[0] == v[-1]

    def test_duty_at_50_percent_level(self):
        period = 4e-6
        t, v = trapezoid_breakpoints(period, 0.4, 100e-9, 100e-9, 0.0, 1.0)
        # Time above 0.5: half of each edge + flat top.
        above = (t[2] - t[1]) + 100e-9
        assert above / period == pytest.approx(0.4, rel=1e-9)

    def test_impossible_edges_rejected(self):
        with pytest.raises(ValueError):
            trapezoid_breakpoints(1e-6, 0.05, 200e-9, 200e-9)
        with pytest.raises(ValueError):
            trapezoid_breakpoints(1e-6, 0.5, 0.0, 10e-9)
        with pytest.raises(ValueError):
            trapezoid_breakpoints(1e-6, 1.2, 1e-9, 1e-9)


class TestTrapezoidSource:
    def source(self) -> TrapezoidSource:
        return TrapezoidSource(0.0, 12.0, 250e3, duty=0.4, t_rise=40e-9, t_fall=60e-9)

    def test_dc_value(self):
        src = self.source()
        assert src.harmonic(0).real == pytest.approx(12.0 * 0.4, rel=1e-6)

    def test_harmonics_match_fft(self):
        src = self.source()
        n_samples = 1 << 15
        ts = np.arange(n_samples) * src.period / n_samples
        vs = np.array([src.value_at(t) for t in ts])
        fft = np.fft.fft(vs) / n_samples
        for n in (1, 2, 7, 19):
            assert abs(src.harmonic(n)) == pytest.approx(
                2 * abs(fft[n]), rel=1e-3, abs=1e-6
            )

    def test_square_wave_fundamental(self):
        square = TrapezoidSource(-1.0, 1.0, 1e6, duty=0.5, t_rise=1e-9, t_fall=1e-9)
        assert abs(square.harmonic(1)) == pytest.approx(4 / math.pi, rel=1e-3)
        assert abs(square.harmonic(2)) < 1e-6

    def test_harmonic_frequencies(self):
        src = self.source()
        freqs = src.harmonic_frequencies(2e6)
        assert freqs[0] == 250e3
        assert freqs[-1] == 2e6
        assert len(freqs) == 8

    def test_spectrum_callable(self):
        src = self.source()
        spec = src.spectrum_callable()
        assert spec(250e3) == src.harmonic(1)
        assert spec(250e3 * 2.5) == 0.0
        assert spec(100.0) == 0.0

    def test_envelope_decreasing(self):
        src = self.source()
        freqs = np.logspace(5.5, 8, 30)
        env = src.envelope_db(freqs)
        assert np.all(np.diff(env) <= 1e-9)

    def test_envelope_bounds_harmonics(self):
        # The trapezoid envelope is an upper bound for harmonic amplitudes.
        src = self.source()
        for n in (1, 3, 10, 50, 200):
            level = 20 * np.log10(max(abs(src.harmonic(n)), 1e-30))
            env = float(src.envelope_db(np.array([n * 250e3]))[0])
            assert level <= env + 0.1

    def test_faster_edges_richer_spectrum(self):
        slow = TrapezoidSource(0, 12, 250e3, duty=0.4, t_rise=200e-9, t_fall=200e-9)
        fast = TrapezoidSource(0, 12, 250e3, duty=0.4, t_rise=10e-9, t_fall=10e-9)
        n = 100  # 25 MHz
        assert abs(fast.harmonic(n)) > abs(slow.harmonic(n))

    def test_value_at_periodicity(self):
        src = self.source()
        assert src.value_at(1e-6) == pytest.approx(src.value_at(1e-6 + src.period))

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            TrapezoidSource(0, 1, 0.0)
