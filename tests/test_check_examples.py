"""The linter over every shipped design — and the corrupted-board scenario.

Two guarantees:

* everything the repository ships (example board files, converter
  fixtures, the Fig. 9 demo board) is diagnostic-clean, so a user's first
  contact with ``repro-emi check`` is a green run;
* seeded defects are reliably caught with their stable rule codes and a
  nonzero exit status.
"""

from pathlib import Path

import pytest

from repro.check import Severity, run_checks
from repro.cli import main
from repro.converters import (
    BoostConverterDesign,
    BuckConverterDesign,
    build_demo_board,
)
from repro.geometry import Cuboid, Rect
from repro.io import read_problem
from repro.placement import Keepout3D, Net

BOARDS_DIR = Path(__file__).parent.parent / "examples" / "boards"
BOARD_FILES = sorted(p.name for p in BOARDS_DIR.glob("*.txt"))


class TestShippedBoardsClean:
    def test_boards_directory_is_populated(self):
        assert len(BOARD_FILES) >= 2

    @pytest.mark.parametrize("name", BOARD_FILES)
    def test_board_file_checks_clean(self, name):
        problem = read_problem((BOARDS_DIR / name).read_text())
        report = run_checks(problem=problem, subject=name)
        assert report.is_clean(), report.text()

    @pytest.mark.parametrize("name", BOARD_FILES)
    def test_board_file_clean_through_cli(self, name, capsys):
        assert main(["check", str(BOARDS_DIR / name)]) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out


class TestConverterFixturesClean:
    def test_demo_board_problem(self):
        report = run_checks(problem=build_demo_board(), subject="demo board")
        assert report.is_clean(), report.text()

    @pytest.mark.parametrize("design_cls", [BuckConverterDesign, BoostConverterDesign])
    def test_converter_circuit_and_problem(self, design_cls):
        design = design_cls()
        circuit, _meas = design.emi_circuit()
        report = run_checks(circuit=circuit, subject=design_cls.__name__)
        assert not report.errors(), report.text()
        problem_report = run_checks(
            problem=design.placement_problem(), subject=design_cls.__name__
        )
        assert not problem_report.errors(), problem_report.text()


class TestCorruptedDemoBoard:
    """The acceptance scenario: three seeded defects, three rule codes."""

    @pytest.fixture
    def corrupted(self):
        problem = build_demo_board()
        # Defect 1: a rule claiming a coupling threshold k = 1.2.
        from dataclasses import replace

        problem.rules.min_distance[0] = replace(
            problem.rules.min_distance[0], k_threshold=1.2
        )
        # Defect 2: a net left floating (single pin).
        problem.nets.append(Net(name="FLOAT", pins=[("L1", "1")]))
        # Defect 3: a keepout covering the whole board.
        xmin, ymin, xmax, ymax = problem.boards[0].outline.bbox()
        problem.boards[0].keepouts.append(
            Keepout3D("blanket", Cuboid(Rect(xmin, ymin, xmax, ymax), 0.0, 0.05))
        )
        return problem

    def test_all_three_defects_reported(self, corrupted):
        report = run_checks(problem=corrupted, subject="corrupted demo")
        assert {"CPL001", "NET002", "PLC002"} <= report.codes()
        assert report.max_severity is Severity.ERROR

    def test_nonzero_exit_code(self, corrupted):
        report = run_checks(problem=corrupted)
        assert report.exit_code(Severity.ERROR) == 2
        assert report.exit_code(Severity.WARNING) == 2

    def test_defects_survive_board_file_roundtrip(self, corrupted, tmp_path, capsys):
        from repro.io import write_problem

        path = tmp_path / "corrupted.txt"
        path.write_text(write_problem(corrupted, title="corrupted demo"))
        code = main(["check", str(path), "--fail-on", "error"])
        assert code == 2
        out = capsys.readouterr().out
        for rule_code in ("CPL001", "NET002", "PLC002"):
            assert rule_code in out
