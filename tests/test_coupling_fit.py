"""Unit tests for power-law coupling fits."""

import numpy as np
import pytest

from repro.coupling import PowerLawFit, fit_power_law


class TestFitExactData:
    def test_recovers_exact_power_law(self):
        d = np.array([0.01, 0.02, 0.03, 0.05, 0.08])
        k = 2e-7 * d ** (-3.0)
        fit = fit_power_law(d, k)
        assert fit.n == pytest.approx(3.0, rel=1e-3)
        assert fit.c == pytest.approx(2e-7, rel=1e-2)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-6)

    def test_dipole_exponent_from_peec_data(self):
        # Synthetic near-dipole data with 5 % noise still fits n ~ 3.
        rng = np.random.default_rng(42)
        d = np.geomspace(0.02, 0.1, 10)
        k = 1e-7 * d ** (-3.0) * rng.uniform(0.95, 1.05, size=10)
        fit = fit_power_law(d, k)
        assert 2.7 < fit.n < 3.3
        assert fit.r_squared > 0.98

    def test_negative_couplings_use_magnitude(self):
        d = np.array([0.01, 0.02, 0.04])
        k = -1e-7 * d ** (-3.0)
        fit = fit_power_law(d, k)
        assert fit.n == pytest.approx(3.0, rel=1e-3)


class TestFitValidation:
    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([0.01, 0.02]), np.array([1.0, 0.5]))

    def test_zero_couplings_dropped(self):
        d = np.array([0.01, 0.02, 0.03, 0.04])
        k = np.array([1e-3, 0.0, 0.0, 1e-5])
        with pytest.raises(ValueError):
            fit_power_law(d, k)


class TestInversion:
    def fit(self) -> PowerLawFit:
        return PowerLawFit(c=1e-7, n=3.0, r_squared=1.0)

    def test_predict_scalar_and_array(self):
        fit = self.fit()
        assert fit.predict(0.01) == pytest.approx(0.1)
        out = fit.predict(np.array([0.01, 0.1]))
        assert out[1] == pytest.approx(1e-4)

    def test_distance_for_coupling_inverts_predict(self):
        fit = self.fit()
        d = fit.distance_for_coupling(0.01)
        assert fit.predict(d) == pytest.approx(0.01, rel=1e-9)

    def test_smaller_threshold_needs_more_distance(self):
        fit = self.fit()
        assert fit.distance_for_coupling(0.001) > fit.distance_for_coupling(0.01)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            self.fit().distance_for_coupling(0.0)
