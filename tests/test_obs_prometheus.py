"""Prometheus exposition edge cases: histograms, escaping, empty runs."""

import re

from repro.obs import Histogram, RunReport, Span, bucket_label, to_prometheus

#: One exposition sample line: name, optional labels, numeric value.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$"
)


def report_with(histograms=None, counters=None, gauges=None) -> RunReport:
    root = Span("run")
    root.count = 1
    root.wall_s = 1.0
    if counters:
        root.counters.update(counters)
    return RunReport(
        root=root,
        gauges=dict(gauges or {}),
        meta={"command": "test"},
        histograms=dict(histograms or {}),
    )


class TestHistogramFamilies:
    def test_bucket_lines_ordered_cumulative_ending_inf(self):
        hist = Histogram("service.job_latency_seconds")
        for v in (1e-4, 0.02, 0.02, 3.0):
            hist.observe(v)
        text = to_prometheus(report_with({hist.name: hist}))
        family = "repro_emi_service_job_latency_seconds"
        assert f"# TYPE {family} histogram" in text
        bucket_lines = [
            line for line in text.splitlines() if line.startswith(f"{family}_bucket")
        ]
        # one line per boundary plus +Inf, in boundary order
        les = [
            re.search(r'le="([^"]+)"', line).group(1) for line in bucket_lines
        ]
        assert les[:-1] == [bucket_label(b) for b in hist.boundaries]
        assert les[-1] == "+Inf"
        values = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert values == sorted(values)  # cumulative is monotone
        assert values[-1] == 4
        assert f"{family}_count 4" in text
        assert f"{family}_sum" in text

    def test_metric_name_sanitized(self):
        hist = Histogram("weird name!seconds")
        hist.observe(1.0)
        text = to_prometheus(report_with({hist.name: hist}))
        assert "repro_emi_weird_name_seconds_bucket" in text

    def test_empty_histogram_emits_no_family(self):
        text = to_prometheus(report_with({"idle.seconds": Histogram("idle.seconds")}))
        assert "_bucket" not in text
        assert "idle" not in text


class TestLabelEscaping:
    def test_newline_backslash_quote_escaped(self):
        name = 'weird\\name\n"quoted"'
        text = to_prometheus(report_with(counters={name: 3.0}))
        line = next(
            line for line in text.splitlines() if "counter_total" in line and "weird" in line
        )
        assert "\n" not in line  # the raw newline never leaks into a sample
        assert '\\\\' in line and "\\n" in line and '\\"' in line

    def test_every_sample_stays_on_one_line(self):
        text = to_prometheus(
            report_with(
                counters={"evil\ncounter": 1.0},
                gauges={"evil\ngauge\\": 2.0},
            )
        )
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            assert SAMPLE_RE.match(line), f"malformed sample line: {line!r}"


class TestEmptyRun:
    def test_bare_report_exports_cleanly(self):
        text = to_prometheus(RunReport(root=Span("run")))
        assert "repro_emi_span_wall_seconds" in text
        assert "_bucket" not in text
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            assert SAMPLE_RE.match(line), f"malformed sample line: {line!r}"

    def test_empty_report_round_trips_without_histogram_key(self):
        report = RunReport(root=Span("run"))
        assert "histograms" not in report.to_dict()

    def test_histograms_survive_report_round_trip(self):
        hist = Histogram("coupling.pair_seconds")
        hist.observe(0.002)
        report = report_with({hist.name: hist})
        clone = RunReport.from_dict(report.to_dict())
        assert clone.histograms["coupling.pair_seconds"].count == 1
        assert to_prometheus(clone) == to_prometheus(report)
