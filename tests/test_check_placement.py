"""Unit tests for the placement analyzer (PLC0xx rules)."""

from repro.check import check_placement
from repro.components import FilmCapacitorX2, small_bobbin_choke
from repro.geometry import Cuboid, Placement2D, Polygon2D, Rect, Vec2
from repro.placement import (
    Keepout3D,
    PlacedComponent,
    PlacementArea,
)
from repro.rules import (
    ClearanceRule,
    GroupCoherenceRule,
    MinDistanceRule,
    NetLengthRule,
)

from conftest import build_small_problem


def _codes(diagnostics):
    return sorted(d.code for d in diagnostics)


def _full_board_keepout(problem, board_index=0, name="blanket"):
    xmin, ymin, xmax, ymax = problem.boards[board_index].outline.bbox()
    return Keepout3D(name, Cuboid(Rect(xmin, ymin, xmax, ymax), 0.0, 0.05))


class TestCleanProblem:
    def test_small_problem_is_clean(self):
        assert check_placement(build_small_problem()) == []


class TestPreplacedOnBoard:
    def test_preplaced_outside_outline(self):
        problem = build_small_problem()
        comp = problem.components["C1"]
        comp.fixed = True
        comp.placement = Placement2D(Vec2(0.2, 0.2))  # board is 80x60 mm
        diags = check_placement(problem)
        assert "PLC001" in _codes(diags)
        assert any("C1" in d.message for d in diags)

    def test_preplaced_inside_is_fine(self):
        problem = build_small_problem()
        comp = problem.components["C1"]
        comp.fixed = True
        comp.placement = Placement2D(Vec2(0.04, 0.03))
        assert "PLC001" not in _codes(check_placement(problem))

    def test_missing_board_reference(self):
        problem = build_small_problem()
        comp = problem.components["C1"]
        comp.fixed = True
        comp.board = 7
        comp.placement = Placement2D(Vec2(0.04, 0.03))
        diags = [d for d in check_placement(problem) if d.code == "PLC001"]
        assert any("missing board" in d.message for d in diags)

    def test_unfixed_placed_part_not_flagged(self):
        # Only *fixed* parts are the user's responsibility; the placer
        # re-places everything else anyway.
        problem = build_small_problem()
        problem.components["C1"].placement = Placement2D(Vec2(0.2, 0.2))
        assert "PLC001" not in _codes(check_placement(problem))


class TestKeepouts:
    def test_blanket_keepout_blocks_board(self):
        problem = build_small_problem()
        problem.boards[0].keepouts.append(_full_board_keepout(problem))
        codes = _codes(check_placement(problem))
        assert "PLC002" in codes
        assert "PLC010" in codes  # no area left -> parts cannot fit either

    def test_elevated_keepout_does_not_block(self):
        # A z-offset keepout (e.g. under a heatsink overhang) leaves the
        # board surface placeable.
        problem = build_small_problem()
        keepout = _full_board_keepout(problem)
        elevated = Keepout3D(keepout.name, Cuboid(keepout.cuboid.rect, 0.01, 0.05))
        problem.boards[0].keepouts.append(elevated)
        codes = _codes(check_placement(problem))
        assert "PLC002" not in codes

    def test_keepout_off_board(self):
        problem = build_small_problem()
        problem.boards[0].keepouts.append(
            Keepout3D("lost", Cuboid(Rect(1.0, 1.0, 1.01, 1.01), 0.0, 0.01))
        )
        diags = [d for d in check_placement(problem) if d.code == "PLC003"]
        assert len(diags) == 1
        assert "lost" in diags[0].message

    def test_nested_keepout_is_redundant(self):
        problem = build_small_problem()
        problem.boards[0].keepouts.append(
            Keepout3D("outer", Cuboid(Rect(0.01, 0.01, 0.03, 0.03), 0.0, 0.02))
        )
        problem.boards[0].keepouts.append(
            Keepout3D("inner", Cuboid(Rect(0.015, 0.015, 0.025, 0.025), 0.0, 0.01))
        )
        diags = [d for d in check_placement(problem) if d.code == "PLC004"]
        assert len(diags) == 1
        assert "inner" in diags[0].message and "outer" in diags[0].message

    def test_overlapping_but_not_nested_is_fine(self):
        problem = build_small_problem()
        problem.boards[0].keepouts.append(
            Keepout3D("a", Cuboid(Rect(0.01, 0.01, 0.03, 0.03), 0.0, 0.02))
        )
        problem.boards[0].keepouts.append(
            Keepout3D("b", Cuboid(Rect(0.02, 0.02, 0.04, 0.04), 0.0, 0.02))
        )
        assert "PLC004" not in _codes(check_placement(problem))


class TestAreaConstraints:
    def test_unknown_area_name(self):
        problem = build_small_problem()
        problem.components["C1"].allowed_areas = ("filter_zone",)
        diags = [d for d in check_placement(problem) if d.code == "PLC005"]
        assert len(diags) == 1
        assert "filter_zone" in diags[0].message

    def test_unknown_preferred_area(self):
        problem = build_small_problem()
        problem.components["C1"].preferred_area = "ghost"
        assert "PLC005" in _codes(check_placement(problem))

    def test_component_too_big_for_area(self):
        problem = build_small_problem()
        problem.boards[0].areas.append(
            PlacementArea("tiny", Polygon2D.rectangle(0.0, 0.0, 0.002, 0.002))
        )
        problem.components["L1"].allowed_areas = ("tiny",)
        diags = [d for d in check_placement(problem) if d.code == "PLC006"]
        assert len(diags) == 1
        assert "L1" in diags[0].message

    def test_component_fits_after_rotation(self):
        # 90-degree rotation swaps the footprint sides; the area admits
        # the rotated pose even though the unrotated one does not fit.
        problem = build_small_problem()
        choke = small_bobbin_choke()
        wide = max(choke.footprint_w, choke.footprint_h)
        slim = min(choke.footprint_w, choke.footprint_h)
        problem.boards[0].areas.append(
            PlacementArea(
                "slot",
                Polygon2D.rectangle(0.0, 0.0, slim * 1.2, wide * 1.2),
            )
        )
        comp = problem.components["L1"]
        comp.allowed_areas = ("slot",)
        comp.allowed_rotations_deg = (0.0, 90.0)
        if choke.footprint_w == choke.footprint_h:
            return  # square part: rotation test is vacuous
        assert "PLC006" not in _codes(check_placement(problem))


class TestOrphanedRules:
    def test_min_distance_unknown_component(self):
        problem = build_small_problem()
        problem.rules.min_distance.append(MinDistanceRule("C1", "GHOST", pemd=0.02))
        diags = [d for d in check_placement(problem) if d.code == "PLC007"]
        assert any("GHOST" in d.message for d in diags)

    def test_clearance_unknown_component(self):
        problem = build_small_problem()
        problem.rules.clearance.append(ClearanceRule("GHOST", "C1", clearance=0.001))
        assert "PLC007" in _codes(check_placement(problem))

    def test_global_clearance_is_fine(self):
        problem = build_small_problem()
        problem.rules.clearance.append(ClearanceRule("", "", clearance=0.001))
        assert "PLC007" not in _codes(check_placement(problem))

    def test_group_unknown_member(self):
        problem = build_small_problem()
        problem.rules.groups.append(
            GroupCoherenceRule("input_filter", members=("C1", "GHOST"), max_spread=0.03)
        )
        diags = [d for d in check_placement(problem) if d.code == "PLC007"]
        assert any("input_filter" in d.message for d in diags)

    def test_net_length_unknown_net(self):
        problem = build_small_problem()
        problem.rules.net_lengths.append(NetLengthRule("NX", max_length=0.05))
        diags = [d for d in check_placement(problem) if d.code == "PLC007"]
        assert any("NX" in d.message for d in diags)


class TestUnsatisfiableDistances:
    def test_pemd_beyond_board_diagonal(self):
        problem = build_small_problem()
        problem.rules.min_distance.append(MinDistanceRule("C1", "C2", pemd=0.5))
        diags = [d for d in check_placement(problem) if d.code == "PLC008"]
        assert len(diags) == 1
        assert "500.0 mm" in diags[0].message

    def test_pemd_within_diagonal_is_fine(self):
        problem = build_small_problem()
        # 80x60 board: diagonal 100 mm.
        problem.rules.min_distance.append(MinDistanceRule("C1", "C2", pemd=0.09))
        assert "PLC008" not in _codes(check_placement(problem))


class TestMissingPemdRules:
    def test_uncovered_choke_pair(self):
        problem = build_small_problem(with_rules=True)
        problem.rules.min_distance = [
            r for r in problem.rules.min_distance if {r.ref_a, r.ref_b} != {"L1", "L2"}
        ]
        diags = [d for d in check_placement(problem) if d.code == "PLC009"]
        assert len(diags) == 1
        assert "L1-L2" in diags[0].message

    def test_capacitor_pairs_are_not_strong(self):
        # Without any rules, only the choke pair L1-L2 should be flagged;
        # capacitors and semiconductors have weak stray fields.
        problem = build_small_problem(with_rules=False)
        diags = [d for d in check_placement(problem) if d.code == "PLC009"]
        assert [d.obj for d in diags] == ["problem/pair:L1-L2"]

    def test_threshold_override_silences(self):
        problem = build_small_problem(with_rules=False)
        diags = [
            d
            for d in check_placement(problem, pemd_strength_threshold=1.0)
            if d.code == "PLC009"
        ]
        assert diags == []


class TestOverfilledBoard:
    def test_too_many_parts_for_tiny_board(self):
        problem = build_small_problem()
        problem.boards[0].outline = Polygon2D.rectangle(0.0, 0.0, 0.01, 0.01)
        diags = [d for d in check_placement(problem) if d.code == "PLC010"]
        assert len(diags) == 1

    def test_empty_board_is_not_overfilled(self):
        problem = build_small_problem()
        for comp in problem.components.values():
            comp.board = 0
        # Add a second, empty board: nothing assigned, nothing to report.
        from repro.placement import Board

        problem.boards.append(Board(1, Polygon2D.rectangle(0.0, 0.0, 0.001, 0.001)))
        assert "PLC010" not in _codes(check_placement(problem))


class TestComponentChecksViaProblem:
    def test_library_parts_are_physical(self):
        from repro.check import check_components

        assert check_components(build_small_problem()) == []

    def test_dedup_by_model_identity(self):
        from repro.check import check_components

        class ActiveCap(FilmCapacitorX2):
            @property
            def esr(self):
                return -1.0

        problem = build_small_problem()
        shared = ActiveCap()
        problem.add_component(PlacedComponent("CX", shared))
        problem.add_component(PlacedComponent("CY", shared))
        diags = check_components(problem)
        cmp1 = [d for d in diags if d.code == "CMP001"]
        assert len(cmp1) == 1  # one model, one finding
        assert "CX,CY" in cmp1[0].obj
