"""Unit tests for EMC spectra and dBµV conversions."""

import numpy as np
import pytest

from repro.emi import Spectrum, dbuv_to_volts, volts_to_dbuv


class TestConversions:
    def test_one_microvolt_is_zero_db(self):
        assert volts_to_dbuv(1e-6) == pytest.approx(0.0)

    def test_one_millivolt_is_sixty_db(self):
        assert volts_to_dbuv(1e-3) == pytest.approx(60.0)

    def test_roundtrip(self):
        assert dbuv_to_volts(volts_to_dbuv(0.025)) == pytest.approx(0.025)

    def test_negative_voltage_uses_magnitude(self):
        assert volts_to_dbuv(-1e-3) == pytest.approx(60.0)

    def test_array_input(self):
        out = volts_to_dbuv(np.array([1e-6, 1e-5]))
        assert np.allclose(out, [0.0, 20.0])


class TestSpectrum:
    def spectrum(self) -> Spectrum:
        return Spectrum(
            np.array([1e6, 2e6, 3e6]), np.array([1e-3, 1e-4, 1e-5], dtype=complex)
        )

    def test_validation_shapes(self):
        with pytest.raises(ValueError):
            Spectrum(np.array([1.0, 2.0]), np.array([1.0]))

    def test_validation_monotone(self):
        with pytest.raises(ValueError):
            Spectrum(np.array([2e6, 1e6]), np.array([1.0, 1.0]))

    def test_dbuv(self):
        assert np.allclose(self.spectrum().dbuv(), [60.0, 40.0, 20.0])

    def test_band_selection(self):
        sub = self.spectrum().band(1.5e6, 3.5e6)
        assert len(sub) == 2
        assert sub.freqs[0] == 2e6

    def test_max_in_band(self):
        assert self.spectrum().max_dbuv_in(0.0, 2.5e6) == pytest.approx(60.0)

    def test_max_in_empty_band(self):
        assert self.spectrum().max_dbuv_in(5e6, 6e6) == float("-inf")

    def test_scaled(self):
        doubled = self.spectrum().scaled(2.0)
        assert doubled.dbuv()[0] == pytest.approx(60.0 + 20 * np.log10(2))

    def test_delta_db(self):
        s = self.spectrum()
        assert np.allclose(s.delta_db(s), 0.0)
        assert np.allclose(s.scaled(10.0).delta_db(s), 20.0)

    def test_delta_requires_same_grid(self):
        s = self.spectrum()
        other = Spectrum(np.array([1e6, 2e6]), np.array([1.0, 1.0], dtype=complex))
        with pytest.raises(ValueError):
            s.delta_db(other)

    def test_correlation_of_scaled_copy_is_one(self):
        s = self.spectrum()
        assert s.correlation_db(s.scaled(3.0)) == pytest.approx(1.0)

    def test_mean_abs_error(self):
        s = self.spectrum()
        assert s.mean_abs_error_db(s.scaled(10.0)) == pytest.approx(20.0)

    def test_from_lines_sorts(self):
        s = Spectrum.from_lines([(2e6, 1.0), (1e6, 2.0)])
        assert s.freqs[0] == 1e6
        assert abs(s.values[0]) == 2.0

    def test_from_lines_empty_raises(self):
        with pytest.raises(ValueError):
            Spectrum.from_lines([])
