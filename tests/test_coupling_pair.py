"""Unit tests for placed-pair coupling computation."""

import pytest

from repro.components import FilmCapacitorX2, small_bobbin_choke
from repro.coupling import component_coupling, pair_coupling_factor
from repro.geometry import Placement2D


class TestBasicProperties:
    def test_result_fields(self, x2_cap):
        other = FilmCapacitorX2()
        res = component_coupling(
            x2_cap, Placement2D.at(0, 0), other, Placement2D.at(0.03, 0)
        )
        assert -1.0 <= res.k <= 1.0
        assert res.self_a_h > 0.0
        assert res.self_b_h > 0.0
        assert not res.shielded
        assert res.k_abs == abs(res.k)

    def test_symmetry_under_swap(self, x2_cap):
        other = FilmCapacitorX2()
        pa, pb = Placement2D.at(0, 0), Placement2D.at(0.025, 0.01, 30)
        k_ab = pair_coupling_factor(x2_cap, pa, other, pb)
        k_ba = pair_coupling_factor(other, pb, x2_cap, pa)
        assert k_ab == pytest.approx(k_ba, rel=1e-6)

    def test_rigid_motion_invariance(self, x2_cap):
        other = FilmCapacitorX2()
        k1 = pair_coupling_factor(
            x2_cap, Placement2D.at(0, 0), other, Placement2D.at(0.03, 0)
        )
        k2 = pair_coupling_factor(
            x2_cap, Placement2D.at(0.01, 0.02, 90), other, Placement2D.at(0.01, 0.05, 90)
        )
        assert k1 == pytest.approx(k2, rel=1e-6)

    def test_decays_with_distance(self, x2_cap):
        other = FilmCapacitorX2()
        ks = [
            abs(
                pair_coupling_factor(
                    x2_cap, Placement2D.at(0, 0), other, Placement2D.at(d, 0)
                )
            )
            for d in (0.025, 0.04, 0.06)
        ]
        assert ks[0] > ks[1] > ks[2]

    def test_perpendicular_on_axis_decouples(self, x2_cap):
        other = FilmCapacitorX2()
        k = pair_coupling_factor(
            x2_cap, Placement2D.at(0, 0), other, Placement2D.at(0.03, 0, 90)
        )
        assert abs(k) < 1e-6


class TestCoreCorrection:
    def test_choke_choke_coupling_nonzero(self, bobbin):
        other = small_bobbin_choke()
        k = pair_coupling_factor(
            bobbin, Placement2D.at(0, 0), other, Placement2D.at(0.03, 0)
        )
        assert abs(k) > 1e-4

    def test_mu_eff_enters_self_inductance(self, bobbin):
        res = component_coupling(
            bobbin,
            Placement2D.at(0, 0),
            small_bobbin_choke(),
            Placement2D.at(0.04, 0),
        )
        assert res.self_a_h == pytest.approx(bobbin.self_inductance, rel=1e-6)
        assert res.self_a_h > bobbin.geometric_inductance


class TestGroundPlane:
    def test_plane_shields_vertical_axis_loops(self):
        from repro.components import BobbinChoke

        a = BobbinChoke(orientation="vertical")
        b = BobbinChoke(orientation="vertical")
        pa, pb = Placement2D.at(0, 0), Placement2D.at(0.035, 0)
        free = abs(pair_coupling_factor(a, pa, b, pb))
        shielded = abs(pair_coupling_factor(a, pa, b, pb, ground_plane_z=-0.5e-3))
        assert shielded < free

    def test_plane_changes_horizontal_axis_coupling(self, x2_cap):
        # For vertical loops (horizontal magnetic axis) the image currents
        # are co-circulating: the plane *enhances* the coupling — one of the
        # reasons the paper's rules depend on the presence of planes.
        other = FilmCapacitorX2()
        pa, pb = Placement2D.at(0, 0), Placement2D.at(0.03, 0)
        free = abs(pair_coupling_factor(x2_cap, pa, other, pb))
        shielded = abs(
            pair_coupling_factor(x2_cap, pa, other, pb, ground_plane_z=-0.5e-3)
        )
        assert shielded != pytest.approx(free, rel=0.05)

    def test_shielded_flag(self, x2_cap):
        res = component_coupling(
            x2_cap,
            Placement2D.at(0, 0),
            FilmCapacitorX2(),
            Placement2D.at(0.03, 0),
            ground_plane_z=0.0,
        )
        assert res.shielded

    def test_far_plane_negligible(self, x2_cap):
        other = FilmCapacitorX2()
        pa, pb = Placement2D.at(0, 0), Placement2D.at(0.03, 0)
        free = pair_coupling_factor(x2_cap, pa, other, pb)
        nearly_free = pair_coupling_factor(x2_cap, pa, other, pb, ground_plane_z=-2.0)
        assert nearly_free == pytest.approx(free, rel=0.02)
