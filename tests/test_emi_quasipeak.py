"""Unit tests for the quasi-peak detector extension."""

import numpy as np
import pytest

from repro.emi import EmiReceiver, Spectrum, quasi_peak_correction_db


class TestCorrectionCurve:
    def test_high_prf_equals_peak(self):
        # A 250 kHz converter: QP = peak in both bands.
        assert quasi_peak_correction_db(250e3, 1e6) == 0.0
        assert quasi_peak_correction_db(250e3, 100e6) == 0.0

    def test_low_prf_reads_lower(self):
        assert quasi_peak_correction_db(100.0, 1e6) < -30.0

    def test_monotone_in_prf(self):
        values = [quasi_peak_correction_db(prf, 1e6) for prf in (10, 100, 1e3, 1e4)]
        assert values == sorted(values)

    def test_band_b_floor(self):
        assert quasi_peak_correction_db(0.1, 1e6) == -43.0

    def test_band_cd_floor(self):
        assert quasi_peak_correction_db(0.1, 100e6) == -20.0

    def test_invalid_prf(self):
        with pytest.raises(ValueError):
            quasi_peak_correction_db(0.0, 1e6)


class TestQuasiPeakDetector:
    def line(self) -> Spectrum:
        return Spectrum(np.array([1e6]), np.array([1e-3], dtype=complex))

    def test_equals_peak_for_switching_converters(self):
        peak = EmiReceiver("peak").measure_at(self.line(), 1e6)
        qp = EmiReceiver("quasi-peak", pulse_rate_hz=250e3).measure_at(self.line(), 1e6)
        assert qp == pytest.approx(peak)

    def test_below_peak_for_slow_pulses(self):
        peak = EmiReceiver("peak").measure_at(self.line(), 1e6)
        qp = EmiReceiver("quasi-peak", pulse_rate_hz=50.0).measure_at(self.line(), 1e6)
        assert qp < peak - 20.0

    def test_qp_never_exceeds_peak(self):
        lines = Spectrum(
            np.array([1.000e6, 1.004e6]), np.array([1e-3, 1e-3], dtype=complex)
        )
        peak = EmiReceiver("peak").measure_at(lines, 1.002e6)
        for prf in (10.0, 1e3, 1e5, 1e6):
            qp = EmiReceiver("quasi-peak", pulse_rate_hz=prf).measure_at(
                lines, 1.002e6
            )
            assert qp <= peak + 1e-9

    def test_floor_still_respected(self):
        rx = EmiReceiver("quasi-peak", noise_floor_dbuv=10.0, pulse_rate_hz=10.0)
        weak = Spectrum(np.array([1e6]), np.array([2e-6], dtype=complex))
        assert rx.measure_at(weak, 1e6) == 10.0

    def test_invalid_detector_name(self):
        with pytest.raises(ValueError):
            EmiReceiver("qp")
