"""Unit tests for the two-line (CM/DM) conducted-emission model."""

import numpy as np
import pytest

from repro.circuit import MnaSystem
from repro.converters import (
    DEFAULT_HEATSINK_CAPACITANCE,
    build_cmdm_circuit,
    cmdm_spectra,
)
from repro.emi import separate_modes


class TestCircuitConstruction:
    def test_two_lisns_present(self, buck_design):
        circuit, meas_p, meas_n = build_cmdm_circuit(buck_design)
        names = {e.name for e in circuit.elements}
        assert "LISN_P.L" in names and "LISN_N.L" in names
        assert meas_p != meas_n

    def test_heatsink_cap_optional(self, buck_design):
        circuit, _, _ = build_cmdm_circuit(buck_design, heatsink_capacitance=0.0)
        assert not any(e.name == "CHS" for e in circuit.elements)

    def test_negative_capacitance_rejected(self, buck_design):
        with pytest.raises(ValueError):
            build_cmdm_circuit(buck_design, heatsink_capacitance=-1e-12)

    def test_solvable_across_band(self, buck_design):
        circuit, meas_p, meas_n = build_cmdm_circuit(buck_design)
        mna = MnaSystem(circuit)
        for f in (150e3, 5e6, 100e6):
            sol = mna.solve_ac(f)
            assert np.isfinite(abs(sol.voltage(meas_p)))
            assert np.isfinite(abs(sol.voltage(meas_n)))

    def test_magnetic_couplings_apply(self, buck_design):
        circuit, _, _ = build_cmdm_circuit(
            buck_design, couplings={("CX1", "CX2"): 0.05}
        )
        assert circuit.coupling_value("CX1.ESL", "CX2.ESL") == pytest.approx(0.05)


class TestModePhysics:
    def test_no_heatsink_no_common_mode(self, buck_design):
        sp, sn = cmdm_spectra(buck_design, heatsink_capacitance=0.0)
        split = separate_modes(sp, sn)
        # With the CM path removed the noise is (almost) purely DM.
        assert split.cm_fraction() < 0.05

    def test_heatsink_creates_common_mode(self, buck_design):
        sp, sn = cmdm_spectra(buck_design)
        split = separate_modes(sp, sn)
        # This design has no Y-caps and no CM choke: once the heatsink
        # path exists, CM dominates — the canonical reason CM filtering
        # exists at all.
        assert split.cm_fraction() > 0.5

    def test_more_heatsink_capacitance_more_cm(self, buck_design):
        def cm_level(chs: float) -> float:
            sp, sn = cmdm_spectra(buck_design, heatsink_capacitance=chs)
            split = separate_modes(sp, sn)
            return float(np.max(split.common_mode.dbuv()))

        assert cm_level(100e-12) > cm_level(10e-12)

    def test_cm_reacts_far_more_than_dm(self, buck_design):
        def split(chs: float):
            sp, sn = cmdm_spectra(buck_design, heatsink_capacitance=chs)
            return separate_modes(sp, sn)

        with_chs = split(DEFAULT_HEATSINK_CAPACITANCE)
        without = split(0.0)
        cm_jump = float(
            np.max(with_chs.common_mode.dbuv()) - np.max(without.common_mode.dbuv())
        )
        dm_jump = abs(
            float(
                np.max(with_chs.differential_mode.dbuv())
                - np.max(without.differential_mode.dbuv())
            )
        )
        # The heatsink path is a CM mechanism; it reaches the DM reading
        # only through line-impedance asymmetry (mode conversion), so the
        # CM level must move far more than the DM level.
        assert cm_jump > dm_jump + 20.0

    def test_line_spectra_on_harmonic_grid(self, buck_design):
        sp, sn = cmdm_spectra(buck_design, f_max=30e6)
        assert np.allclose(sp.freqs, sn.freqs)
        assert sp.freqs[-1] <= 30e6
