"""Unit tests for SVG and ASCII visualisation."""

import numpy as np
import pytest

from repro.emi import CISPR25_CLASS3_PEAK, Spectrum
from repro.placement import AutoPlacer
from repro.viz import heatmap, render_board_svg, series_table, spectrum_plot

from conftest import build_small_problem


def placed_problem():
    problem = build_small_problem()
    AutoPlacer(problem).run()
    return problem


class TestSvg:
    def test_valid_svg_document(self):
        svg = render_board_svg(placed_problem(), title="test")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "test" in svg

    def test_every_component_labelled(self):
        problem = placed_problem()
        svg = render_board_svg(problem)
        for ref in problem.components:
            assert f">{ref}</text>" in svg

    def test_markers_rendered(self):
        problem = placed_problem()
        svg = render_board_svg(problem, show_markers=True)
        assert "circle" in svg
        svg_off = render_board_svg(problem, show_markers=False)
        assert "circle" not in svg_off

    def test_group_tints(self):
        problem = placed_problem()
        problem.define_group("g", ["C1", "L1"])
        svg = render_board_svg(problem, show_groups=True)
        assert "#aed6f1" in svg  # first group colour

    def test_all_markers_green_after_auto_place(self):
        svg = render_board_svg(placed_problem())
        assert 'stroke="red"' not in svg
        assert 'stroke="green"' in svg


class TestAsciiPlots:
    def spectrum(self) -> Spectrum:
        freqs = np.geomspace(150e3, 108e6, 40)
        values = (1e-3 / (1 + freqs / 1e6)).astype(complex)
        return Spectrum(freqs, values)

    def test_spectrum_plot_contains_legend_and_axis(self):
        out = spectrum_plot({"pred": self.spectrum()}, limit=CISPR25_CLASS3_PEAK)
        assert "[1] pred" in out
        assert "MHz" in out
        assert "L" in out

    def test_two_series_two_markers(self):
        out = spectrum_plot({"a": self.spectrum(), "b": self.spectrum().scaled(0.1)})
        assert "[1] a" in out and "[2] b" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            spectrum_plot({})

    def test_heatmap_shape(self):
        values = np.abs(np.random.default_rng(0).standard_normal((5, 12))) + 1e-9
        out = heatmap(values)
        lines = out.splitlines()
        assert len(lines) == 5
        assert all(len(line) == 12 for line in lines)

    def test_heatmap_requires_2d(self):
        with pytest.raises(ValueError):
            heatmap(np.array([1.0, 2.0]))

    def test_series_table_alignment(self):
        out = series_table(
            ["name", "value"], [["alpha", 1.25], ["b", 0.5]], float_fmt="{:.2f}"
        )
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.25" in lines[2]
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # perfectly aligned


class TestFieldSvg:
    def test_renders_valid_svg_with_field_layer(self):
        from repro.viz import render_field_svg

        problem = placed_problem()
        svg = render_field_svg(problem, resolution=16, title="field")
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        # A real field layer: many tinted cells under the parts.
        assert svg.count('fill-opacity="0.55"') > 20

    def test_components_drawn_on_top(self):
        from repro.viz import render_field_svg

        problem = placed_problem()
        svg = render_field_svg(problem, resolution=12)
        # Component polygons appear after (= above) the field cells.
        first_cell = svg.find('fill-opacity="0.55"')
        first_label = svg.find("</text>")
        assert 0 < first_cell < first_label

    def test_empty_board_rejected(self):
        from repro.viz import render_field_svg

        problem = build_small_problem()
        with pytest.raises(ValueError):
            render_field_svg(problem)
