"""Unit tests for current paths (segmented component field models)."""

import math

import pytest

from repro.geometry import Transform3D, Vec3
from repro.peec import CurrentPath, Filament, rectangle_path, ring_path


class TestRingPath:
    def test_segment_count(self):
        ring = ring_path(Vec3.zero(), 0.01, segments=16)
        assert len(ring) == 16

    def test_closed(self):
        ring = ring_path(Vec3.zero(), 0.01, segments=12)
        assert ring.closure_error() == pytest.approx(0.0, abs=1e-12)

    def test_total_length_approximates_circumference(self):
        r = 0.01
        ring = ring_path(Vec3.zero(), r, segments=64)
        assert ring.total_length() == pytest.approx(2 * math.pi * r, rel=0.01)

    def test_magnetic_moment_z_ring(self):
        r = 0.01
        ring = ring_path(Vec3.zero(), r, segments=64)
        moment = ring.magnetic_moment()
        # |m| = area for a unit current loop.
        assert moment.z == pytest.approx(math.pi * r * r, rel=0.01)
        assert abs(moment.x) < 1e-12 and abs(moment.y) < 1e-12

    def test_axis_variants(self):
        assert ring_path(Vec3.zero(), 0.01, axis="x").magnetic_axis().is_close(
            Vec3(1, 0, 0), tol=1e-9
        )
        assert ring_path(Vec3.zero(), 0.01, axis="y").magnetic_axis().is_close(
            Vec3(0, 1, 0), tol=1e-9
        )

    def test_moment_scales_with_weight(self):
        one = ring_path(Vec3.zero(), 0.01, weight=1.0).magnetic_moment()
        five = ring_path(Vec3.zero(), 0.01, weight=5.0).magnetic_moment()
        assert five.z == pytest.approx(5.0 * one.z)

    def test_moment_translation_invariant_for_closed_loop(self):
        a = ring_path(Vec3.zero(), 0.01, segments=12).magnetic_moment()
        b = ring_path(Vec3(0.05, 0.02, 0.01), 0.01, segments=12).magnetic_moment()
        assert a.is_close(b, tol=1e-12)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ring_path(Vec3.zero(), 0.01, segments=2)
        with pytest.raises(ValueError):
            ring_path(Vec3.zero(), -0.01)
        with pytest.raises(ValueError):
            ring_path(Vec3.zero(), 0.01, axis="w")


class TestRectanglePath:
    def test_four_filaments_closed(self):
        p = rectangle_path(Vec3(-0.005, 0, 0), Vec3(0.005, 0, 0.004))
        assert len(p) == 4
        assert p.closure_error() == pytest.approx(0.0, abs=1e-12)

    def test_axis_is_normal(self):
        p = rectangle_path(Vec3(-0.005, 0, 0), Vec3(0.005, 0, 0.004), normal="y")
        axis = p.magnetic_axis()
        assert abs(axis.y) == pytest.approx(1.0)

    def test_moment_magnitude_is_area(self):
        p = rectangle_path(Vec3(-0.005, 0, 0), Vec3(0.005, 0, 0.004), normal="y")
        assert p.magnetic_moment().norm() == pytest.approx(0.01 * 0.004, rel=1e-9)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            rectangle_path(Vec3(0, 0, 0), Vec3(0, 0, 0.004), normal="y")

    def test_bad_normal_rejected(self):
        with pytest.raises(ValueError):
            rectangle_path(Vec3(0, 0, 0), Vec3(1, 0, 1), normal="q")


class TestCurrentPath:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CurrentPath([])

    def test_transform_moves_centroid(self):
        ring = ring_path(Vec3.zero(), 0.01)
        moved = ring.transformed(Transform3D(Vec3(0.02, 0.0, 0.001)))
        assert moved.centroid().is_close(Vec3(0.02, 0.0, 0.001), tol=1e-9)

    def test_transform_rotates_axis(self):
        path = ring_path(Vec3.zero(), 0.01, axis="x")
        rotated = path.transformed(Transform3D(Vec3.zero(), rotation_z_rad=math.pi / 2))
        assert rotated.magnetic_axis().is_close(Vec3(0, 1, 0), tol=1e-9)

    def test_merged(self):
        a = ring_path(Vec3.zero(), 0.01, segments=8)
        b = ring_path(Vec3(0.0, 0.0, 0.005), 0.01, segments=8)
        merged = a.merged_with(b)
        assert len(merged) == 16

    def test_scaled_weights(self):
        ring = ring_path(Vec3.zero(), 0.01)
        scaled = ring.scaled_weights(2.0)
        assert scaled.magnetic_moment().z == pytest.approx(
            2.0 * ring.magnetic_moment().z
        )

    def test_straight_trace_axis_falls_back_to_z(self):
        trace = CurrentPath([Filament(Vec3(0, 0, 0), Vec3(0.02, 0, 0))])
        assert trace.magnetic_axis().is_close(Vec3(0, 0, 1))
