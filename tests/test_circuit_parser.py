"""Unit tests for the SPICE-flavoured netlist parser."""

import pytest

from repro.circuit import (
    MnaSystem,
    format_netlist,
    parse_netlist,
    parse_value,
)


class TestParseValue:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("10", 10.0),
            ("4.7u", 4.7e-6),
            ("100n", 1e-7),
            ("22p", 22e-12),
            ("1.5MEG", 1.5e6),
            ("3k", 3e3),
            ("2m", 2e-3),
            ("1e-9", 1e-9),
            ("-5", -5.0),
            ("0.5f", 0.5e-15),
        ],
    )
    def test_engineering_suffixes(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_malformed(self):
        for bad in ("abc", "1.2.3", "10 u", ""):
            with pytest.raises(ValueError):
                parse_value(bad)


class TestParseNetlist:
    def test_basic_elements(self):
        c = parse_netlist(
            """
            * comment line
            V1 in 0 ac=1
            R1 in out 1k
            C1 out 0 1u
            L1 out 0 10u
            I1 0 out ac=0.5
            """
        )
        stats = c.stats()
        assert stats["Resistor"] == 1
        assert stats["Capacitor"] == 1
        assert stats["Inductor"] == 1
        assert stats["VoltageSource"] == 1
        assert stats["CurrentSource"] == 1

    def test_capacitor_with_parasitics_expands(self):
        c = parse_netlist("C1 a 0 1u esr=10m esl=5n")
        names = {e.name for e in c.elements}
        assert names == {"C1.C", "C1.ESR", "C1.ESL"}

    def test_inductor_with_parasitics_expands(self):
        c = parse_netlist("L1 a 0 10u esr=50m epc=5p")
        names = {e.name for e in c.elements}
        assert names == {"L1.L", "L1.ESR", "L1.EPC"}

    def test_coupling_resolves_expanded_names(self):
        c = parse_netlist(
            """
            C1 a 0 1u esl=5n
            L1 a 0 10u esr=10m
            K1 C1 L1 0.05
            """
        )
        assert c.coupling_value("C1.ESL", "L1.L") == pytest.approx(0.05)

    def test_coupling_raw_names(self):
        c = parse_netlist(
            """
            L1 a 0 10u
            L2 b 0 10u
            K1 L1 L2 -0.1
            """
        )
        assert c.coupling_value("L1", "L2") == pytest.approx(-0.1)

    def test_semicolon_comments_stripped(self):
        c = parse_netlist("R1 a 0 10 ; load resistor")
        assert c.find("R1").resistance == 10.0

    def test_dot_cards_ignored(self):
        c = parse_netlist(".ac dec 10 1k 1meg\nR1 a 0 10")
        assert len(c.elements) == 1

    def test_error_cites_line(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_netlist("R1 a 0 10\nXBAD a b c")

    def test_unknown_keyword_in_cap(self):
        with pytest.raises(ValueError, match="unknown keywords"):
            parse_netlist("C1 a 0 1u frobnicate=3")

    def test_parsed_circuit_solves(self):
        c = parse_netlist(
            """
            V1 in 0 ac=1
            R1 in out 50
            C1 out 0 100n esr=20m esl=2n
            """
        )
        sol = MnaSystem(c).solve_ac(1e6)
        assert abs(sol.voltage("out")) < 1.0


class TestFormatNetlist:
    def test_roundtrip_simple(self):
        original = parse_netlist(
            """
            V1 in 0 dc=12 ac=1
            R1 in out 1k
            L1 out 0 10u
            L2 x 0 10u
            R2 x 0 50
            K1 L1 L2 0.2
            """
        )
        text = format_netlist(original)
        again = parse_netlist(text)
        assert again.stats() == original.stats()
        assert again.coupling_value("L1", "L2") == pytest.approx(0.2)

    def test_title_line(self):
        c = parse_netlist("R1 a 0 1", title="demo")
        c.title = "demo"
        assert format_netlist(c).startswith("* demo")
