"""Unit tests for the vector types."""

import math

import numpy as np
import pytest

from repro.geometry import Vec2, Vec3, almost_equal, deg_to_rad, rad_to_deg


class TestVec2:
    def test_arithmetic(self):
        a = Vec2(1.0, 2.0)
        b = Vec2(3.0, -1.0)
        assert (a + b) == Vec2(4.0, 1.0)
        assert (a - b) == Vec2(-2.0, 3.0)
        assert (a * 2.0) == Vec2(2.0, 4.0)
        assert (2.0 * a) == Vec2(2.0, 4.0)
        assert (a / 2.0) == Vec2(0.5, 1.0)
        assert (-a) == Vec2(-1.0, -2.0)

    def test_dot_and_cross(self):
        a = Vec2(1.0, 0.0)
        b = Vec2(0.0, 1.0)
        assert a.dot(b) == 0.0
        assert a.cross(b) == 1.0
        assert b.cross(a) == -1.0

    def test_norm(self):
        assert Vec2(3.0, 4.0).norm() == pytest.approx(5.0)
        assert Vec2(3.0, 4.0).norm_sq() == pytest.approx(25.0)

    def test_normalized(self):
        n = Vec2(3.0, 4.0).normalized()
        assert n.norm() == pytest.approx(1.0)
        assert n.x == pytest.approx(0.6)

    def test_normalize_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec2.zero().normalized()

    def test_perp_is_ccw(self):
        p = Vec2(1.0, 0.0).perp()
        assert p.is_close(Vec2(0.0, 1.0))

    def test_rotated(self):
        r = Vec2(1.0, 0.0).rotated(math.pi / 2.0)
        assert r.is_close(Vec2(0.0, 1.0), tol=1e-12)

    def test_rotation_preserves_norm(self):
        v = Vec2(2.5, -1.3)
        assert v.rotated(0.7).norm() == pytest.approx(v.norm())

    def test_angle(self):
        assert Vec2(0.0, 1.0).angle() == pytest.approx(math.pi / 2.0)
        assert Vec2(-1.0, 0.0).angle() == pytest.approx(math.pi)

    def test_distance(self):
        assert Vec2(0.0, 0.0).distance_to(Vec2(3.0, 4.0)) == pytest.approx(5.0)

    def test_from_polar(self):
        p = Vec2.from_polar(2.0, math.pi)
        assert p.is_close(Vec2(-2.0, 0.0), tol=1e-12)

    def test_as_array(self):
        arr = Vec2(1.0, 2.0).as_array()
        assert arr.shape == (2,)
        assert np.allclose(arr, [1.0, 2.0])

    def test_as_vec3(self):
        v = Vec2(1.0, 2.0).as_vec3(3.0)
        assert v == Vec3(1.0, 2.0, 3.0)


class TestVec3:
    def test_arithmetic(self):
        a = Vec3(1.0, 2.0, 3.0)
        b = Vec3(0.5, -1.0, 2.0)
        assert (a + b) == Vec3(1.5, 1.0, 5.0)
        assert (a - b) == Vec3(0.5, 3.0, 1.0)
        assert (a * 2.0) == Vec3(2.0, 4.0, 6.0)
        assert (a / 2.0) == Vec3(0.5, 1.0, 1.5)

    def test_cross_right_handed(self):
        x = Vec3(1.0, 0.0, 0.0)
        y = Vec3(0.0, 1.0, 0.0)
        assert x.cross(y).is_close(Vec3(0.0, 0.0, 1.0))
        assert y.cross(x).is_close(Vec3(0.0, 0.0, -1.0))

    def test_cross_self_is_zero(self):
        v = Vec3(1.0, 2.0, 3.0)
        assert v.cross(v).norm() == pytest.approx(0.0)

    def test_rotated_z(self):
        v = Vec3(1.0, 0.0, 5.0).rotated_z(math.pi / 2.0)
        assert v.is_close(Vec3(0.0, 1.0, 5.0), tol=1e-12)

    def test_mirrored_z(self):
        v = Vec3(1.0, 2.0, 3.0).mirrored_z(plane_z=1.0)
        assert v == Vec3(1.0, 2.0, -1.0)

    def test_mirror_is_involution(self):
        v = Vec3(1.0, 2.0, 3.0)
        assert v.mirrored_z(0.5).mirrored_z(0.5).is_close(v)

    def test_xy_projection(self):
        assert Vec3(1.0, 2.0, 3.0).xy() == Vec2(1.0, 2.0)

    def test_from_array_roundtrip(self):
        v = Vec3(1.0, -2.0, 0.25)
        assert Vec3.from_array(v.as_array()) == v

    def test_normalize_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec3.zero().normalized()


class TestAngleHelpers:
    def test_deg_rad_roundtrip(self):
        assert rad_to_deg(deg_to_rad(137.0)) == pytest.approx(137.0)

    def test_almost_equal(self):
        assert almost_equal(1.0, 1.0 + 1e-12)
        assert not almost_equal(1.0, 1.1)
