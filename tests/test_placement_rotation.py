"""Unit tests for the optimal-rotation step."""

import pytest

from repro.components import BobbinChoke, FilmCapacitorX2
from repro.geometry import Placement2D, Polygon2D
from repro.placement import (
    Board,
    PlacedComponent,
    PlacementProblem,
    RotationOptimizer,
)
from repro.rules import MinDistanceRule, RuleSet

from conftest import build_small_problem


def two_cap_problem() -> PlacementProblem:
    problem = PlacementProblem([Board(0, Polygon2D.rectangle(0, 0, 0.1, 0.1))])
    problem.add_component(PlacedComponent("C1", FilmCapacitorX2()))
    problem.add_component(PlacedComponent("C2", FilmCapacitorX2()))
    problem.rules = RuleSet(min_distance=[MinDistanceRule("C1", "C2", pemd=0.03)])
    return problem


class TestOptimizer:
    def test_two_caps_rotated_perpendicular(self):
        plan = RotationOptimizer(two_cap_problem()).optimize()
        r1 = plan.rotations_deg["C1"]
        r2 = plan.rotations_deg["C2"]
        assert abs((r1 - r2) % 180.0) == pytest.approx(90.0)
        assert plan.final_emd_sum == pytest.approx(0.0, abs=1e-9)
        assert plan.improvement == pytest.approx(0.03, abs=1e-9)

    def test_residual_rule_limits_gain(self):
        problem = two_cap_problem()
        problem.rules = RuleSet(
            min_distance=[MinDistanceRule("C1", "C2", pemd=0.03, residual=0.8)]
        )
        plan = RotationOptimizer(problem).optimize()
        assert plan.final_emd_sum >= 0.03 * 0.8 - 1e-9

    def test_monotone_improvement(self):
        plan = RotationOptimizer(build_small_problem()).optimize()
        assert plan.final_emd_sum <= plan.initial_emd_sum

    def test_fixed_component_rotation_kept(self):
        problem = two_cap_problem()
        problem.components["C1"].fixed = True
        problem.components["C1"].placement = Placement2D.at(0.02, 0.02, 0.0)
        plan = RotationOptimizer(problem).optimize()
        assert plan.rotations_deg["C1"] == pytest.approx(0.0)
        # C2 must do all the decoupling work.
        assert plan.rotations_deg["C2"] % 180.0 == pytest.approx(90.0)

    def test_vertical_axis_not_rotated(self):
        problem = PlacementProblem([Board(0, Polygon2D.rectangle(0, 0, 0.1, 0.1))])
        problem.add_component(
            PlacedComponent("LV", BobbinChoke(orientation="vertical"))
        )
        problem.add_component(PlacedComponent("C1", FilmCapacitorX2()))
        problem.rules = RuleSet(min_distance=[MinDistanceRule("LV", "C1", pemd=0.03)])
        plan = RotationOptimizer(problem).optimize()
        # The vertical axis means no rotation can reduce the rule: the full
        # PEMD remains.
        assert plan.final_emd_sum == pytest.approx(0.03, rel=1e-3)

    def test_terminates_within_pass_budget(self):
        plan = RotationOptimizer(build_small_problem(), max_passes=3).optimize()
        assert plan.passes <= 3

    def test_respects_allowed_rotations(self):
        problem = two_cap_problem()
        problem.components["C2"].allowed_rotations_deg = (0.0, 180.0)
        problem.components["C1"].allowed_rotations_deg = (0.0, 180.0)
        plan = RotationOptimizer(problem).optimize()
        # Neither part may rotate to 90: the EMD stays at the full PEMD.
        assert plan.final_emd_sum == pytest.approx(0.03, abs=1e-9)
