"""Unit tests for coupling sweeps (the Figs. 5-8 engines)."""

import numpy as np
import pytest

from repro.components import FilmCapacitorX2, small_bobbin_choke
from repro.coupling import (
    angular_position_sweep,
    distance_sweep,
    rotation_sweep,
)


class TestDistanceSweep:
    def test_monotone_decay(self, x2_cap):
        ds = np.array([0.022, 0.03, 0.045, 0.06])
        ks = distance_sweep(x2_cap, FilmCapacitorX2(), ds)
        assert np.all(np.diff(ks) < 0.0)
        assert np.all(ks >= 0.0)

    def test_direction_changes_magnitude(self, x2_cap):
        # Axial (along the -y magnetic axis) vs broadside coupling differ.
        ds = np.array([0.03])
        axial = distance_sweep(x2_cap, FilmCapacitorX2(), ds, direction_deg=-90.0)
        broadside = distance_sweep(x2_cap, FilmCapacitorX2(), ds, direction_deg=0.0)
        assert axial[0] != pytest.approx(broadside[0], rel=0.05)

    def test_invalid_distance(self, x2_cap):
        with pytest.raises(ValueError):
            distance_sweep(x2_cap, FilmCapacitorX2(), np.array([0.0, 0.01]))

    def test_nan_distance_raises_instead_of_nan_result(self, x2_cap):
        # NaN passes a plain "<= 0" check (NaN comparisons are false) and
        # used to surface only as NaN couplings downstream.
        with pytest.raises(ValueError, match="finite"):
            distance_sweep(x2_cap, FilmCapacitorX2(), np.array([0.02, np.nan]))

    def test_infinite_distance_raises(self, x2_cap):
        with pytest.raises(ValueError, match="finite"):
            distance_sweep(x2_cap, FilmCapacitorX2(), np.array([0.02, np.inf]))

    def test_non_monotone_distances_raise(self, x2_cap):
        with pytest.raises(ValueError, match="increasing"):
            distance_sweep(x2_cap, FilmCapacitorX2(), np.array([0.03, 0.02]))

    def test_duplicate_distances_raise(self, x2_cap):
        with pytest.raises(ValueError, match="increasing"):
            distance_sweep(x2_cap, FilmCapacitorX2(), np.array([0.02, 0.02]))

    def test_empty_distances_raise(self, x2_cap):
        with pytest.raises(ValueError, match="empty"):
            distance_sweep(x2_cap, FilmCapacitorX2(), np.array([]))

    def test_ground_plane_passthrough(self, x2_cap):
        ds = np.array([0.03, 0.05])
        free = distance_sweep(x2_cap, FilmCapacitorX2(), ds)
        shielded = distance_sweep(
            x2_cap, FilmCapacitorX2(), ds, ground_plane_z=-0.5e-3
        )
        # The plane must visibly alter the coupling (enhancement for the
        # horizontal-axis capacitor pair; see pair tests for the physics).
        assert not np.allclose(shielded, free, rtol=0.05)


class TestRotationSweep:
    def test_cosine_envelope(self, x2_cap):
        # On-axis victim: |k(angle)| <= |k(0)| |cos(angle)| + eps and
        # k(90 deg) ~ 0 — the basis of the paper's EMD rule.
        angles = np.array([0.0, 30.0, 60.0, 90.0])
        ks = rotation_sweep(x2_cap, FilmCapacitorX2(), 0.025, angles)
        k0 = abs(ks[0])
        for angle, k in zip(angles, ks, strict=True):
            assert abs(k) <= k0 * abs(np.cos(np.radians(angle))) + 1e-4
        assert abs(ks[-1]) < 1e-6

    def test_antisymmetric_about_90(self, x2_cap):
        angles = np.array([0.0, 180.0])
        ks = rotation_sweep(x2_cap, FilmCapacitorX2(), 0.025, angles)
        assert ks[0] == pytest.approx(-ks[1], rel=1e-6)

    def test_invalid_distance(self, x2_cap):
        with pytest.raises(ValueError):
            rotation_sweep(x2_cap, FilmCapacitorX2(), 0.0, np.array([0.0]))

    def test_nan_distance_raises(self, x2_cap):
        with pytest.raises(ValueError, match="finite"):
            rotation_sweep(x2_cap, FilmCapacitorX2(), float("nan"), np.array([0.0]))

    def test_nan_angle_raises(self, x2_cap):
        with pytest.raises(ValueError, match="finite"):
            rotation_sweep(x2_cap, FilmCapacitorX2(), 0.03, np.array([0.0, np.nan]))


class TestAngularPositionSweep:
    def test_symmetry_around_choke(self, x2_cap):
        choke = small_bobbin_choke()
        angles = np.array([0.0, 90.0, 180.0, 270.0])
        ks = angular_position_sweep(choke, x2_cap, 0.03, angles)
        # The bobbin's dipole field is symmetric under 180-degree rotation.
        assert ks[0] == pytest.approx(ks[2], rel=1e-3)
        assert ks[1] == pytest.approx(ks[3], rel=1e-3)

    def test_fixed_orientation_mode(self, x2_cap):
        choke = small_bobbin_choke()
        angles = np.linspace(0, 315, 8)
        tangential = angular_position_sweep(
            choke, x2_cap, 0.03, angles, victim_faces_source=True
        )
        fixed = angular_position_sweep(
            choke, x2_cap, 0.03, angles, victim_faces_source=False
        )
        assert not np.allclose(tangential, fixed)

    def test_invalid_radius(self, x2_cap):
        with pytest.raises(ValueError):
            angular_position_sweep(
                small_bobbin_choke(), x2_cap, -0.01, np.array([0.0])
            )

    def test_nan_radius_raises_instead_of_nan_result(self, x2_cap):
        with pytest.raises(ValueError, match="finite"):
            angular_position_sweep(
                small_bobbin_choke(), x2_cap, float("nan"), np.array([0.0, 90.0])
            )


class TestSweepMatchesDirectEvaluation:
    """The batched miss path in ``_signed_couplings`` (list comprehensions
    instead of per-element appends) must be bit-identical to evaluating
    each point directly — in every database combination."""

    def test_distance_sweep_equals_per_point_calls(self, x2_cap):
        from repro.coupling.pair import component_coupling
        from repro.geometry import Placement2D, Vec2

        other = FilmCapacitorX2()
        ds = np.array([0.022, 0.03, 0.045])
        swept = distance_sweep(x2_cap, other, ds)
        place_a = Placement2D.at(0.0, 0.0, 0.0)
        direction = Vec2.from_polar(1.0, np.deg2rad(0.0))
        direct = [
            abs(
                component_coupling(
                    x2_cap,
                    place_a,
                    other,
                    Placement2D(direction * float(d), np.deg2rad(0.0)),
                ).k
            )
            for d in ds
        ]
        assert swept.tolist() == direct  # exact equality, not approx

    def test_cache_mixed_hits_and_misses_identical(self, x2_cap):
        from repro.coupling import CouplingDatabase

        other = FilmCapacitorX2()
        ds = np.array([0.022, 0.03, 0.045])
        plain = distance_sweep(x2_cap, other, ds)
        db = CouplingDatabase()
        # Seed only the middle point: the sweep below mixes cache hits
        # with fresh solves and must still reproduce the uncached result.
        distance_sweep(x2_cap, other, np.array([0.03]), database=db)
        mixed = distance_sweep(x2_cap, other, ds, database=db)
        assert mixed.tolist() == plain.tolist()
        assert db.hits >= 1
        assert db.misses >= 3
