"""Unit tests for phase-resolved CM-choke coupling (the Fig. 8 analysis)."""

import numpy as np
import pytest

from repro.components import cm_choke_2w, cm_choke_3w
from repro.coupling import decoupling_sweep, polarized_coupling
from repro.geometry import Placement2D


class TestPolarizedCoupling:
    def test_two_winding_linear_polarisation(self, x2_cap):
        res = polarized_coupling(
            cm_choke_2w(),
            Placement2D.at(0, 0),
            x2_cap,
            Placement2D.at(0.03, 0.01),
            excitation="phase",
        )
        # Co-phased windings => linearly polarised => a null orientation.
        assert res.k_min < 1e-6
        assert res.k_max > res.k_min
        assert res.decouplable

    def test_three_winding_rotating_field(self, x2_cap):
        res = polarized_coupling(
            cm_choke_3w(),
            Placement2D.at(0, 0),
            x2_cap,
            Placement2D.at(0.03, 0.01),
            excitation="phase",
        )
        assert res.k_min > 1e-5
        assert not res.decouplable

    def test_three_winding_common_mode_is_linear(self, x2_cap):
        # With equal in-phase currents even 3 windings give a linear field.
        res = polarized_coupling(
            cm_choke_3w(),
            Placement2D.at(0, 0),
            x2_cap,
            Placement2D.at(0.03, 0.01),
            excitation="common",
        )
        assert res.k_min < 1e-6

    def test_invalid_excitation(self, x2_cap):
        with pytest.raises(ValueError):
            polarized_coupling(
                cm_choke_2w(),
                Placement2D.at(0, 0),
                x2_cap,
                Placement2D.at(0.03, 0),
                excitation="weird",
            )

    def test_best_angle_in_range(self, x2_cap):
        res = polarized_coupling(
            cm_choke_2w(), Placement2D.at(0, 0), x2_cap, Placement2D.at(0.03, 0.01)
        )
        assert 0.0 <= res.best_angle_deg <= 180.0


class TestDecouplingSweep:
    def test_paper_fig8_contrast(self, x2_cap):
        angles = np.linspace(0, 300, 6)
        _, kmin_2w = decoupling_sweep(cm_choke_2w(), x2_cap, 0.03, angles)
        _, kmin_3w = decoupling_sweep(cm_choke_3w(), x2_cap, 0.03, angles)
        # 2-winding: decoupled positions everywhere. 3-winding: nowhere.
        assert float(np.max(kmin_2w)) < 1e-6
        assert float(np.min(kmin_3w)) > 1e-5

    def test_kmax_dominates_kmin(self, x2_cap):
        angles = np.linspace(0, 270, 4)
        kmax, kmin = decoupling_sweep(cm_choke_3w(), x2_cap, 0.03, angles)
        assert np.all(kmax >= kmin)
