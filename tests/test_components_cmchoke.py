"""Unit tests for current-compensated (common-mode) chokes."""

import math

import pytest

from repro.components import CommonModeChoke, cm_choke_2w, cm_choke_3w
from repro.geometry import Vec3


class TestConstruction:
    def test_two_and_three_windings_only(self):
        with pytest.raises(ValueError):
            CommonModeChoke(n_windings=4)

    def test_coverage_bounds(self):
        with pytest.raises(ValueError):
            CommonModeChoke(coverage=0.05)

    def test_rings_minimum(self):
        with pytest.raises(ValueError):
            CommonModeChoke(rings_per_winding=1)

    def test_default_pads_per_winding(self):
        assert len(cm_choke_2w().pads) == 4
        assert len(cm_choke_3w().pads) == 6


class TestWindingGeometry:
    def test_winding_path_count(self):
        choke = cm_choke_2w()
        path = choke.winding_path(0)
        assert len(path) == choke.rings_per_winding * 8

    def test_winding_index_bounds(self):
        with pytest.raises(IndexError):
            cm_choke_2w().winding_path(2)

    def test_windings_at_opposite_sides_2w(self):
        choke = cm_choke_2w()
        c0 = choke.winding_path(0).centroid()
        c1 = choke.winding_path(1).centroid()
        # Opposite sides of the toroid: centroids are antipodal in x-y.
        assert (c0.xy() + c1.xy()).norm() < 1e-3

    def test_winding_angles_3w(self):
        choke = cm_choke_3w()
        angles = [choke.winding_center_angle(i) for i in range(3)]
        assert angles[1] - angles[0] == pytest.approx(2 * math.pi / 3)

    def test_windings_on_major_radius(self):
        choke = cm_choke_2w()
        for w in range(2):
            centroid = choke.winding_path(w).centroid()
            r = centroid.xy().norm()
            # The length-weighted centroid of an arc pulls inwards by the
            # chord factor sinc(arc/2) ~ 0.82 for the 126-degree coverage.
            assert 0.7 * choke.major_radius < r < 1.01 * choke.major_radius

    def test_full_path_merges_windings(self):
        choke = cm_choke_3w()
        assert len(choke.current_path) == 3 * choke.rings_per_winding * 8

    def test_winding_axis_tangential(self):
        choke = cm_choke_2w()
        path = choke.winding_path(0)
        axis = path.magnetic_axis()
        # Winding 0 sits at angle 0 (+x); its axis is tangential (+-y).
        assert abs(axis.y) > 0.9


class TestBehaviour:
    def test_cm_inductance_large(self):
        # CM chokes are tens of microhenries per path.
        assert cm_choke_2w().inductance > 1e-6

    def test_rated_override(self):
        choke = CommonModeChoke(rated_inductance=3.3e-3)
        assert choke.inductance == pytest.approx(3.3e-3)

    def test_decoupling_residuals(self):
        assert cm_choke_2w().decoupling_residual < cm_choke_3w().decoupling_residual

    def test_vertical_net_axis(self):
        # Under CM drive the net moment is the azimuthal "single turn" along z.
        axis = cm_choke_2w().magnetic_axis_local()
        assert abs(axis.z) > 0.9

    def test_esr_small(self):
        assert 0.0 < cm_choke_2w().esr < 0.1

    def test_centroid_at_body_mid_height(self):
        choke = cm_choke_2w()
        assert choke.current_path.centroid().is_close(
            Vec3(0.0, 0.0, choke.body_height / 2.0), tol=1e-3
        )
