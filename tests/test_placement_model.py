"""Unit tests for the placement data model."""

import pytest

from repro.components import FilmCapacitorX2
from repro.geometry import Cuboid, Placement2D, Polygon2D, Rect, Vec2
from repro.placement import (
    Board,
    Keepout3D,
    PlacedComponent,
    PlacementArea,
    PlacementProblem,
)

from conftest import build_small_problem


class TestBoard:
    def test_area_lookup(self):
        outline = Polygon2D.rectangle(0, 0, 0.1, 0.1)
        area = PlacementArea("main", Polygon2D.rectangle(0.01, 0.01, 0.09, 0.09))
        board = Board(0, outline, areas=[area])
        assert board.area_by_name("main") is area
        with pytest.raises(KeyError):
            board.area_by_name("other")

    def test_default_area_is_outline(self):
        board = Board(0, Polygon2D.rectangle(0, 0, 0.1, 0.1))
        assert board.default_area().polygon.area() == pytest.approx(0.01)

    def test_three_boards_rejected(self):
        b = Board(0, Polygon2D.rectangle(0, 0, 0.1, 0.1))
        with pytest.raises(ValueError):
            PlacementProblem([b, b, b])


class TestPlacedComponent:
    def component(self) -> PlacedComponent:
        return PlacedComponent("C1", FilmCapacitorX2())

    def test_unplaced_accessors_raise(self):
        c = self.component()
        assert not c.is_placed
        with pytest.raises(ValueError):
            c.footprint_aabb()
        with pytest.raises(ValueError):
            c.center()

    def test_empty_refdes_rejected(self):
        with pytest.raises(ValueError):
            PlacedComponent("", FilmCapacitorX2())

    def test_footprint_rotates(self):
        c = self.component()
        c.placement = Placement2D.at(0.05, 0.05, 90)
        box = c.footprint_aabb()
        # 18x8 footprint rotated 90: AABB is 8 wide, 18 tall.
        assert box.width == pytest.approx(8e-3)
        assert box.height == pytest.approx(18e-3)

    def test_body_cuboid_height(self):
        c = self.component()
        c.placement = Placement2D.at(0.05, 0.05)
        body = c.body_cuboid()
        assert body.zmin == 0.0
        assert body.zmax == pytest.approx(c.component.body_height)

    def test_rotation_override(self):
        c = PlacedComponent("C1", FilmCapacitorX2(), allowed_rotations_deg=(0.0, 180.0))
        assert c.rotations() == (0.0, 180.0)
        d = self.component()
        assert d.rotations() == d.component.allowed_rotations_deg


class TestProblem:
    def test_duplicate_refdes_rejected(self):
        problem = build_small_problem()
        with pytest.raises(ValueError):
            problem.add_component(PlacedComponent("C1", FilmCapacitorX2()))

    def test_net_unknown_refdes_rejected(self):
        problem = build_small_problem()
        with pytest.raises(KeyError):
            problem.add_net("BAD", [("NOPE", "1")])

    def test_group_tags_members(self):
        problem = build_small_problem()
        problem.define_group("flt", ["C1", "L1"])
        assert problem.components["C1"].group == "flt"
        assert len(problem.group_members("flt")) == 2
        with pytest.raises(KeyError):
            problem.group_members("ghost")

    def test_placed_unplaced_partition(self):
        problem = build_small_problem()
        assert len(problem.unplaced()) == 7
        problem.components["C1"].placement = Placement2D.at(0.01, 0.01)
        assert len(problem.placed()) == 1
        assert len(problem.unplaced()) == 6

    def test_nets_touching(self):
        problem = build_small_problem()
        nets = problem.nets_touching("L1")
        assert {n.name for n in nets} == {"N1", "N2"}

    def test_pair_count(self):
        assert build_small_problem().pair_count() == 21

    def test_state_snapshot_roundtrip(self):
        problem = build_small_problem()
        problem.components["C1"].placement = Placement2D.at(0.01, 0.01)
        saved = problem.clone_state()
        problem.components["C1"].placement = Placement2D.at(0.05, 0.05)
        problem.restore_state(saved)
        assert problem.components["C1"].center().is_close(Vec2(0.01, 0.01))

    def test_board_lookup(self):
        problem = build_small_problem()
        assert problem.board(0).index == 0
        with pytest.raises(KeyError):
            problem.board(7)


class TestKeepout:
    def test_keepout_fields(self):
        keepout = Keepout3D("hs", Cuboid(Rect(0, 0, 0.02, 0.02), 0.0, 0.01))
        assert keepout.cuboid.height == pytest.approx(0.01)


class TestPreferredRotation:
    def test_preferred_listed_first(self):
        from repro.components import FilmCapacitorX2

        comp = PlacedComponent("C1", FilmCapacitorX2(), preferred_rotation_deg=180.0)
        assert comp.rotations()[0] == 180.0
        assert set(comp.rotations()) == {0.0, 90.0, 180.0, 270.0}

    def test_preferred_outside_allowed_ignored(self):
        from repro.components import FilmCapacitorX2

        comp = PlacedComponent(
            "C1",
            FilmCapacitorX2(),
            allowed_rotations_deg=(0.0, 90.0),
            preferred_rotation_deg=45.0,
        )
        assert comp.rotations() == (0.0, 90.0)

    def test_placer_honours_preference_without_rules(self):
        problem = build_small_problem(with_rules=False)
        problem.components["Q1"].preferred_rotation_deg = 90.0
        from repro.placement import AutoPlacer

        AutoPlacer(problem).run()
        assert problem.components["Q1"].placement.rotation_deg == 90.0

    def test_ascii_roundtrip_preserves_preference(self):
        from repro.io import read_problem, write_problem

        problem = build_small_problem()
        problem.components["C1"].preferred_rotation_deg = 180.0
        again = read_problem(write_problem(problem))
        assert again.components["C1"].preferred_rotation_deg == 180.0
