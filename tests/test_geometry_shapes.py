"""Unit tests for Rect, OrientedRect and Cuboid collision primitives."""

import math

import pytest

from repro.geometry import Cuboid, OrientedRect, Placement2D, Rect, Vec2


class TestRect:
    def test_invalid_extents(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)

    def test_basic_measures(self):
        r = Rect(0.0, 0.0, 2.0, 1.0)
        assert r.width == 2.0
        assert r.height == 1.0
        assert r.area() == 2.0
        assert r.center() == Vec2(1.0, 0.5)

    def test_overlap_true(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 3, 3)
        assert a.overlaps(b)
        assert b.overlaps(a)

    def test_touching_edges_do_not_overlap(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 0, 2, 1)
        assert not a.overlaps(b)

    def test_overlap_area(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 3, 3)
        assert a.overlap_area(b) == pytest.approx(1.0)
        assert a.overlap_area(Rect(5, 5, 6, 6)) == 0.0

    def test_separation_diagonal(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(4, 5, 6, 6)
        assert a.separation(b) == pytest.approx(math.hypot(3.0, 4.0))

    def test_separation_zero_when_overlapping(self):
        a = Rect(0, 0, 2, 2)
        assert a.separation(Rect(1, 1, 3, 3)) == 0.0

    def test_inflated(self):
        r = Rect(0, 0, 2, 2).inflated(0.5)
        assert r.xmin == -0.5 and r.xmax == 2.5

    def test_inflate_negative_clamps(self):
        r = Rect(0, 0, 1, 1).inflated(-2.0)
        assert r.xmax >= r.xmin
        assert r.ymax >= r.ymin

    def test_union(self):
        u = Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3))
        assert u == Rect(0, 0, 3, 3)

    def test_from_center(self):
        r = Rect.from_center(Vec2(1.0, 1.0), 2.0, 4.0)
        assert r == Rect(0.0, -1.0, 2.0, 3.0)

    def test_bounding(self):
        r = Rect.bounding([Vec2(0, 1), Vec2(2, -1), Vec2(1, 3)])
        assert r == Rect(0, -1, 2, 3)
        with pytest.raises(ValueError):
            Rect.bounding([])

    def test_contains_point(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(Vec2(0.5, 0.5))
        assert r.contains_point(Vec2(1.0, 1.0))
        assert not r.contains_point(Vec2(1.1, 0.5))


class TestOrientedRect:
    def test_aabb_unrotated(self):
        r = OrientedRect(Vec2(1.0, 1.0), 0.5, 0.25)
        assert r.aabb() == Rect(0.5, 0.75, 1.5, 1.25)

    def test_aabb_rotated_90(self):
        r = OrientedRect(Vec2(0.0, 0.0), 1.0, 0.5, math.pi / 2.0)
        box = r.aabb()
        assert box.width == pytest.approx(1.0)
        assert box.height == pytest.approx(2.0)

    def test_aabb_45_grows(self):
        r = OrientedRect(Vec2(0.0, 0.0), 1.0, 1.0, math.pi / 4.0)
        assert r.aabb().width == pytest.approx(2.0 * math.sqrt(2.0))

    def test_area_rotation_invariant(self):
        a = OrientedRect(Vec2.zero(), 1.0, 0.5, 0.0).area()
        b = OrientedRect(Vec2.zero(), 1.0, 0.5, 1.234).area()
        assert a == pytest.approx(b)

    def test_contains_point_rotated(self):
        r = OrientedRect(Vec2(0.0, 0.0), 1.0, 0.1, math.pi / 2.0)
        assert r.contains_point(Vec2(0.0, 0.9))
        assert not r.contains_point(Vec2(0.9, 0.0))

    def test_sat_overlap_rotated(self):
        a = OrientedRect(Vec2(0.0, 0.0), 1.0, 1.0)
        b = OrientedRect(Vec2(2.5, 0.0), 1.0, 1.0, math.pi / 4.0)
        # b's corner reaches x = 2.5 - sqrt(2) ~ 1.09 > 1 => no overlap.
        assert not a.overlaps(b)
        c = OrientedRect(Vec2(2.2, 0.0), 1.0, 1.0, math.pi / 4.0)
        # corner at 2.2 - 1.41 = 0.79 < 1 => overlap.
        assert a.overlaps(c)

    def test_aabbs_overlap_but_rects_do_not(self):
        a = OrientedRect(Vec2(0.0, 0.0), 1.0, 0.05, math.pi / 4.0)
        b = OrientedRect(Vec2(1.0, -1.0), 1.0, 0.05, math.pi / 4.0)
        assert a.aabb().overlaps(b.aabb())
        assert not a.overlaps(b)

    def test_from_footprint(self):
        p = Placement2D.at(1.0, 2.0, rotation_deg=90.0)
        r = OrientedRect.from_footprint(0.02, 0.01, p)
        assert r.center == Vec2(1.0, 2.0)
        box = r.aabb()
        assert box.width == pytest.approx(0.01)
        assert box.height == pytest.approx(0.02)

    def test_transformed(self):
        base = OrientedRect(Vec2(0.01, 0.0), 0.01, 0.005)
        moved = base.transformed(Placement2D.at(0.0, 0.0, rotation_deg=90.0))
        assert moved.center.is_close(Vec2(0.0, 0.01), tol=1e-12)
        assert moved.rotation_rad == pytest.approx(math.pi / 2.0)

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            OrientedRect(Vec2.zero(), -1.0, 1.0)


class TestCuboid:
    def test_invalid_z(self):
        with pytest.raises(ValueError):
            Cuboid(Rect(0, 0, 1, 1), 1.0, 0.0)

    def test_volume(self):
        c = Cuboid(Rect(0, 0, 2, 1), 0.0, 3.0)
        assert c.volume() == pytest.approx(6.0)

    def test_overlap_requires_z_intersection(self):
        a = Cuboid(Rect(0, 0, 1, 1), 0.0, 1.0)
        b = Cuboid(Rect(0, 0, 1, 1), 1.5, 2.0)
        assert not a.overlaps(b)
        c = Cuboid(Rect(0, 0, 1, 1), 0.5, 2.0)
        assert a.overlaps(c)

    def test_z_offset_keepout_admits_short_part(self):
        # Keepout starting at 5 mm height (heatsink overhang).
        keepout = Cuboid(Rect(0, 0, 0.05, 0.05), 5e-3, 20e-3)
        short_part = Cuboid.from_body(Rect(0.01, 0.01, 0.02, 0.02), 3e-3)
        tall_part = Cuboid.from_body(Rect(0.01, 0.01, 0.02, 0.02), 8e-3)
        assert not keepout.overlaps(short_part)
        assert keepout.overlaps(tall_part)

    def test_translated(self):
        c = Cuboid(Rect(0, 0, 1, 1), 0.0, 1.0).translated(Vec2(1.0, 2.0), dz=0.5)
        assert c.rect.xmin == 1.0
        assert c.zmin == 0.5
