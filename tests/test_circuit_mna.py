"""Unit tests for the AC MNA solver — validated against closed forms."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit, MnaSystem


def rc_lowpass() -> Circuit:
    c = Circuit()
    c.add_vsource("V1", "in", "0", ac=1.0)
    c.add_resistor("R1", "in", "out", 1e3)
    c.add_capacitor("C1", "out", "0", 1e-6)
    return c


class TestElementaryNetworks:
    def test_resistive_divider(self):
        c = Circuit()
        c.add_vsource("V1", "in", "0", ac=1.0)
        c.add_resistor("R1", "in", "mid", 1e3)
        c.add_resistor("R2", "mid", "0", 1e3)
        sol = MnaSystem(c).solve_ac(1e3)
        assert abs(sol.voltage("mid")) == pytest.approx(0.5)

    def test_rc_corner_frequency(self):
        f_c = 1.0 / (2 * math.pi * 1e3 * 1e-6)
        sol = MnaSystem(rc_lowpass()).solve_ac(f_c)
        assert abs(sol.voltage("out")) == pytest.approx(1 / math.sqrt(2), rel=1e-3)

    def test_rc_phase(self):
        f_c = 1.0 / (2 * math.pi * 1e3 * 1e-6)
        sol = MnaSystem(rc_lowpass()).solve_ac(f_c)
        assert math.degrees(np.angle(sol.voltage("out"))) == pytest.approx(-45.0, abs=0.1)

    def test_rl_highpass(self):
        c = Circuit()
        c.add_vsource("V1", "in", "0", ac=1.0)
        c.add_resistor("R1", "in", "out", 100.0)
        c.add_inductor("L1", "out", "0", 1e-3)
        f_c = 100.0 / (2 * math.pi * 1e-3)
        sol = MnaSystem(c).solve_ac(f_c)
        assert abs(sol.voltage("out")) == pytest.approx(1 / math.sqrt(2), rel=1e-3)

    def test_series_rlc_resonance_current(self):
        c = Circuit()
        c.add_vsource("V1", "a", "0", ac=1.0)
        c.add_resistor("R1", "a", "b", 2.0)
        c.add_inductor("L1", "b", "c", 10e-6)
        c.add_capacitor("C1", "c", "0", 100e-9)
        f0 = 1.0 / (2 * math.pi * math.sqrt(10e-6 * 100e-9))
        sol = MnaSystem(c).solve_ac(f0)
        assert abs(sol.inductor_currents["L1"]) == pytest.approx(0.5, rel=1e-6)

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.add_isource("I1", "0", "n", ac=2.0)
        c.add_resistor("R1", "n", "0", 50.0)
        sol = MnaSystem(c).solve_ac(1e3)
        assert abs(sol.voltage("n")) == pytest.approx(100.0)

    def test_ground_aliases(self):
        c = Circuit()
        c.add_vsource("V1", "in", "GND", ac=1.0)
        c.add_resistor("R1", "in", "0", 10.0)
        sol = MnaSystem(c).solve_ac(1.0)
        assert sol.voltage("GND") == 0.0
        assert abs(sol.source_currents["V1"]) == pytest.approx(0.1)


class TestMutualCoupling:
    def build_transformer(self, k: float) -> Circuit:
        c = Circuit()
        c.add_vsource("V1", "p", "0", ac=1.0)
        c.add_inductor("L1", "p", "0", 100e-6)
        c.add_inductor("L2", "s", "0", 100e-6)
        c.add_resistor("RL", "s", "0", 1e9)
        c.add_coupling("K1", "L1", "L2", k)
        return c

    def test_open_secondary_voltage_is_k(self):
        sol = MnaSystem(self.build_transformer(0.5)).solve_ac(1e5)
        assert abs(sol.voltage("s")) == pytest.approx(0.5, rel=1e-4)

    def test_negative_k_inverts_phase(self):
        pos = MnaSystem(self.build_transformer(0.5)).solve_ac(1e5).voltage("s")
        neg = MnaSystem(self.build_transformer(-0.5)).solve_ac(1e5).voltage("s")
        assert pos.real == pytest.approx(-neg.real, rel=1e-6)

    def test_turns_ratio(self):
        c = Circuit()
        c.add_vsource("V1", "p", "0", ac=1.0)
        c.add_inductor("L1", "p", "0", 100e-6)
        c.add_inductor("L2", "s", "0", 400e-6)  # n = 2
        c.add_resistor("RL", "s", "0", 1e9)
        c.add_coupling("K1", "L1", "L2", 1.0 - 1e-9)
        sol = MnaSystem(c).solve_ac(1e5)
        assert abs(sol.voltage("s")) == pytest.approx(2.0, rel=1e-3)

    def test_inductance_matrix_symmetric(self):
        mna = MnaSystem(self.build_transformer(0.3))
        lmat = mna.inductance_matrix()
        assert np.allclose(lmat, lmat.T)
        assert lmat[0, 1] == pytest.approx(0.3 * 100e-6)

    def test_coupling_to_missing_inductor_raises(self):
        c = self.build_transformer(0.5)
        c.couplings[0].inductor_a = "L9"
        with pytest.raises(KeyError):
            MnaSystem(c).inductance_matrix()


class TestSweep:
    def test_sweep_shapes(self):
        freqs = np.logspace(2, 6, 31)
        sweep = MnaSystem(rc_lowpass()).ac_sweep(freqs)
        assert len(sweep) == 31
        assert sweep.voltages("out").shape == (31,)

    def test_magnitude_db_monotone_rolloff(self):
        freqs = np.logspace(3, 6, 10)
        sweep = MnaSystem(rc_lowpass()).ac_sweep(freqs)
        db = sweep.magnitude_db("out")
        assert np.all(np.diff(db) < 0.0)

    def test_voltage_across(self):
        c = Circuit()
        c.add_vsource("V1", "in", "0", ac=1.0)
        c.add_resistor("R1", "in", "mid", 1.0)
        c.add_resistor("R2", "mid", "0", 1.0)
        sol = MnaSystem(c).solve_ac(1.0)
        assert abs(sol.voltage_across("in", "mid")) == pytest.approx(0.5)


class TestSpectrumSources:
    def test_spectrum_callable_drives_rhs(self):
        c = Circuit()
        c.add_vsource("V1", "in", "0", spectrum=lambda f: 2.0 if f == 1e6 else 0.0)
        c.add_resistor("R1", "in", "0", 1.0)
        mna = MnaSystem(c)
        assert abs(mna.solve_ac(1e6).voltage("in")) == pytest.approx(2.0)
        assert abs(mna.solve_ac(2e6).voltage("in")) == pytest.approx(0.0)


class TestDiagnostics:
    def test_floating_node_detected(self):
        from repro.circuit import SingularCircuitError

        c = Circuit()
        c.add_vsource("V1", "in", "0", ac=1.0)
        c.add_resistor("R1", "in", "0", 10.0)
        # An island: two nodes connected to each other but not to ground.
        c.add_resistor("R2", "islandA", "islandB", 1.0)
        mna = MnaSystem(c)
        assert set(mna.floating_nodes()) == {"islandA", "islandB"}
        with pytest.raises(SingularCircuitError, match="islandA"):
            mna.solve_ac(1e3)

    def test_capacitor_only_node_floats(self):
        c = Circuit()
        c.add_vsource("V1", "in", "0", ac=1.0)
        c.add_resistor("R1", "in", "0", 10.0)
        c.add_capacitor("C1", "in", "hang", 1e-9)
        mna = MnaSystem(c)
        # The node hangs at DC (capacitor-only attachment).
        assert mna.floating_nodes() == ["hang"]

    def test_healthy_circuit_no_floating_nodes(self):
        c = Circuit()
        c.add_vsource("V1", "in", "0", ac=1.0)
        c.add_resistor("R1", "in", "out", 10.0)
        c.add_inductor("L1", "out", "0", 1e-6)
        assert MnaSystem(c).floating_nodes() == []
