"""The documentation site stays navigable.

Three properties, all enforced mechanically so prose and tree cannot
drift apart:

* ``docs/README.md`` indexes **every** ``docs/*.md`` file;
* every relative Markdown link under ``docs/`` and in the top-level
  ``README.md`` resolves to a real file (anchors stripped);
* no docs file is orphaned — each is reachable from the index or the
  top-level README.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCS = REPO_ROOT / "docs"

# [text](target) — excluding images and absolute URLs.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def _doc_files() -> list[Path]:
    return sorted(DOCS.glob("*.md"))


def _relative_links(path: Path) -> list[str]:
    links = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target.split("#", 1)[0])
    return links


class TestDocsIndex:
    def test_docs_directory_is_nonempty(self):
        assert len(_doc_files()) >= 10

    def test_index_lists_every_docs_file(self):
        index = (DOCS / "README.md").read_text(encoding="utf-8")
        missing = [
            doc.name
            for doc in _doc_files()
            if doc.name != "README.md" and f"({doc.name})" not in index
        ]
        assert not missing, (
            f"docs/README.md does not index: {', '.join(missing)} — "
            "add a row to the documentation index table"
        )

    def test_index_has_no_stale_rows(self):
        index = (DOCS / "README.md").read_text(encoding="utf-8")
        linked = {target for target in _LINK.findall(index) if target.endswith(".md")}
        stale = sorted(name for name in linked if not (DOCS / name).is_file())
        assert not stale, f"docs/README.md links to nonexistent: {', '.join(stale)}"


class TestDocsLinks:
    @pytest.mark.parametrize(
        "doc", _doc_files() + [REPO_ROOT / "README.md"], ids=lambda p: p.name
    )
    def test_relative_links_resolve(self, doc: Path):
        broken = []
        for target in _relative_links(doc):
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"{doc.name}: broken relative link(s): {', '.join(broken)}"

    def test_usage_embeds_current_serve_help(self, monkeypatch, capsys):
        """docs/USAGE.md quotes ``repro-emi serve --help`` verbatim.

        The doc promises the block is identical to the real output; this
        regenerates the help at the documented 80-column width and
        compares, so a flag change without a doc update fails here.
        """
        from repro.cli import build_parser

        monkeypatch.setenv("COLUMNS", "80")
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--help"])
        help_text = capsys.readouterr().out.strip()
        usage = (DOCS / "USAGE.md").read_text(encoding="utf-8")
        assert help_text in usage, (
            "docs/USAGE.md's serve help block is stale — paste the current "
            "`COLUMNS=80 repro-emi serve --help` output"
        )

    def test_no_orphaned_docs_file(self):
        reachable: set[str] = set()
        for source in [DOCS / "README.md", REPO_ROOT / "README.md"]:
            for target in _relative_links(source):
                reachable.add(Path(target).name)
        orphans = [
            doc.name
            for doc in _doc_files()
            if doc.name != "README.md" and doc.name not in reachable
        ]
        assert not orphans, (
            f"docs file(s) unreachable from the indexes: {', '.join(orphans)}"
        )
