"""Unit tests for placements and rigid transforms."""

import math

import pytest

from repro.geometry import (
    Placement2D,
    Transform3D,
    Vec2,
    Vec3,
    angle_between,
    normalize_angle,
)


class TestNormalizeAngle:
    def test_wraps_positive(self):
        assert normalize_angle(3.0 * math.pi) == pytest.approx(math.pi)

    def test_wraps_negative(self):
        assert normalize_angle(-math.pi / 2.0) == pytest.approx(1.5 * math.pi)

    def test_identity_in_range(self):
        assert normalize_angle(1.0) == pytest.approx(1.0)


class TestAngleBetween:
    def test_symmetric(self):
        assert angle_between(0.2, 1.4) == pytest.approx(angle_between(1.4, 0.2))

    def test_wraparound(self):
        assert angle_between(0.1, 2.0 * math.pi - 0.1) == pytest.approx(0.2)

    def test_max_is_pi(self):
        assert angle_between(0.0, math.pi) == pytest.approx(math.pi)


class TestPlacement2D:
    def test_apply_translates(self):
        p = Placement2D(Vec2(1.0, 2.0))
        assert p.apply(Vec2(0.5, 0.0)).is_close(Vec2(1.5, 2.0))

    def test_apply_rotates_then_translates(self):
        p = Placement2D.at(1.0, 0.0, rotation_deg=90.0)
        out = p.apply(Vec2(1.0, 0.0))
        assert out.is_close(Vec2(1.0, 1.0), tol=1e-12)

    def test_inverse_roundtrip(self):
        p = Placement2D.at(0.3, -0.2, rotation_deg=37.0)
        local = Vec2(0.01, 0.02)
        assert p.inverse_apply(p.apply(local)).is_close(local, tol=1e-12)

    def test_apply_direction_ignores_translation(self):
        p = Placement2D.at(5.0, 5.0, rotation_deg=180.0)
        d = p.apply_direction(Vec2(1.0, 0.0))
        assert d.is_close(Vec2(-1.0, 0.0), tol=1e-12)

    def test_invalid_side_rejected(self):
        with pytest.raises(ValueError):
            Placement2D(Vec2.zero(), side=2)

    def test_moved_and_rotated_copies(self):
        p = Placement2D.at(0.0, 0.0, rotation_deg=10.0)
        q = p.moved_to(Vec2(1.0, 1.0))
        assert q.position == Vec2(1.0, 1.0)
        assert q.rotation_deg == pytest.approx(10.0)
        r = p.rotated_to(math.pi)
        assert r.rotation_deg == pytest.approx(180.0)

    def test_translated(self):
        p = Placement2D.at(1.0, 1.0)
        assert p.translated(Vec2(0.5, -0.5)).position.is_close(Vec2(1.5, 0.5))


class TestTransform3D:
    def test_lift_from_placement(self):
        p = Placement2D.at(1.0, 2.0, rotation_deg=90.0)
        t = p.to_transform3d()
        out = t.apply(Vec3(1.0, 0.0, 0.5))
        assert out.is_close(Vec3(1.0, 3.0, 0.5), tol=1e-12)

    def test_inverse_roundtrip(self):
        t = Transform3D(Vec3(0.1, 0.2, 0.3), rotation_z_rad=0.7)
        p = Vec3(0.01, -0.02, 0.03)
        assert t.inverse_apply(t.apply(p)).is_close(p, tol=1e-12)

    def test_mirror_roundtrip(self):
        t = Transform3D(Vec3(0.0, 0.0, 0.0), rotation_z_rad=0.3, mirror_z=True)
        p = Vec3(0.01, 0.02, 0.03)
        assert t.inverse_apply(t.apply(p)).is_close(p, tol=1e-12)

    def test_mirror_flips_z_direction(self):
        t = Transform3D(Vec3.zero(), mirror_z=True)
        assert t.apply_direction(Vec3(0.0, 0.0, 1.0)).is_close(Vec3(0.0, 0.0, -1.0))

    def test_bottom_side_placement_mirrors(self):
        p = Placement2D(Vec2.zero(), side=-1)
        t = p.to_transform3d()
        assert t.mirror_z
        assert t.apply(Vec3(0.0, 0.0, 1e-3)).z == pytest.approx(-1e-3)

    def test_identity(self):
        t = Transform3D.identity()
        v = Vec3(1.0, 2.0, 3.0)
        assert t.apply(v).is_close(v)
