"""Unit tests of the service metrics registry and its Prometheus export."""

import threading

from repro.obs import RunReport
from repro.service import ServiceMetrics


class TestRegistry:
    def test_counters_accumulate(self):
        m = ServiceMetrics()
        m.inc("service.jobs_submitted")
        m.inc("service.jobs_submitted", 2)
        assert m.counter("service.jobs_submitted") == 3
        assert m.counter("service.never_touched") == 0

    def test_gauges_set_and_adjust(self):
        m = ServiceMetrics()
        m.set_gauge("service.queue_depth", 4.0)
        assert m.gauge("service.queue_depth") == 4.0
        m.adjust_gauge("service.workers_busy", 1.0)
        m.adjust_gauge("service.workers_busy", 1.0)
        m.adjust_gauge("service.workers_busy", -1.0)
        assert m.gauge("service.workers_busy") == 1.0

    def test_snapshot_includes_uptime(self):
        snap = ServiceMetrics().snapshot()
        assert snap["gauges"]["service.uptime_s"] >= 0.0

    def test_thread_safety_under_hammer(self):
        m = ServiceMetrics()

        def hammer():
            for _ in range(1000):
                m.inc("service.http_requests")
                m.adjust_gauge("service.workers_busy", 1.0)
                m.adjust_gauge("service.workers_busy", -1.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("service.http_requests") == 8000
        assert m.gauge("service.workers_busy") == 0.0


class TestPrometheusExport:
    def test_families_and_labels(self):
        m = ServiceMetrics()
        m.inc("service.jobs_completed", 7)
        m.set_gauge("service.queue_depth", 3.0)
        text = m.prometheus()
        assert (
            'repro_emi_counter_total{counter="service.jobs_completed"} 7' in text
        )
        assert 'repro_emi_gauge{name="service.queue_depth"} 3' in text
        # The acceptance-facing names appear literally in the export.
        assert "service.queue_depth" in text
        assert "service.jobs_completed" in text

    def test_help_and_type_lines_present(self):
        m = ServiceMetrics()
        m.inc("service.http_requests")
        text = m.prometheus()
        assert "# TYPE repro_emi_counter_total counter" in text
        assert "# TYPE repro_emi_gauge gauge" in text

    def test_run_report_is_schema_valid(self, tmp_path):
        m = ServiceMetrics()
        m.inc("service.jobs_submitted", 2)
        report = m.run_report(meta={"command": "service"})
        path = tmp_path / "service_report.json"
        report.write(path)
        loaded = RunReport.from_json(path.read_text())
        assert loaded.totals()["service.jobs_submitted"] == 2
        assert loaded.meta["command"] == "service"
