"""Unit tests for the ASCII-file interface."""

import pytest

from repro.geometry import Placement2D
from repro.io import AsciiFormatError, read_problem, write_problem
from repro.rules import ClearanceRule, GroupCoherenceRule, NetLengthRule

from conftest import build_small_problem


SAMPLE = """EMIPLACE 1
TITLE sample board
BOARD 0 GROUND 1
  OUTLINE 0,0 70,0 70,50 0,50
  AREA main 5,5 65,5 65,45 5,45
  KEEPOUT hs1 10,10 30,30 Z 0 15
END
COMP CX1 TYPE FilmCapacitorX2 PN CX1-X2 SIZE 18x8x15 GROUP flt
COMP LF1 TYPE BobbinChoke PN LF1-CH SIZE 12x10x12 GROUP flt
COMP Q1 TYPE PowerMosfet PN Q1-DPAK SIZE 10x9x2.3 FIXED AT 35 25 ROT 90
COMP CX2 TYPE FilmCapacitorX2 PN CX2-X2 SIZE 18x8x15 ANGLES 0,180
NET VIN CX1.1 LF1.1
NET VBUS LF1.2 CX2.1 Q1.D
RULE MINDIST CX1 CX2 25 K 0.01
RULE CLEAR * * 0.5
RULE GROUP flt SPREAD 40 MEMBERS CX1,LF1
RULE NETLEN VIN 120
"""


class TestReader:
    def test_full_sample(self):
        problem = read_problem(SAMPLE)
        assert len(problem.boards) == 1
        assert len(problem.components) == 4
        assert len(problem.nets) == 2
        assert problem.rules.total_rules() == 4

    def test_units_converted_to_metres(self):
        problem = read_problem(SAMPLE)
        xmin, ymin, xmax, ymax = problem.board(0).outline.bbox()
        assert xmax == pytest.approx(0.07)
        rule = problem.rules.min_distance[0]
        assert rule.pemd == pytest.approx(0.025)
        assert rule.k_threshold == pytest.approx(0.01)

    def test_component_attributes(self):
        problem = read_problem(SAMPLE)
        q1 = problem.components["Q1"]
        assert q1.fixed
        assert q1.is_placed
        assert q1.placement.position.x == pytest.approx(0.035)
        assert q1.placement.rotation_deg == pytest.approx(90.0)
        cx2 = problem.components["CX2"]
        assert cx2.allowed_rotations_deg == (0.0, 180.0)
        assert problem.components["CX1"].group == "flt"

    def test_component_size_applied(self):
        problem = read_problem(SAMPLE)
        lf1 = problem.components["LF1"].component
        assert lf1.footprint_w == pytest.approx(0.012)
        assert lf1.part_number == "LF1-CH"

    def test_keepout_with_z(self):
        problem = read_problem(SAMPLE)
        keepout = problem.board(0).keepouts[0]
        assert keepout.cuboid.zmin == 0.0
        assert keepout.cuboid.zmax == pytest.approx(0.015)

    def test_ground_flag(self):
        text = SAMPLE.replace("BOARD 0 GROUND 1", "BOARD 0 GROUND 0")
        assert not read_problem(text).board(0).ground_plane

    def test_missing_header(self):
        with pytest.raises(AsciiFormatError, match="EMIPLACE"):
            read_problem("BOARD 0\nEND\n")

    def test_unknown_type_rejected(self):
        bad = SAMPLE.replace("TYPE FilmCapacitorX2", "TYPE FluxCapacitor", 1)
        with pytest.raises(AsciiFormatError, match="TYPE"):
            read_problem(bad)

    def test_board_without_outline_rejected(self):
        with pytest.raises(AsciiFormatError, match="OUTLINE"):
            read_problem("EMIPLACE 1\nBOARD 0\nEND\n")

    def test_error_cites_line_number(self):
        bad = SAMPLE + "RULE WHATEVER X Y 3\n"
        with pytest.raises(AsciiFormatError, match="unknown rule"):
            read_problem(bad)


class TestRoundtrip:
    def test_write_read_identity(self):
        problem = build_small_problem()
        problem.define_group("g", ["C1", "L1"])
        problem.rules.clearance.append(ClearanceRule(clearance=1e-3))
        problem.rules.groups.append(
            GroupCoherenceRule(group="g", members=("C1", "L1"), max_spread=0.05)
        )
        problem.rules.net_lengths.append(NetLengthRule(net="N1", max_length=0.12))
        problem.components["Q1"].placement = Placement2D.at(0.04, 0.03, 90)
        problem.components["Q1"].fixed = True

        text = write_problem(problem, title="roundtrip")
        again = read_problem(text)

        assert set(again.components) == set(problem.components)
        assert len(again.nets) == len(problem.nets)
        assert again.rules.total_rules() == problem.rules.total_rules()
        q1 = again.components["Q1"]
        assert q1.fixed and q1.is_placed
        assert q1.placement.position.is_close(
            problem.components["Q1"].placement.position, tol=1e-7
        )
        assert again.components["C1"].group == "g"

    def test_roundtrip_preserves_residual(self):
        from repro.rules import MinDistanceRule

        problem = build_small_problem()
        problem.rules.min_distance.append(
            MinDistanceRule("C3", "L2", pemd=0.02, k_threshold=0.01, residual=0.85)
        )
        again = read_problem(write_problem(problem))
        twin = again.rules.min_distance_for("C3", "L2")
        assert twin is not None
        assert twin.residual == pytest.approx(0.85)
        assert twin.k_threshold == pytest.approx(0.01)

    def test_unknown_mindist_keyword_rejected(self):
        bad = SAMPLE.replace(
            "RULE MINDIST CX1 CX2 25 K 0.01", "RULE MINDIST CX1 CX2 25 Q 0.01"
        )
        with pytest.raises(AsciiFormatError):
            read_problem(bad)

    def test_roundtrip_preserves_pemd(self):
        problem = build_small_problem()
        again = read_problem(write_problem(problem))
        for rule in problem.rules.min_distance:
            twin = again.rules.min_distance_for(rule.ref_a, rule.ref_b)
            assert twin is not None
            assert twin.pemd == pytest.approx(rule.pemd, rel=1e-4)

    def test_roundtrip_component_geometry(self):
        problem = build_small_problem()
        again = read_problem(write_problem(problem))
        for ref, comp in problem.components.items():
            twin = again.components[ref].component
            assert twin.footprint_w == pytest.approx(comp.component.footprint_w, rel=1e-4)
            assert twin.body_height == pytest.approx(comp.component.body_height, rel=1e-4)

    def test_written_problem_is_placeable(self):
        from repro.placement import AutoPlacer

        problem = read_problem(write_problem(build_small_problem()))
        report = AutoPlacer(problem).run()
        assert report.violations_after == 0
