"""CLI tests for the perf observatory (`repro-emi perf ...`) and the
traced-failure metrics flush."""

import json

import pytest

from repro.cli import main
from repro.obs import PerfHistory, RunReport, Span


@pytest.fixture(autouse=True)
def _pinned_environment(monkeypatch, tmp_path):
    """Every test gets its own store and a stable git SHA."""
    monkeypatch.setenv("REPRO_EMI_PERF_HISTORY", str(tmp_path / "history.jsonl"))
    monkeypatch.setenv("REPRO_EMI_GIT_SHA", "feedc0de")


def write_report(path, walls, meta=None, counters=None):
    """A report file with the given top-level span walls."""
    root = Span("run")
    root.count = 1
    root.wall_s = sum(walls.values()) or 1.0
    for name, wall in walls.items():
        child = root.child(name)
        child.count = 1
        child.wall_s = wall
        for cname, value in (counters or {}).items():
            child.counters[cname] = value
        counters = None
    RunReport(root=root, meta=meta or {"command": "demo"}).write(path)
    return path


class TestRecordAndHistory:
    def test_record_then_history(self, tmp_path, capsys):
        report = write_report(tmp_path / "m.json", {"stage": 1.0})
        assert main(["perf", "record", str(report)]) == 0
        assert main(["perf", "record", str(report), "--key", "other"]) == 0
        out = capsys.readouterr().out
        assert "recorded demo @ feedc0de" in out
        assert "recorded other @ feedc0de" in out

        assert main(["perf", "history"]) == 0
        listing = capsys.readouterr().out
        assert "demo" in listing and "other" in listing

        assert main(["perf", "history", "--key", "demo", "--format", "json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        assert records[0]["git_sha"] == "feedc0de"

    def test_history_stats(self, tmp_path, capsys):
        for wall in (1.0, 2.0, 3.0):
            report = write_report(tmp_path / f"m{wall}.json", {"stage": wall})
            assert main(["perf", "record", str(report), "--key", "k"]) == 0
        capsys.readouterr()
        assert main(["perf", "history", "--key", "k", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "3 run(s)" in out
        assert "run/stage: median 2.0000 s" in out

    def test_history_stats_requires_key(self, capsys):
        assert main(["perf", "history", "--stats"]) == 2
        assert "requires --key" in capsys.readouterr().err

    def test_record_rejects_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["perf", "record", str(bad)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_record_missing_file(self, tmp_path, capsys):
        assert main(["perf", "record", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestDiff:
    def test_diff_two_files(self, tmp_path, capsys):
        a = write_report(tmp_path / "a.json", {"stage": 1.0})
        b = write_report(tmp_path / "b.json", {"stage": 2.0})
        assert main(["perf", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "run/stage" in out
        assert "+100.0%" in out
        assert "regression" in out

    def test_diff_last_two_store_records(self, tmp_path, capsys):
        # The acceptance scenario: record two consecutive runs, then a
        # bare `perf diff` produces the per-span delta table.
        for i, wall in enumerate((1.0, 1.05)):
            report = write_report(tmp_path / f"r{i}.json", {"stage": wall})
            assert main(["perf", "record", str(report)]) == 0
        capsys.readouterr()
        assert main(["perf", "diff"]) == 0
        out = capsys.readouterr().out
        assert "run/stage" in out
        assert "+5.0%" in out
        assert "perf OK" in out

    def test_diff_needs_two_records(self, tmp_path, capsys):
        report = write_report(tmp_path / "m.json", {"stage": 1.0})
        assert main(["perf", "record", str(report)]) == 0
        assert main(["perf", "diff"]) == 2
        assert "need two stored runs" in capsys.readouterr().err

    def test_diff_rejects_single_file(self, tmp_path, capsys):
        a = write_report(tmp_path / "a.json", {"stage": 1.0})
        assert main(["perf", "diff", str(a)]) == 2
        assert "exactly two" in capsys.readouterr().err

    def test_diff_json_format(self, tmp_path, capsys):
        a = write_report(tmp_path / "a.json", {"stage": 1.0})
        b = write_report(tmp_path / "b.json", {"stage": 0.4})
        assert main(["perf", "diff", str(a), str(b), "--format", "json"]) == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["ok"] is True
        assert verdict["improvements"] >= 1


class TestCheck:
    def test_2x_slowdown_fails_gate(self, tmp_path, capsys):
        baseline = write_report(tmp_path / "base.json", {"stage": 1.0})
        slow = write_report(tmp_path / "slow.json", {"stage": 2.0})
        code = main(
            [
                "perf", "check", str(slow),
                "--baseline", str(baseline),
                "--fail-on", "regression",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_identical_run_passes(self, tmp_path):
        baseline = write_report(tmp_path / "base.json", {"stage": 1.0})
        same = write_report(tmp_path / "same.json", {"stage": 1.0})
        assert main(["perf", "check", str(same), "--baseline", str(baseline)]) == 0

    def test_fail_on_never_reports_but_passes(self, tmp_path, capsys):
        baseline = write_report(tmp_path / "base.json", {"stage": 1.0})
        slow = write_report(tmp_path / "slow.json", {"stage": 2.0})
        code = main(
            [
                "perf", "check", str(slow),
                "--baseline", str(baseline),
                "--fail-on", "never",
            ]
        )
        assert code == 0
        assert "REGRESSION" in capsys.readouterr().out

    def test_wall_threshold_flag(self, tmp_path):
        baseline = write_report(tmp_path / "base.json", {"stage": 1.0})
        slow = write_report(tmp_path / "slow.json", {"stage": 2.0})
        args = ["perf", "check", str(slow), "--baseline", str(baseline)]
        assert main([*args, "--wall-threshold", "1.5"]) == 0
        assert main([*args, "--wall-threshold", "0.5"]) == 1

    def test_counter_regression_gates(self, tmp_path):
        baseline = write_report(
            tmp_path / "base.json", {"stage": 1.0}, counters={"solves": 100}
        )
        grown = write_report(
            tmp_path / "cur.json", {"stage": 1.0}, counters={"solves": 150}
        )
        assert main(["perf", "check", str(grown), "--baseline", str(baseline)]) == 1

    def test_empty_store_records_first_run(self, tmp_path, capsys):
        report = write_report(tmp_path / "m.json", {"stage": 1.0})
        assert main(["perf", "check", str(report), "--key", "k"]) == 0
        assert "recorded this run as the first" in capsys.readouterr().out
        assert len(PerfHistory().records(key="k")) == 1

    def test_rolling_store_baseline(self, tmp_path, capsys):
        for i in range(3):
            report = write_report(tmp_path / f"r{i}.json", {"stage": 1.0})
            assert main(["perf", "record", str(report), "--key", "k"]) == 0
        slow = write_report(tmp_path / "slow.json", {"stage": 2.0})
        assert main(["perf", "check", str(slow), "--key", "k"]) == 1
        ok = write_report(tmp_path / "ok.json", {"stage": 1.1})
        assert main(["perf", "check", str(ok), "--key", "k", "--record"]) == 0
        capsys.readouterr()
        assert len(PerfHistory().records(key="k")) == 4

    def test_check_json_verdict(self, tmp_path, capsys):
        baseline = write_report(tmp_path / "base.json", {"stage": 1.0})
        slow = write_report(tmp_path / "slow.json", {"stage": 2.0})
        code = main(
            [
                "perf", "check", str(slow),
                "--baseline", str(baseline),
                "--format", "json",
            ]
        )
        assert code == 1
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["ok"] is False
        assert any(
            d["name"] == "run/stage" and d["status"] == "regression"
            for d in verdict["deltas"]
        )


class TestExport:
    def test_chrome_export_to_file(self, tmp_path, capsys):
        report = write_report(tmp_path / "m.json", {"stage": 1.0})
        out_file = tmp_path / "trace.json"
        assert main(["perf", "export", str(report), "-o", str(out_file)]) == 0
        trace = json.loads(out_file.read_text())
        assert [e["name"] for e in trace["traceEvents"]] == ["run", "stage"]

    def test_prometheus_export_to_stdout(self, tmp_path, capsys):
        report = write_report(tmp_path / "m.json", {"stage": 1.0})
        assert main(["perf", "export", str(report), "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert 'repro_emi_span_wall_seconds{path="run/stage"} 1' in out


class TestTracedFailureFlush:
    def test_error_run_flushes_partial_report(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        with pytest.raises(FileNotFoundError):
            main(["place", str(tmp_path / "missing.txt"), "--metrics-out", str(metrics)])
        report = RunReport.from_json(metrics.read_text())
        assert report.meta["status"] == "error"
        assert report.meta["error_type"] == "FileNotFoundError"
        assert report.meta["command"] == "place"

    def test_ok_run_is_stamped_ok(self, tmp_path, capsys):
        board = tmp_path / "board.txt"
        from pathlib import Path

        demo = Path(__file__).parent.parent / "examples" / "boards" / "demo_board.txt"
        board.write_text(demo.read_text())
        metrics = tmp_path / "metrics.json"
        assert main(["check", str(board), "--metrics-out", str(metrics)]) == 0
        report = RunReport.from_json(metrics.read_text())
        assert report.meta["status"] == "ok"

    def test_error_report_is_recordable(self, tmp_path, capsys):
        """The flushed partial report feeds straight into the store."""
        metrics = tmp_path / "metrics.json"
        with pytest.raises(FileNotFoundError):
            main(["drc", str(tmp_path / "gone.txt"), "--metrics-out", str(metrics)])
        assert main(["perf", "record", str(metrics)]) == 0
        records = PerfHistory().records()
        assert records[-1].report_data["meta"]["status"] == "error"


class TestMemTraceCli:
    def test_mem_trace_writes_gauges(self, tmp_path, capsys):
        from pathlib import Path

        demo = Path(__file__).parent.parent / "examples" / "boards" / "demo_board.txt"
        metrics = tmp_path / "metrics.json"
        code = main(
            ["check", str(demo), "--mem-trace", "--metrics-out", str(metrics)]
        )
        assert code == 0
        report = RunReport.from_json(metrics.read_text())
        mem_gauges = [g for g in report.gauges if g.startswith("mem.")]
        assert mem_gauges, report.gauges
        assert all(report.gauges[g] >= 0 for g in mem_gauges)

    def test_mem_trace_alone_enables_tracing(self, capsys):
        from pathlib import Path

        demo = Path(__file__).parent.parent / "examples" / "boards" / "demo_board.txt"
        # --mem-trace without --trace/--metrics-out must not crash (the
        # tracer is enabled and simply discarded).
        assert main(["check", str(demo), "--mem-trace"]) == 0
