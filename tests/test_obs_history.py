"""Unit tests for the perf-history store (repro.obs.history)."""

import json

import pytest

from repro.obs import (
    HistoryRecord,
    PerfHistory,
    RunReport,
    Span,
    Tracer,
    default_history_path,
    git_sha,
    host_fingerprint,
)


def make_report(command: str = "demo", wall: float = 1.0) -> RunReport:
    tracer = Tracer(meta={"command": command})
    with tracer.span("flow.rules"):
        tracer.count("coupling.sweep_points", 12)
    report = tracer.report()
    report.root.wall_s = wall
    report.find("flow.rules").wall_s = wall / 2
    return report


class TestProvenance:
    def test_git_sha_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EMI_GIT_SHA", "deadbeef")
        assert git_sha() == "deadbeef"

    def test_git_sha_in_repo_or_unknown(self, monkeypatch):
        monkeypatch.delenv("REPRO_EMI_GIT_SHA", raising=False)
        sha = git_sha()
        assert sha == "unknown" or len(sha) == 40

    def test_host_fingerprint_stable_and_short(self):
        assert host_fingerprint() == host_fingerprint()
        assert len(host_fingerprint()) == 12

    def test_default_path_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EMI_PERF_HISTORY", str(tmp_path / "h.jsonl"))
        assert default_history_path() == tmp_path / "h.jsonl"


class TestAppendAndRead:
    def test_append_creates_parents_and_roundtrips(self, tmp_path):
        history = PerfHistory(tmp_path / "deep" / "nested" / "h.jsonl")
        written = history.append(make_report(), key="bench-x", sha="abc123")
        records = history.records()
        assert len(records) == 1
        record = records[0]
        assert record.key == "bench-x"
        assert record.git_sha == "abc123"
        assert record.host == host_fingerprint()
        assert record.wall_s == written.wall_s == 1.0
        assert record.report.find("flow.rules").wall_s == 0.5
        assert record.report.totals()["coupling.sweep_points"] == 12

    def test_key_defaults_from_meta(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        assert history.append(make_report(command="demo")).key == "demo"
        tracer = Tracer(meta={"benchmark": "bench_x::test_y"})
        assert history.append(tracer.report()).key == "bench_x::test_y"
        assert history.append(RunReport(root=Span("run"))).key == "run"

    def test_records_append_only_order(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        for i in range(5):
            history.append(make_report(wall=float(i + 1)), key="k", sha=f"s{i}")
        shas = [r.git_sha for r in history.records(key="k")]
        assert shas == ["s0", "s1", "s2", "s3", "s4"]

    def test_filters_and_keys(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        history.append(make_report(), key="a")
        history.append(make_report(), key="b")
        history.append(make_report(), key="a")
        assert history.keys() == {"a": 2, "b": 1}
        assert len(history.records(key="a")) == 2
        assert history.records(host="nonexistent-host") == []
        assert len(history.records(host=host_fingerprint())) == 3

    def test_last_window(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        for i in range(7):
            history.append(make_report(), key="k", sha=f"s{i}")
        assert [r.git_sha for r in history.last(key="k", n=3)] == ["s4", "s5", "s6"]
        assert history.last(key="k", n=0) == []
        assert len(history.last(key="k", n=99)) == 7

    def test_missing_file_reads_empty(self, tmp_path):
        history = PerfHistory(tmp_path / "nowhere.jsonl")
        assert history.records() == []
        assert history.keys() == {}


class TestRobustness:
    def test_malformed_and_torn_lines_skipped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        history = PerfHistory(path)
        history.append(make_report(), key="good")
        with path.open("a") as handle:
            handle.write("this is not json\n")
            handle.write('{"schema": 1, "key": "no-report-field"}\n')
            handle.write('{"schema": 1, "key": "torn", "report": {"spans"')  # torn
        history.append(make_report(), key="good2")
        # Re-read: the two good records survive, three bad lines counted.
        history = PerfHistory(path)
        records = history.records()
        assert [r.key for r in records] == ["good", "good2"]
        assert history.skipped_lines == 3

    def test_newer_schema_skipped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        history = PerfHistory(path)
        record = history.append(make_report(), key="k")
        newer = record.to_dict()
        newer["schema"] = 999
        with path.open("a") as handle:
            handle.write(json.dumps(newer) + "\n")
        assert len(history.records()) == 1
        assert history.skipped_lines == 1

    def test_record_dict_roundtrip(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        record = history.append(make_report(), key="k")
        assert HistoryRecord.from_dict(record.to_dict()) == record


class TestSummarise:
    def test_summary_statistics(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        for wall in (1.0, 2.0, 3.0):
            history.append(make_report(wall=wall), key="k")
        summary = history.summarise("k")
        assert summary["runs"] == 3
        run_stats = summary["spans"]["run"]
        assert run_stats["median"] == 2.0
        assert run_stats["min"] == 1.0
        assert run_stats["max"] == 3.0
        assert run_stats["last"] == 3.0
        assert summary["spans"]["run/flow.rules"]["median"] == 1.0
        assert summary["counters"]["coupling.sweep_points"]["median"] == 12

    def test_empty_series(self, tmp_path):
        summary = PerfHistory(tmp_path / "h.jsonl").summarise("nope")
        assert summary["runs"] == 0
        assert summary["first"] is None
        assert summary["spans"] == {}


@pytest.fixture(autouse=True)
def _no_real_git_calls(monkeypatch):
    """Pin the SHA so tests never shell out to git."""
    monkeypatch.setenv("REPRO_EMI_GIT_SHA", "test-sha")
