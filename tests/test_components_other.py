"""Unit tests for semiconductors, passives and the component library."""

import pytest

from repro.components import (
    ChipResistor,
    Connector,
    ControllerIC,
    PowerDiode,
    PowerMosfet,
    ShuntResistor,
    default_library,
)
from repro.components.library import ComponentLibrary


class TestSemiconductors:
    def test_mosfet_parameters(self):
        q = PowerMosfet()
        assert q.rds_on > 0.0
        assert q.rise_time > 0.0
        assert q.esr == pytest.approx(q.rds_on)

    def test_mosfet_has_three_pads(self):
        names = {p.name for p in PowerMosfet().pads}
        assert names == {"D", "S", "G"}

    def test_diode_parameters(self):
        d = PowerDiode()
        assert d.forward_voltage > 0.0
        assert d.esr == pytest.approx(d.on_resistance)

    def test_lead_frame_loops_small(self):
        assert PowerMosfet().esl < 5e-9
        assert PowerDiode().esl < 5e-9


class TestPassives:
    def test_resistor_esr_is_resistance(self):
        r = ChipResistor(resistance=47.0)
        assert r.esr == pytest.approx(47.0)

    def test_shunt_low_resistance(self):
        assert ShuntResistor().resistance < 0.1

    def test_connector_has_field_model(self):
        # Even "boring" parts provide a current path (no special cases).
        assert Connector().self_inductance > 0.0

    def test_controller_pads(self):
        assert len(ControllerIC().pads) == 8


class TestLibrary:
    def test_default_library_contents(self):
        lib = default_library()
        assert len(lib) >= 14
        assert "X2-1u5" in lib
        assert "CMC-3W" in lib

    def test_create_returns_fresh_instances(self):
        lib = default_library()
        a = lib.create("X2-1u5")
        b = lib.create("X2-1u5")
        assert a is not b

    def test_unknown_part_raises_with_catalogue(self):
        lib = default_library()
        with pytest.raises(KeyError, match="known parts"):
            lib.create("NOPE-42")

    def test_register_validates_part_number(self):
        lib = ComponentLibrary()
        with pytest.raises(ValueError):
            lib.register("WRONG-NAME", ChipResistor)

    def test_part_numbers_sorted(self):
        lib = default_library()
        numbers = lib.part_numbers()
        assert numbers == sorted(numbers)

    def test_all_parts_have_working_field_models(self):
        lib = default_library()
        for pn in lib.part_numbers():
            comp = lib.create(pn)
            assert comp.self_inductance > 0.0
            assert comp.magnetic_axis_local().norm() == pytest.approx(1.0)
