"""Unit tests for candidate-location generation."""

from repro.geometry import Placement2D, Vec2
from repro.placement import CandidateGenerator

from conftest import build_small_problem


class TestGenerators:
    def test_area_candidates_inside_board(self):
        problem = build_small_problem()
        gen = CandidateGenerator(problem)
        comp = problem.components["C1"]
        candidates = gen.area_candidates(comp, rotation_deg=0.0)
        assert candidates
        outline = problem.board(0).outline
        inside = sum(1 for p in candidates if outline.contains_point(p))
        assert inside / len(candidates) > 0.9

    def test_corner_candidates_only_with_obstacles(self):
        problem = build_small_problem()
        gen = CandidateGenerator(problem)
        comp = problem.components["C1"]
        assert gen.corner_candidates(comp, 0.0) == []
        problem.components["C2"].placement = Placement2D.at(0.04, 0.03)
        assert gen.corner_candidates(comp, 0.0)

    def test_corner_candidates_clear_the_obstacle(self):
        problem = build_small_problem()
        problem.components["C2"].placement = Placement2D.at(0.04, 0.03)
        gen = CandidateGenerator(problem)
        comp = problem.components["C1"]
        obstacle = problem.components["C2"].footprint_aabb()
        half_w = comp.component.footprint_w / 2.0
        half_h = comp.component.footprint_h / 2.0
        for p in gen.corner_candidates(comp, 0.0):
            rect = obstacle  # candidate centres sit outside the inflation
            assert not (
                rect.xmin < p.x < rect.xmax and rect.ymin < p.y < rect.ymax
            ) or (half_w == 0 and half_h == 0)

    def test_ring_candidates_on_circle(self):
        problem = build_small_problem()
        gen = CandidateGenerator(problem)
        comp = problem.components["C1"]
        center = Vec2(0.04, 0.03)
        candidates = gen.ring_candidates(comp, [(center, 0.025)], points=8)
        assert len(candidates) == 8
        for p in candidates:
            assert abs(p.distance_to(center) - 0.025) < 1e-9

    def test_ring_skips_nonpositive_radius(self):
        problem = build_small_problem()
        gen = CandidateGenerator(problem)
        comp = problem.components["C1"]
        assert gen.ring_candidates(comp, [(Vec2(0, 0), 0.0)]) == []

    def test_all_candidates_deduplicated(self):
        problem = build_small_problem()
        problem.components["C2"].placement = Placement2D.at(0.04, 0.03)
        gen = CandidateGenerator(problem)
        comp = problem.components["C1"]
        candidates = gen.all_candidates(comp, 0.0, [(Vec2(0.04, 0.03), 0.03)])
        keys = {(round(p.x / 5e-4), round(p.y / 5e-4)) for p in candidates}
        assert len(keys) == len(candidates)

    def test_preferred_area_first(self):
        from repro.placement import PlacementArea
        from repro.geometry import Polygon2D

        problem = build_small_problem()
        board = problem.board(0)
        board.areas.append(PlacementArea("l", Polygon2D.rectangle(0, 0, 0.04, 0.06)))
        board.areas.append(PlacementArea("r", Polygon2D.rectangle(0.04, 0, 0.08, 0.06)))
        comp = problem.components["C1"]
        comp.preferred_area = "r"
        gen = CandidateGenerator(problem)
        candidates = gen.area_candidates(comp, 0.0)
        # The first candidates come from the preferred area.
        assert candidates[0].x >= 0.04 - 1e-9
