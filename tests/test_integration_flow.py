"""Integration tests: the full paper flow end to end.

These tests exercise the complete chain — system simulation, sensitivity
analysis, rule derivation, automatic placement, field verification and
CISPR comparison — on the buck-converter demonstrator, asserting the
*shape* of the paper's evaluation results.
"""

import numpy as np

from repro.converters import build_demo_board
from repro.emi import CISPR25_CLASS3_PEAK
from repro.io import read_problem, write_problem
from repro.placement import AutoPlacer, DesignRuleChecker, InteractiveSession
from repro.viz import render_board_svg


class TestFig1Fig2Shape:
    """Same parts, same board, only placement differs (Figs. 1 and 2)."""

    def test_double_digit_improvement(self, layout_comparison):
        baseline = layout_comparison["baseline"].spectrum
        optimized = layout_comparison["optimized"].spectrum
        improvement = baseline.dbuv() - optimized.dbuv()
        assert float(np.max(improvement)) > 8.0

    def test_high_frequency_band_improves(self, layout_comparison):
        baseline = layout_comparison["baseline"].spectrum
        optimized = layout_comparison["optimized"].spectrum
        assert baseline.max_dbuv_in(5e6, 108e6) > optimized.max_dbuv_in(5e6, 108e6) + 6.0

    def test_limit_compliance_ordering(self, layout_comparison):
        worse = layout_comparison["baseline"].worst_margin_db
        better = layout_comparison["optimized"].worst_margin_db
        assert better > worse
        # The unfavourable layout exceeds the class-3 limits (Fig. 1).
        assert not CISPR25_CLASS3_PEAK.passes(layout_comparison["baseline"].spectrum)


class TestFig12To14Shape:
    """Prediction versus (synthetic) measurement."""

    def test_coupled_model_matches_measurement(self, design_flow, layout_comparison):
        ev = layout_comparison["baseline"]
        measurement = design_flow.measurement_for(ev)
        trace_meas = design_flow.receiver_trace(measurement)
        trace_with = design_flow.receiver_trace(ev.spectrum)
        trace_without = design_flow.receiver_trace(design_flow.predict())
        mae_with = trace_meas.mean_abs_error_db(trace_with)
        mae_without = trace_meas.mean_abs_error_db(trace_without)
        # Fig. 14: "good coincidence" with couplings...
        assert mae_with < 3.0
        # ... Fig. 12/13: "no correlation" without them.
        assert mae_without > mae_with + 6.0

    def test_correlation_ordering(self, design_flow, layout_comparison):
        ev = layout_comparison["baseline"]
        measurement = design_flow.measurement_for(ev)
        trace_meas = design_flow.receiver_trace(measurement)
        corr_with = trace_meas.correlation_db(design_flow.receiver_trace(ev.spectrum))
        corr_without = trace_meas.correlation_db(
            design_flow.receiver_trace(design_flow.predict())
        )
        assert corr_with > corr_without
        assert corr_with > 0.95


class TestFig9Shape:
    """Automatic placement of the 29-device board in seconds."""

    def test_demo_board_placed_fast_and_legally(self):
        problem = build_demo_board()
        report = AutoPlacer(problem).run()
        assert report.placed_count == 29
        assert report.violations_after == 0
        # The paper quotes "seconds"; leave generous CI headroom.
        assert report.runtime_s < 60.0

    def test_three_groups_coherent(self):
        from repro.placement import group_spread

        problem = build_demo_board()
        AutoPlacer(problem).run()
        board_diag = 0.128  # sqrt(0.1^2 + 0.08^2)
        for group in problem.groups:
            assert group_spread(problem, group.name) < board_diag * 0.7


class TestFig15To18Shape:
    """DRC visualisation before/after, groups displayed."""

    def test_red_markers_before_green_after(self, layout_comparison):
        base_problem = layout_comparison["baseline"].problem
        opt_problem = layout_comparison["optimized"].problem
        red_before = [
            m for m in DesignRuleChecker(base_problem).rule_markers() if not m.satisfied
        ]
        red_after = [
            m for m in DesignRuleChecker(opt_problem).rule_markers() if not m.satisfied
        ]
        assert red_before
        assert not red_after

    def test_svg_artifacts_render(self, layout_comparison):
        for ev in layout_comparison.values():
            svg = render_board_svg(ev.problem, title=ev.name)
            assert svg.startswith("<svg")


class TestInteractiveRefinement:
    def test_volume_minimisation_keeps_legality(self, design_flow):
        problem, _ = design_flow.place_optimized()
        session = InteractiveSession(problem)
        area0 = session.area()
        for ref in list(problem.components):
            for _ in range(4):
                if session.compact_step(ref, step=1e-3) is None:
                    break
        assert session.area() <= area0 + 1e-12
        assert session.board_is_legal()


class TestAsciiInterfaceFlow:
    def test_flow_problem_roundtrips_and_replaces(self, design_flow):
        problem = design_flow.problem_with_rules()
        text = write_problem(problem, title="buck with derived rules")
        again = read_problem(text)
        report = AutoPlacer(again).run()
        assert report.violations_after == 0
        assert len(again.rules.min_distance) == len(problem.rules.min_distance)
