"""Unit tests for the Manhattan router and trace parasitics."""

import pytest

from repro.geometry import Placement2D, Vec2
from repro.placement import Net
from repro.routing import (
    INDUCTANCE_PER_LENGTH_ESTIMATE,
    ManhattanRouter,
    Route,
    TraceSegment,
    route_current_path,
    route_inductance,
    route_mutual_inductance,
)

from conftest import build_small_problem


def placed_problem():
    problem = build_small_problem()
    positions = {
        "C1": (0.012, 0.012),
        "C2": (0.068, 0.012),
        "C3": (0.068, 0.048),
        "L1": (0.012, 0.048),
        "L2": (0.040, 0.048),
        "Q1": (0.040, 0.012),
        "D1": (0.040, 0.030),
    }
    for ref, (x, y) in positions.items():
        problem.components[ref].placement = Placement2D.at(x, y)
    return problem


class TestSegmentsAndRoutes:
    def test_segment_length(self):
        s = TraceSegment(Vec2(0, 0), Vec2(0.03, 0.04))
        assert s.length == pytest.approx(0.05)

    def test_route_total_length(self):
        r = Route("N", [TraceSegment(Vec2(0, 0), Vec2(0.01, 0)),
                        TraceSegment(Vec2(0.01, 0), Vec2(0.01, 0.02))])
        assert r.total_length() == pytest.approx(0.03)

    def test_empty_route(self):
        assert Route("N").is_empty()


class TestRouter:
    def test_two_pin_l_bend(self):
        problem = placed_problem()
        router = ManhattanRouter(problem)
        net = problem.nets[0]  # N1: C1-L1, vertically separated
        route = router.route_net(net)
        assert not route.is_empty()
        # Manhattan length >= Euclidean pin distance.
        assert route.total_length() >= 0.035 - 1e-3

    def test_manhattan_segments_axis_aligned(self):
        problem = placed_problem()
        for route in ManhattanRouter(problem).route_all().values():
            for seg in route.segments:
                dx = abs(seg.end.x - seg.start.x)
                dy = abs(seg.end.y - seg.start.y)
                assert dx < 1e-9 or dy < 1e-9

    def test_unplaced_pins_skipped(self):
        problem = placed_problem()
        problem.components["C1"].placement = None
        route = ManhattanRouter(problem).route_net(problem.nets[0])
        assert route.is_empty()  # only one placed pin remains

    def test_route_all_covers_all_nets(self):
        problem = placed_problem()
        routes = ManhattanRouter(problem).route_all()
        assert set(routes) == {n.name for n in problem.nets}

    def test_mst_length_not_worse_than_chain(self):
        # MST over n pins is never longer than visiting them in net order.
        problem = placed_problem()
        net = Net("TEST", [("C1", "1"), ("C2", "1"), ("C3", "1"), ("L1", "1")])
        problem.nets.append(net)
        route = ManhattanRouter(problem).route_net(net)
        pins = [problem.components[r].placement.apply(
            problem.components[r].component.pad_position(p)) for r, p in net.pins]
        chain = sum(
            abs(pins[i + 1].x - pins[i].x) + abs(pins[i + 1].y - pins[i].y)
            for i in range(len(pins) - 1)
        )
        assert route.total_length() <= chain + 1e-9

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ManhattanRouter(placed_problem(), trace_width=0.0)


class TestParasitics:
    def test_inductance_near_rule_of_thumb(self):
        r = Route("N", [TraceSegment(Vec2(0, 0), Vec2(0.05, 0))])
        l = route_inductance(r)
        estimate = INDUCTANCE_PER_LENGTH_ESTIMATE * 0.05
        assert l == pytest.approx(estimate, rel=0.5)

    def test_longer_routes_more_inductance(self):
        short = Route("A", [TraceSegment(Vec2(0, 0), Vec2(0.02, 0))])
        long = Route("B", [TraceSegment(Vec2(0, 0), Vec2(0.06, 0))])
        assert route_inductance(long) > route_inductance(short)

    def test_current_path_filament_count(self):
        r = Route("N", [TraceSegment(Vec2(0, 0), Vec2(0.01, 0)),
                        TraceSegment(Vec2(0.01, 0), Vec2(0.01, 0.01))])
        path = route_current_path(r, z=1e-4)
        assert path is not None and len(path) == 2
        assert path.filaments[0].start.z == pytest.approx(1e-4)

    def test_empty_route_no_path(self):
        assert route_current_path(Route("N")) is None
        assert route_mutual_inductance(Route("A"), Route("B")) == 0.0

    def test_parallel_traces_couple(self):
        a = Route("A", [TraceSegment(Vec2(0, 0), Vec2(0.05, 0))])
        b = Route("B", [TraceSegment(Vec2(0, 0.002), Vec2(0.05, 0.002))])
        m = route_mutual_inductance(a, b)
        assert m > 1e-9  # tightly coupled parallel pair

    def test_perpendicular_traces_do_not_couple(self):
        a = Route("A", [TraceSegment(Vec2(0, 0), Vec2(0.05, 0))])
        b = Route("B", [TraceSegment(Vec2(0.02, 0.01), Vec2(0.02, 0.05))])
        assert abs(route_mutual_inductance(a, b)) < 1e-15


class TestBuckIntegration:
    def test_trace_inductances_from_layout(self, buck_design):
        problem = buck_design.placement_problem()
        from repro.placement import BaselinePlacer

        BaselinePlacer(problem).run()
        lt = buck_design.trace_inductances_from_layout(problem)
        assert set(lt) == {"VIN", "VBUS", "VOUT", "VLOAD"}
        assert all(1e-9 < v < 500e-9 for v in lt.values())

    def test_trace_inductors_in_circuit(self, buck_design):
        circuit, _ = buck_design.emi_circuit(
            trace_inductances={"VIN": 30e-9, "VOUT": 20e-9}
        )
        names = {e.name for e in circuit.elements}
        assert "LT_VIN" in names and "LT_VOUT" in names
        assert "LT_VBUS" not in names

    def test_zero_trace_same_topology(self, buck_design):
        base, _ = buck_design.emi_circuit()
        with_zero, _ = buck_design.emi_circuit(trace_inductances={})
        assert base.stats() == with_zero.stats()

    def test_traces_change_spectrum(self, buck_design):
        base = buck_design.emission_spectrum()
        traced = buck_design.emission_spectrum(
            trace_inductances={"VIN": 50e-9, "VBUS": 40e-9, "VOUT": 20e-9, "VLOAD": 30e-9}
        )
        assert traced.mean_abs_error_db(base) > 0.05

    def test_circuit_still_solvable_with_traces(self, buck_design):
        import numpy as np
        from repro.circuit import MnaSystem

        circuit, meas = buck_design.emi_circuit(
            trace_inductances={"VIN": 50e-9, "VBUS": 40e-9, "VOUT": 20e-9, "VLOAD": 30e-9}
        )
        sol = MnaSystem(circuit).solve_ac(10e6)
        assert np.isfinite(abs(sol.voltage(meas)))


class TestViaModel:
    def test_standard_via_about_1nh(self):
        from repro.routing import via_inductance

        l = via_inductance(height=1.6e-3, diameter=0.4e-3)
        assert 0.8e-9 < l < 1.6e-9

    def test_taller_via_more_inductance(self):
        from repro.routing import via_inductance

        assert via_inductance(3.2e-3, 0.4e-3) > via_inductance(1.6e-3, 0.4e-3)

    def test_fatter_via_less_inductance(self):
        from repro.routing import via_inductance

        assert via_inductance(1.6e-3, 0.8e-3) < via_inductance(1.6e-3, 0.3e-3)

    def test_invalid_dimensions(self):
        from repro.routing import via_inductance

        with pytest.raises(ValueError):
            via_inductance(0.0, 0.4e-3)
        with pytest.raises(ValueError):
            via_inductance(1.6e-3, -1.0)
