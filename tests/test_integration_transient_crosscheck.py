"""Cross-domain validation: the transient and AC engines must agree.

The paper simulates "either in time or frequency domain"; this suite pins
the two engines of this reproduction against each other:

1. **strict consistency** — a DC-free sinusoidal current driven through
   the LISN + input-filter network must read the same at the measurement
   port in both domains (< 2 dB);
2. **switching realism** — an actual switching buck (switch + diode) is
   run in the time domain; replaying its *measured* switch-leg current
   harmonics through the AC solver reproduces the LISN harmonics (Hann
   windowing suppresses the start-up transient's spectral leakage);
3. **substitution envelope** — the idealised trapezoid source the EMI
   flow uses lands within its documented envelope of the truth at the
   fundamental.
"""

import math

import numpy as np
import pytest

from repro.circuit import Circuit, MnaSystem, TransientSolver, TrapezoidSource
from repro.emi import add_lisn

F_SW = 250e3
PERIOD = 1.0 / F_SW
DUTY = 0.42
VIN = 12.0
RLOAD = 6.0
N_FFT_PERIODS = 32
SAMPLES_PER_PERIOD = 400


def _add_filter(c: Circuit) -> None:
    """Shared passive input network (damped, bench-realistic)."""
    c.add_real_capacitor("CX1", "vin", "0", 1.5e-6, esr=0.02, esl=14e-9)
    c.add_real_inductor("LF1", "vin", "vbus", 5.5e-6, esr=0.02)
    c.add_resistor("RDAMP", "vin", "vbus", 33.0)
    c.add_real_capacitor("CX2", "vbus", "0", 1.5e-6, esr=0.02, esl=14e-9)
    c.add_real_capacitor("CIN", "vbus", "0", 10e-6, esr=0.05, esl=10e-9)


def _hann_harmonics(samples: np.ndarray, bins: range) -> dict[int, float]:
    """Window-normalised harmonic amplitudes (startup leakage suppressed)."""
    n = len(samples)
    window = np.hanning(n)
    spectrum = np.fft.rfft(samples * window)
    scale = 2.0 / window.sum()
    return {h: float(abs(spectrum[N_FFT_PERIODS * h])) * scale for h in bins}


class TestEngineConsistency:
    def test_sine_stimulus_agrees_across_domains(self):
        """DC-free single tone: both engines solve the same network."""
        f0 = 3.0 * F_SW
        c = Circuit()
        c.add_vsource("VSUP", "supply", "0", waveform=lambda t: 0.0, ac=0.0)
        add_lisn(c, "LISN", "supply", "vin")
        _add_filter(c)
        c.add_isource(
            "IT",
            "vbus",
            "0",
            waveform=lambda t: 0.2 * math.sin(2 * math.pi * f0 * t),
            spectrum=lambda f: -0.2j if abs(f - f0) < 1.0 else 0.0,
        )
        dt = 1.0 / f0 / SAMPLES_PER_PERIOD
        result = TransientSolver(c).run(120.0 / f0, dt)
        n = N_FFT_PERIODS * SAMPLES_PER_PERIOD
        v = result.voltage("LISN.meas")[-n:]
        measured = 2.0 * abs(np.fft.rfft(v)[N_FFT_PERIODS]) / n
        predicted = abs(MnaSystem(c).solve_ac(f0).voltage("LISN.meas"))
        delta_db = 20.0 * math.log10(predicted / measured)
        assert abs(delta_db) < 2.0


def transient_circuit() -> Circuit:
    c = Circuit("time domain buck")
    c.add_vsource("VSUP", "supply", "0", waveform=lambda t: VIN)
    add_lisn(c, "LISN", "supply", "vin")
    _add_filter(c)
    c.add_switch(
        "S1",
        "vbus",
        "sw",
        r_on=20e-3,
        r_off=1e7,
        control=lambda t: (t % PERIOD) < DUTY * PERIOD,
    )
    c.add_diode("D1", "0", "sw", vf=0.4, r_on=15e-3)
    # COUT sized so the output settles well inside the simulated window.
    c.add_inductor("L1", "sw", "vout", 13e-6)
    c.add_capacitor("COUT", "vout", "0", 10e-6)
    c.add_resistor("RL", "vout", "0", RLOAD)
    return c


def frequency_circuit(source_spectrum) -> Circuit:
    """The same linear network, driven at the switch leg by a spectrum."""
    c = Circuit("frequency domain buck")
    c.add_vsource("VSUP", "supply", "0", ac=0.0)
    add_lisn(c, "LISN", "supply", "vin")
    _add_filter(c)
    c.add_isource("INOISE", "vbus", "0", spectrum=source_spectrum)
    return c


@pytest.fixture(scope="module")
def transient_run():
    """Steady-state transient data: LISN harmonics + switch-current harmonics."""
    circuit = transient_circuit()
    dt = PERIOD / SAMPLES_PER_PERIOD
    result = TransientSolver(circuit).run(150 * PERIOD, dt)
    n = N_FFT_PERIODS * SAMPLES_PER_PERIOD

    v_meas = result.voltage("LISN.meas")[-n:]
    v_vbus = result.voltage("vbus")[-n:]
    v_sw = result.voltage("sw")[-n:]
    times = result.times[-n:]
    on = (times % PERIOD) < DUTY * PERIOD
    i_switch = (v_vbus - v_sw) / np.where(on, 20e-3, 1e7)

    # Complex harmonics of the switch current (Hann, window-normalised),
    # keeping phase so the replay is faithful.
    window = np.hanning(n)
    scale = 2.0 / window.sum()
    spec_i = np.fft.rfft(i_switch * window) * scale
    i_harm = {h: complex(spec_i[N_FFT_PERIODS * h]) for h in range(1, 8)}
    v_harm = _hann_harmonics(v_meas, range(1, 8))
    i_load = float(np.mean(result.voltage("vout")[-n:]) / RLOAD)
    return v_harm, i_harm, i_load


class TestSwitchingBuck:
    def test_converter_operates(self, transient_run):
        _, _, i_load = transient_run
        assert 0.5 < i_load < 1.2

    def test_replayed_current_reproduces_lisn_harmonics(self, transient_run):
        v_harm, i_harm, _ = transient_run

        def spectrum(freq: float) -> complex:
            h = int(round(freq / F_SW))
            if abs(freq - h * F_SW) > 1.0 or h not in i_harm:
                return 0.0
            return i_harm[h]

        mna = MnaSystem(frequency_circuit(spectrum))
        for h in (1, 2, 3):
            predicted = abs(mna.solve_ac(h * F_SW).voltage("LISN.meas"))
            measured = v_harm[h]
            delta_db = 20.0 * math.log10(
                max(predicted, 1e-15) / max(measured, 1e-15)
            )
            # Residual window leakage and switching-edge discretisation
            # leave a few dB; anything beyond would flag an engine bug.
            assert abs(delta_db) < 6.0, f"harmonic {h}: {delta_db:+.1f} dB"

    def test_trapezoid_substitution_fundamental(self, transient_run):
        v_harm, _, i_load = transient_run
        source = TrapezoidSource(
            0.0, i_load, F_SW, duty=DUTY, t_rise=40e-9, t_fall=40e-9
        )
        mna = MnaSystem(frequency_circuit(source.spectrum_callable()))
        predicted = abs(mna.solve_ac(F_SW).voltage("LISN.meas"))
        delta_db = abs(20.0 * math.log10(predicted / v_harm[1]))
        # The flat-top trapezoid ignores the inductor current ramp; ~12 dB
        # envelope accuracy at the fundamental is the honest expectation.
        assert delta_db < 12.0

    def test_harmonics_decay(self, transient_run):
        v_harm, _, _ = transient_run
        assert v_harm[5] < v_harm[1]
