"""Unit tests for partial capacitances (the E-field extension)."""

import math

import pytest

from repro.peec import (
    EPS0,
    equivalent_radius,
    mutual_capacitance_spheres,
    plate_capacitance,
    sphere_self_capacitance,
)


class TestSphereCapacitance:
    def test_textbook_value(self):
        # A 1 cm radius sphere: ~1.11 pF.
        assert sphere_self_capacitance(0.01) == pytest.approx(1.11e-12, rel=0.01)

    def test_linear_in_radius(self):
        assert sphere_self_capacitance(0.02) == pytest.approx(
            2.0 * sphere_self_capacitance(0.01)
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            sphere_self_capacitance(0.0)


class TestMutualCapacitance:
    def test_inverse_distance(self):
        c1 = mutual_capacitance_spheres(5e-3, 5e-3, 0.05)
        c2 = mutual_capacitance_spheres(5e-3, 5e-3, 0.10)
        assert c1 == pytest.approx(2.0 * c2)

    def test_symmetric(self):
        assert mutual_capacitance_spheres(3e-3, 7e-3, 0.04) == pytest.approx(
            mutual_capacitance_spheres(7e-3, 3e-3, 0.04)
        )

    def test_clamped_below_self_capacitance(self):
        tight = mutual_capacitance_spheres(5e-3, 5e-3, 1e-4)
        assert tight < sphere_self_capacitance(5e-3)

    def test_sub_picofarad_at_board_scale(self):
        # Typical component bodies a few cm apart: fractions of a pF.
        c = mutual_capacitance_spheres(6e-3, 6e-3, 0.03)
        assert 0.05e-12 < c < 2e-12

    def test_invalid(self):
        with pytest.raises(ValueError):
            mutual_capacitance_spheres(0.0, 1e-3, 0.01)
        with pytest.raises(ValueError):
            mutual_capacitance_spheres(1e-3, 1e-3, 0.0)


class TestPlateCapacitance:
    def test_formula(self):
        assert plate_capacitance(1e-4, 1e-3) == pytest.approx(EPS0 * 1e-4 / 1e-3)

    def test_dielectric(self):
        assert plate_capacitance(1e-4, 1e-3, eps_r=4.0) == pytest.approx(
            4.0 * plate_capacitance(1e-4, 1e-3)
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            plate_capacitance(0.0, 1e-3)
        with pytest.raises(ValueError):
            plate_capacitance(1e-4, 1e-3, eps_r=0.5)


class TestEquivalentRadius:
    def test_cube_close_to_sphere(self):
        # A cube of side a has surface 6a^2 -> r = a*sqrt(6/(4pi)) ~ 0.69a.
        r = equivalent_radius(0.01, 0.01, 0.01)
        assert r == pytest.approx(0.01 * math.sqrt(6.0 / (4.0 * math.pi)), rel=1e-9)

    def test_monotone_in_size(self):
        assert equivalent_radius(0.02, 0.01, 0.01) > equivalent_radius(
            0.01, 0.01, 0.01
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            equivalent_radius(0.0, 0.01, 0.01)
