"""Unit tests for the buck-converter demonstration system."""

import numpy as np
import pytest

from repro.circuit import MnaSystem
from repro.converters import COUPLING_BRANCHES, BuckConverterDesign


class TestParameters:
    def test_duty(self, buck_design):
        assert buck_design.duty == pytest.approx(5.0 / 12.0)

    def test_invalid_voltages(self):
        with pytest.raises(ValueError):
            BuckConverterDesign(input_voltage=5.0, output_voltage=12.0)
        with pytest.raises(ValueError):
            BuckConverterDesign(switching_frequency=0.0)

    def test_parts_cached(self, buck_design):
        assert buck_design.parts() is buck_design.parts()

    def test_part_count(self, buck_design):
        assert len(buck_design.parts()) == 16


class TestPlacementProblem:
    def test_fresh_problem_each_call(self, buck_design):
        p1 = buck_design.placement_problem()
        p2 = buck_design.placement_problem()
        assert p1 is not p2
        assert len(p1.components) == 16

    def test_three_functional_groups(self, buck_design):
        problem = buck_design.placement_problem()
        assert {g.name for g in problem.groups} == {
            "input_filter",
            "power_stage",
            "output_filter",
        }

    def test_nets_reference_valid_parts(self, buck_design):
        problem = buck_design.placement_problem()
        for net in problem.nets:
            for ref, _pad in net.pins:
                assert ref in problem.components

    def test_board_dimensions(self, buck_design):
        problem = buck_design.placement_problem()
        xmin, ymin, xmax, ymax = problem.board(0).outline.bbox()
        assert xmax - xmin == pytest.approx(buck_design.board_width)
        assert ymax - ymin == pytest.approx(buck_design.board_height)


class TestCircuitModel:
    def test_all_coupling_branches_exist(self, buck_design):
        circuit, _ = buck_design.emi_circuit()
        inductors = {e.name for e in circuit.inductors()}
        for branch in COUPLING_BRANCHES:
            assert branch in inductors

    def test_measurement_node_solvable(self, buck_design):
        circuit, meas = buck_design.emi_circuit()
        sol = MnaSystem(circuit).solve_ac(1e6)
        assert np.isfinite(abs(sol.voltage(meas)))

    def test_apply_couplings_count(self, buck_design):
        circuit, _ = buck_design.emi_circuit()
        applied = buck_design.apply_couplings(
            circuit,
            {("CX1", "CX2"): 0.05, ("CX1", "CONN1"): 0.5, ("CX2", "LF1"): 1e-12},
        )
        # CONN1 has no circuit branch; 1e-12 is below the floor.
        assert applied == 1

    def test_couplings_change_spectrum(self, buck_design):
        clean = buck_design.emission_spectrum()
        dirty = buck_design.emission_spectrum({("CX1", "CX2"): 0.05})
        assert dirty.mean_abs_error_db(clean) > 1.0

    def test_harmonic_grid_in_cispr_range(self, buck_design):
        freqs = buck_design.harmonic_frequencies()
        assert freqs[0] >= 150e3 * 0.99
        assert freqs[-1] <= 108e6

    def test_spectrum_grid_matches_harmonics(self, buck_design):
        spec = buck_design.emission_spectrum()
        assert np.allclose(spec.freqs, buck_design.harmonic_frequencies())


class TestPhysicalBehaviour:
    def test_filter_attenuates_highs(self, buck_design):
        # Without couplings the pi filters roll off: late harmonics at the
        # LISN are far below the fundamental.
        spec = buck_design.emission_spectrum()
        db = spec.dbuv()
        assert db[0] > np.median(db[len(db) // 2 :]) + 20.0

    def test_faster_edges_raise_hf_noise(self):
        slow = BuckConverterDesign(t_rise=100e-9, t_fall=100e-9)
        fast = BuckConverterDesign(t_rise=10e-9, t_fall=10e-9)
        s_slow = slow.emission_spectrum()
        s_fast = fast.emission_spectrum()
        assert s_fast.max_dbuv_in(20e6, 108e6) > s_slow.max_dbuv_in(20e6, 108e6)

    def test_more_current_more_noise(self):
        light = BuckConverterDesign(output_current=0.5)
        heavy = BuckConverterDesign(output_current=5.0)
        assert heavy.emission_spectrum().dbuv()[0] > light.emission_spectrum().dbuv()[0]
