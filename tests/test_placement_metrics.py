"""Unit tests for placement metrics."""

import pytest

from repro.geometry import Placement2D, Vec2
from repro.placement import (
    emd_slack_sum,
    group_centroid,
    group_spread,
    net_hpwl,
    placement_area,
    placement_bbox,
    total_wirelength,
)
from repro.placement.metrics import worst_emd_margin

from conftest import build_small_problem


def place_all_in_row(problem, pitch=0.02):
    for i, comp in enumerate(problem.components.values()):
        comp.placement = Placement2D.at(0.01 + i * pitch, 0.02)


class TestWirelength:
    def test_unplaced_nets_zero(self):
        problem = build_small_problem()
        assert total_wirelength(problem) == 0.0

    def test_hpwl_two_pin(self):
        problem = build_small_problem()
        problem.components["C1"].placement = Placement2D.at(0.01, 0.01)
        problem.components["L1"].placement = Placement2D.at(0.04, 0.03)
        net = problem.nets[0]  # N1: C1.1 - L1.1
        length = net_hpwl(problem, net)
        # HPWL uses pad positions; it must be at least the centre HPWL minus
        # pad offsets and positive.
        assert length > 0.0
        assert length == pytest.approx(0.03 + 0.02, abs=0.02)

    def test_partial_net_skips_unplaced(self):
        problem = build_small_problem()
        problem.components["L1"].placement = Placement2D.at(0.04, 0.03)
        net = problem.nets[1]  # N2 touches L1, C2, Q1
        assert net_hpwl(problem, net) == 0.0  # single placed pin
        problem.components["C2"].placement = Placement2D.at(0.02, 0.03)
        assert net_hpwl(problem, net) > 0.0

    def test_total_is_sum(self):
        problem = build_small_problem()
        place_all_in_row(problem)
        assert total_wirelength(problem) == pytest.approx(
            sum(net_hpwl(problem, n) for n in problem.nets)
        )


class TestAreaMetrics:
    def test_empty_bbox_none(self):
        problem = build_small_problem()
        assert placement_bbox(problem) is None
        assert placement_area(problem) == 0.0

    def test_bbox_covers_all(self):
        problem = build_small_problem()
        place_all_in_row(problem)
        box = placement_bbox(problem)
        assert box is not None
        for comp in problem.placed():
            r = comp.footprint_aabb()
            assert box.xmin <= r.xmin and box.xmax >= r.xmax

    def test_area_grows_with_spread(self):
        problem = build_small_problem()
        place_all_in_row(problem, pitch=0.02)
        tight = placement_area(problem)
        place_all_in_row(problem, pitch=0.06)
        loose = placement_area(problem)
        assert loose > tight


class TestGroupMetrics:
    def test_centroid_and_spread(self):
        problem = build_small_problem()
        problem.define_group("g", ["C1", "C2"])
        problem.components["C1"].placement = Placement2D.at(0.00, 0.00)
        problem.components["C2"].placement = Placement2D.at(0.03, 0.04)
        c = group_centroid(problem, "g")
        assert c is not None and c.is_close(Vec2(0.015, 0.02))
        assert group_spread(problem, "g") == pytest.approx(0.05)

    def test_unplaced_group(self):
        problem = build_small_problem()
        problem.define_group("g", ["C1", "C2"])
        assert group_centroid(problem, "g") is None
        assert group_spread(problem, "g") == 0.0


class TestEmdMetrics:
    def test_clean_layout_zero_slack(self):
        problem = build_small_problem()
        # Spread far beyond every PEMD.
        positions = [(0.01, 0.01), (0.07, 0.01), (0.01, 0.05), (0.07, 0.05),
                     (0.04, 0.03), (0.01, 0.03), (0.07, 0.03)]
        for (x, y), comp in zip(positions, problem.components.values(), strict=True):
            comp.placement = Placement2D.at(x, y)
        # All PEMDs are <= 35 mm and the layout spreads up to 60 mm; slack
        # may not be exactly zero for every pair, so check consistency:
        slack = emd_slack_sum(problem)
        margin = worst_emd_margin(problem)
        assert slack >= 0.0
        assert (slack == 0.0) == (margin >= 0.0)

    def test_coincident_pair_maximum_slack(self):
        problem = build_small_problem()
        problem.components["C1"].placement = Placement2D.at(0.02, 0.02)
        problem.components["C2"].placement = Placement2D.at(0.021, 0.02)
        slack = emd_slack_sum(problem)
        assert slack > 0.02  # nearly the full 25 mm PEMD missing

    def test_rotation_reduces_slack(self):
        problem = build_small_problem()
        problem.components["C1"].placement = Placement2D.at(0.02, 0.02)
        problem.components["C2"].placement = Placement2D.at(0.035, 0.02)
        parallel = emd_slack_sum(problem)
        problem.components["C2"].placement = Placement2D.at(0.035, 0.02, 90)
        rotated = emd_slack_sum(problem)
        assert rotated < parallel

    def test_cross_board_pairs_ignored(self):
        problem = build_small_problem()
        problem.components["C1"].placement = Placement2D.at(0.02, 0.02)
        problem.components["C2"].placement = Placement2D.at(0.021, 0.02)
        problem.components["C2"].board = 1
        assert emd_slack_sum(problem) == 0.0
