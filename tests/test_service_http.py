"""The HTTP surface: round trips, SSE, artifacts, errors, lifecycle.

Board jobs (sub-second: check -> place -> DRC) keep these tests fast;
the full-flow concurrency acceptance run lives in
``tests/test_service_e2e.py``.
"""

import json
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.obs import RunReport
from repro.service import EmiService, ServiceConfig

SMALL_BOARD = """EMIPLACE 1
TITLE service http test board
BOARD 0 GROUND 1
  OUTLINE 0,0 70,0 70,50 0,50
END
COMP CX1 TYPE FilmCapacitorX2 PN CX1-X2 SIZE 18x8x15
COMP LF1 TYPE BobbinChoke PN LF1-CH SIZE 12x10x12
COMP Q1 TYPE PowerMosfet PN Q1-DPAK SIZE 10x9x2.3
NET VIN CX1.1 LF1.1
NET VBUS LF1.2 Q1.D
RULE CLEAR * * 0.5
"""

BAD_BOARD = SMALL_BOARD.replace("END", "  KEEPOUT big 0,0 70,50 Z 0 99\nEND")


def request_json(url, method="GET", payload=None, timeout=30):
    """(status, parsed JSON body) without raising on 4xx/5xx."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def wait_terminal(base_url, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, snap = request_json(f"{base_url}/jobs/{job_id}")
        assert status == 200
        if snap["state"] in ("succeeded", "failed", "cancelled"):
            return snap
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not reach a terminal state")


def read_sse(base_url, job_id, since=None, timeout=60):
    """Collect (ids, telemetry events, end snapshot) from one stream."""
    url = f"{base_url}/jobs/{job_id}/events"
    if since is not None:
        url += f"?since={since}"
    ids, events, event_type, data = [], [], None, None
    with urllib.request.urlopen(url, timeout=timeout) as stream:
        for raw in stream:
            line = raw.decode().rstrip("\n")
            if line.startswith("id: "):
                ids.append(int(line[4:]))
            elif line.startswith("event: "):
                event_type = line[7:]
            elif line.startswith("data: "):
                data = line[6:]
            elif not line and event_type:
                if event_type == "end":
                    return ids, events, json.loads(data)
                events.append(json.loads(data))
                event_type = data = None
    raise AssertionError("stream closed without an end frame")


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("svc")
    config = ServiceConfig(
        port=0,
        pool_workers=2,
        data_dir=root / "data",
        cache_dir=None,
        job_timeout_s=60.0,
    )
    svc = EmiService(config)
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture()
def own_service(tmp_path):
    """A fresh service per test, for tests that block or mutate workers."""
    created = []

    def factory(**overrides):
        defaults = dict(
            port=0,
            pool_workers=1,
            data_dir=tmp_path / "data",
            cache_dir=None,
            job_timeout_s=60.0,
        )
        defaults.update(overrides)
        svc = EmiService(ServiceConfig(**defaults))
        svc.start()
        created.append(svc)
        return svc

    yield factory
    for svc in created:
        svc.stop(drain=False)


class TestBasics:
    def test_healthz(self, service):
        status, body = request_json(service.url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_unknown_routes_404(self, service):
        for method, path in [
            ("GET", "/nope"),
            ("POST", "/jobs/extra"),
            ("DELETE", "/jobs"),
            ("GET", "/jobs/nonexistent"),
            ("DELETE", "/jobs/nonexistent"),
            ("GET", "/jobs/nonexistent/events"),
            ("GET", "/jobs/nonexistent/artifacts"),
        ]:
            payload = {} if method == "POST" else None
            status, body = request_json(
                service.url + path, method=method, payload=payload
            )
            assert status == 404, (method, path)
            assert "error" in body

    def test_metrics_endpoint(self, service):
        with urllib.request.urlopen(service.url + "/metrics") as response:
            assert response.status == 200
            assert "text/plain" in response.headers["Content-Type"]
            text = response.read().decode()
        assert "service.queue_depth" in text
        assert 'repro_emi_gauge{name="service.workers_total"} 2' in text


class TestRoundTrip:
    def test_board_job_full_round_trip(self, service):
        status, snap = request_json(
            service.url + "/jobs", "POST", {"board": SMALL_BOARD}
        )
        assert status == 202
        assert snap["state"] in ("queued", "running")
        job_id = snap["id"]
        assert job_id.startswith("j")
        assert snap["content_hash"] in job_id or True  # id carries a prefix
        final = wait_terminal(service.url, job_id)
        assert final["state"] == "succeeded"
        assert final["progress"] == 1.0
        assert final["stages"] == {
            "check": "done",
            "placement": "done",
            "verification": "done",
        }
        assert final["result"]["violations"] == 0

        # job listing contains it
        status, listing = request_json(service.url + "/jobs")
        assert status == 200
        assert job_id in [j["id"] for j in listing["jobs"]]

        # artifacts: list, fetch, schema-check the run report
        status, body = request_json(f"{service.url}/jobs/{job_id}/artifacts")
        assert status == 200
        names = body["artifacts"]
        for expected in (
            "run_report.json",
            "events.jsonl",
            "flight.html",
            "check_report.json",
            "placed.txt",
            "board.svg",
            "result.json",
        ):
            assert expected in names
        with urllib.request.urlopen(
            f"{service.url}/jobs/{job_id}/artifacts/run_report.json"
        ) as response:
            report = RunReport.from_json(response.read().decode())
        assert report.meta["status"] == "ok"
        assert report.meta["job_id"] == job_id
        with urllib.request.urlopen(
            f"{service.url}/jobs/{job_id}/artifacts/board.svg"
        ) as response:
            assert "svg" in response.headers["Content-Type"]
            assert b"<svg" in response.read()

    def test_artifact_404_and_traversal_guard(self, service):
        _, snap = request_json(service.url + "/jobs", "POST", {"board": SMALL_BOARD})
        job_id = snap["id"]
        wait_terminal(service.url, job_id)
        for name in ("nope.txt", "..%2F..%2Fsecrets", "run_report.json.bak"):
            status, _ = request_json(
                f"{service.url}/jobs/{job_id}/artifacts/{name}"
            )
            assert status == 404, name

    def test_sse_stream_is_gap_free_and_resumable(self, service):
        _, snap = request_json(service.url + "/jobs", "POST", {"board": SMALL_BOARD})
        job_id = snap["id"]
        ids, events, end = read_sse(service.url, job_id)
        assert end["state"] == "succeeded"
        assert ids == list(range(1, len(ids) + 1))  # gap-free, monotonic
        assert [e["seq"] for e in events] == ids
        kinds = {e["kind"] for e in events}
        assert "stage" in kinds and "span_open" in kinds
        # resume mid-stream: only events after the cursor replay
        cursor = ids[len(ids) // 2]
        ids2, events2, end2 = read_sse(service.url, job_id, since=cursor)
        assert ids2 == list(range(cursor + 1, ids[-1] + 1))
        assert end2["state"] == "succeeded"

    def test_identical_payloads_share_content_hash(self, service):
        _, a = request_json(service.url + "/jobs", "POST", {"board": SMALL_BOARD})
        _, b = request_json(service.url + "/jobs", "POST", {"board": SMALL_BOARD})
        assert a["id"] != b["id"]
        assert a["content_hash"] == b["content_hash"]


class TestRejections:
    def test_non_json_body(self, service):
        request = urllib.request.Request(
            service.url + "/jobs", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_malformed_payload_400(self, service):
        status, body = request_json(
            service.url + "/jobs", "POST", {"desing": {}}
        )
        assert status == 400
        assert "desing" in body["error"]

    def test_failing_board_cites_check_report(self, service):
        status, body = request_json(
            service.url + "/jobs", "POST", {"board": BAD_BOARD}
        )
        assert status == 400
        assert "check" in body["error"]
        report = body["check_report"]
        codes = [d["code"] for d in report["diagnostics"]]
        assert codes, "rejection must cite the failing check rules"

    def test_rejections_never_occupy_workers(self, service):
        before = request_json(service.url + "/jobs")[1]["jobs"]
        request_json(service.url + "/jobs", "POST", {"board": BAD_BOARD})
        after = request_json(service.url + "/jobs")[1]["jobs"]
        assert len(after) == len(before)


class TestCancellation:
    def test_cancel_queued_job(self, own_service):
        svc = own_service(pool_workers=1)
        svc.manager.runner.stage_hook = (
            lambda job, stage: job.cancel_event.wait(timeout=30)
        )
        # First job occupies the only worker at its first checkpoint...
        _, first = request_json(svc.url + "/jobs", "POST", {"board": SMALL_BOARD})
        # ...so the second stays queued and cancels immediately.
        _, second = request_json(
            svc.url + "/jobs", "POST",
            {"board": SMALL_BOARD, "options": {"workers": 1}},
        )
        status, snap = request_json(
            f"{svc.url}/jobs/{second['id']}", method="DELETE"
        )
        assert status == 200
        assert snap["state"] == "cancelled"
        # unblock + cancel the pinned job too
        request_json(f"{svc.url}/jobs/{first['id']}", method="DELETE")
        final = wait_terminal(svc.url, first["id"])
        assert final["state"] == "cancelled"

    def test_cancel_running_job_stops_at_checkpoint(self, own_service):
        svc = own_service(pool_workers=1)
        svc.manager.runner.stage_hook = (
            lambda job, stage: job.cancel_event.wait(timeout=30)
        )
        _, snap = request_json(svc.url + "/jobs", "POST", {"board": SMALL_BOARD})
        job_id = snap["id"]
        # wait until it is actually running
        deadline = time.monotonic() + 10
        while request_json(f"{svc.url}/jobs/{job_id}")[1]["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        status, _ = request_json(f"{svc.url}/jobs/{job_id}", method="DELETE")
        assert status == 200
        final = wait_terminal(svc.url, job_id)
        assert final["state"] == "cancelled"
        assert final["error"]["kind"] == "cancelled"
        # cancelled jobs still flush their diagnostics artifacts
        assert "run_report.json" in final["artifacts"]
        assert "events.jsonl" in final["artifacts"]
        # DELETE on a terminal job is idempotent
        status, snap = request_json(f"{svc.url}/jobs/{job_id}", method="DELETE")
        assert status == 200
        assert snap["state"] == "cancelled"

    def test_timeout_fails_the_job(self, own_service):
        svc = own_service(pool_workers=1)
        svc.manager.runner.stage_hook = lambda job, stage: time.sleep(0.1)
        _, snap = request_json(
            svc.url + "/jobs",
            "POST",
            {"board": SMALL_BOARD, "options": {"timeout_s": 0.05}},
        )
        final = wait_terminal(svc.url, snap["id"])
        assert final["state"] == "failed"
        assert final["error"]["kind"] == "timeout"


class TestBackpressureAndShutdown:
    def test_queue_full_gets_429(self, own_service):
        svc = own_service(pool_workers=1, max_queued=1)
        svc.manager.runner.stage_hook = (
            lambda job, stage: job.cancel_event.wait(timeout=30)
        )
        _, first = request_json(svc.url + "/jobs", "POST", {"board": SMALL_BOARD})
        # wait for pickup so the queue slot frees
        deadline = time.monotonic() + 10
        while request_json(f"{svc.url}/jobs/{first['id']}")[1]["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        status, _ = request_json(svc.url + "/jobs", "POST", {"board": SMALL_BOARD})
        assert status == 202  # fills the single queue slot
        status, body = request_json(
            svc.url + "/jobs", "POST", {"board": SMALL_BOARD}
        )
        assert status == 429
        assert "full" in body["error"]

    def test_shutdown_refuses_submissions_with_503(self, own_service):
        svc = own_service()
        svc.manager.close()
        status, body = request_json(
            svc.url + "/jobs", "POST", {"board": SMALL_BOARD}
        )
        assert status == 503
        assert "shutting down" in body["error"]
        status, body = request_json(svc.url + "/healthz")
        assert status == 200
        assert body["status"] == "shutting-down"

    def test_drain_finishes_inflight_jobs(self, own_service):
        svc = own_service(pool_workers=2)
        ids = []
        for _ in range(3):
            _, snap = request_json(
                svc.url + "/jobs", "POST", {"board": SMALL_BOARD}
            )
            ids.append(snap["id"])
        svc.stop(drain=True)  # blocks until every job is terminal
        for job_id in ids:
            job = svc.manager.get(job_id)
            assert job.state == "succeeded"
            assert (job.artifacts_dir / "run_report.json").is_file()
