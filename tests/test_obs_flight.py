"""Tests for the flight-recorder HTML and the streaming CLI surface."""

import json
from datetime import datetime

import pytest

from repro import obs
from repro.cli import main
from repro.io import write_problem
from repro.obs import (
    PerfHistory,
    RunReport,
    Thresholds,
    Tracer,
    compare,
    render_flight_html,
    validate_event_dict,
)
from repro.placement import AutoPlacer

from conftest import build_small_problem


@pytest.fixture(autouse=True)
def _restore_global_tracer():
    yield
    obs.disable()


def _traced_report(meta=None):
    tracer = Tracer(meta=meta or {"command": "rules"})
    with tracer.span("flow.rules"):
        tracer.count("coupling.cache_hits", 3)
        tracer.count("coupling.cache_misses", 1)
    tracer.gauge("proc.rss_peak_bytes", 1e8)
    return tracer.report(extra_meta={"status": "ok"})


def _events():
    return [
        {"schema": 1, "seq": 1, "ts": 100.0, "kind": "stage", "name": "rules",
         "attrs": {"status": "start"}},
        {"schema": 1, "seq": 2, "ts": 100.1, "kind": "span_open",
         "name": "flow.rules", "path": "run/flow.rules"},
        {"schema": 1, "seq": 3, "ts": 100.9, "kind": "span_close",
         "name": "flow.rules", "path": "run/flow.rules", "value": 0.8},
        {"schema": 1, "seq": 4, "ts": 101.0, "kind": "stage", "name": "rules",
         "attrs": {"status": "done"}},
    ]


class TestRenderFlightHtml:
    def test_minimal_report_renders(self):
        html = render_flight_html(_traced_report())
        assert html.startswith("<!DOCTYPE html>")
        assert "Span tree" in html
        assert "flow.rules" in html
        assert "Counters" in html
        assert "Gauges" in html
        # Optional sections absent without their inputs.
        assert "Event timeline" not in html
        assert "Recent history" not in html
        assert "Regression verdict" not in html

    def test_event_timeline_and_stage_strip(self):
        html = render_flight_html(_traced_report(), events=_events())
        assert "Event timeline" in html
        assert "4 event(s)" in html
        assert "<svg" in html  # the stage strip
        assert "kind-stage" in html

    def test_long_event_log_elides_middle(self):
        events = [
            {"schema": 1, "seq": i, "ts": float(i), "kind": "counter",
             "name": f"c{i}", "value": 1.0}
            for i in range(1, 402)
        ]
        html = render_flight_html(_traced_report(), events=events)
        assert "elided" in html
        assert "c1</td>" in html  # head kept
        assert "c401</td>" in html  # tail kept
        assert "c200</td>" not in html  # middle dropped

    def test_history_and_verdict_sections(self, tmp_path):
        report = _traced_report()
        history = PerfHistory(tmp_path / "h.jsonl")
        history.append(report, key="rules")
        history.append(report, key="rules")
        records = history.last(key="rules", n=5)
        verdict = compare(report, [r.report for r in records], Thresholds())
        html = render_flight_html(report, history=records, verdict=verdict)
        assert "Recent history" in html
        assert "2 stored run(s)" in html
        assert "Regression verdict" in html
        assert 'class="ok"' in html

    def test_escapes_hostile_meta(self):
        report = _traced_report(meta={"command": "<script>alert(1)</script>"})
        html = render_flight_html(report, title="<b>t</b>")
        assert "<script>alert(1)" not in html
        assert "&lt;script&gt;" in html
        assert "<b>t</b>" not in html

    def test_deterministic(self):
        report = _traced_report()
        assert render_flight_html(report, events=_events()) == render_flight_html(
            report, events=_events()
        )


@pytest.fixture
def placed_file(tmp_path):
    problem = build_small_problem()
    AutoPlacer(problem).run()
    path = tmp_path / "placed.txt"
    path.write_text(write_problem(problem, title="placed"))
    return path


class TestCliEventStream:
    def test_events_out_writes_valid_monotonic_log(
        self, placed_file, tmp_path, capsys
    ):
        events_path = tmp_path / "events.jsonl"
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "drc",
                str(placed_file),
                "--events-out",
                str(events_path),
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert code == 0
        assert f"wrote {events_path}" in capsys.readouterr().out
        lines = events_path.read_text().splitlines()
        assert lines
        seqs = []
        kinds = set()
        for line in lines:
            data = json.loads(line)
            assert validate_event_dict(data) == []
            seqs.append(data["seq"])
            kinds.add(data["kind"])
        assert seqs == list(range(1, len(seqs) + 1))
        # Sampler gauges always appear (stop() takes a final sample).
        gauge_names = {
            json.loads(line)["name"]
            for line in lines
            if json.loads(line)["kind"] == "gauge"
        }
        assert "proc.rss_peak_bytes" in gauge_names

    def test_started_at_stamped_into_report_meta(
        self, placed_file, tmp_path, capsys
    ):
        metrics_path = tmp_path / "metrics.json"
        assert main(["drc", str(placed_file), "--metrics-out", str(metrics_path)]) == 0
        capsys.readouterr()
        report = RunReport.from_json(metrics_path.read_text())
        stamp = report.meta["started_at"]
        parsed = datetime.fromisoformat(stamp)
        assert parsed.tzinfo is not None  # explicit UTC offset

    def test_live_renders_progress_to_stderr(self, placed_file, capsys):
        assert main(["drc", str(placed_file), "--live"]) == 0
        captured = capsys.readouterr()
        assert "ev " in captured.err  # the live status line painted

    def test_events_out_missing_dir_fails_fast(self, placed_file, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "drc",
                    str(placed_file),
                    "--events-out",
                    str(tmp_path / "no" / "such" / "dir" / "e.jsonl"),
                ]
            )


class TestCliPerfFlight:
    def _write_run(self, tmp_path):
        report = _traced_report()
        path = tmp_path / "metrics.json"
        path.write_text(report.to_json())
        return path

    def test_renders_html(self, tmp_path, capsys):
        report_path = self._write_run(tmp_path)
        events_path = tmp_path / "events.jsonl"
        events_path.write_text(
            "\n".join(json.dumps(e) for e in _events()) + "\n"
        )
        out = tmp_path / "flight.html"
        code = main(
            [
                "perf",
                "flight",
                str(report_path),
                "--events",
                str(events_path),
                "--store",
                str(tmp_path / "empty-history.jsonl"),
                "-o",
                str(out),
            ]
        )
        assert code == 0
        assert f"wrote {out}" in capsys.readouterr().out
        html = out.read_text()
        assert "Span tree" in html
        assert "Event timeline" in html

    def test_history_drives_verdict(self, tmp_path, capsys):
        report_path = self._write_run(tmp_path)
        store = tmp_path / "history.jsonl"
        assert main(["perf", "record", str(report_path), "--store", str(store)]) == 0
        out = tmp_path / "flight.html"
        code = main(
            ["perf", "flight", str(report_path), "--store", str(store), "-o", str(out)]
        )
        assert code == 0
        capsys.readouterr()
        html = out.read_text()
        assert "Recent history" in html
        assert "Regression verdict" in html

    def test_malformed_event_lines_skipped(self, tmp_path, capsys):
        report_path = self._write_run(tmp_path)
        events_path = tmp_path / "events.jsonl"
        good = json.dumps(_events()[0])
        events_path.write_text(f"{good}\nnot json\n{{\"seq\": -1}}\n")
        out = tmp_path / "flight.html"
        code = main(
            [
                "perf",
                "flight",
                str(report_path),
                "--events",
                str(events_path),
                "--store",
                str(tmp_path / "empty.jsonl"),
                "-o",
                str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "skipped 2 malformed event line(s)" in captured.err
        assert "1 event(s)" in out.read_text()

    def test_missing_report_fails(self, tmp_path, capsys):
        code = main(["perf", "flight", str(tmp_path / "nope.json")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err
