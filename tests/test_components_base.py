"""Unit tests for the Component base class contract."""

import math

import pytest

from repro.components import Component, FilmCapacitorX2, Pad, cm_choke_3w
from repro.geometry import Placement2D, Vec2


class TestValidation:
    def test_bad_footprint_rejected(self):
        with pytest.raises(ValueError):
            FilmCapacitorX2(footprint_w=0.0)

    def test_bad_height_rejected(self):
        with pytest.raises(ValueError):
            FilmCapacitorX2(body_height=-1e-3)

    def test_base_without_field_model_raises(self):
        plain = Component("BARE", 5e-3, 5e-3, 2e-3)
        with pytest.raises(NotImplementedError):
            _ = plain.current_path


class TestGeometryAccessors:
    def test_footprint_rect_centred(self, x2_cap):
        r = x2_cap.footprint_rect_local()
        assert r.center().is_close(Vec2.zero())
        assert r.width == pytest.approx(x2_cap.footprint_w)

    def test_footprint_area(self, x2_cap):
        assert x2_cap.footprint_area() == pytest.approx(
            x2_cap.footprint_w * x2_cap.footprint_h
        )

    def test_max_extent_is_diagonal(self, x2_cap):
        assert x2_cap.max_extent() == pytest.approx(
            math.hypot(x2_cap.footprint_w, x2_cap.footprint_h)
        )

    def test_pad_lookup(self, x2_cap):
        assert x2_cap.pad_position("1").x < 0.0
        with pytest.raises(KeyError):
            x2_cap.pad_position("nope")


class TestFieldAccessors:
    def test_current_path_cached(self, x2_cap):
        assert x2_cap.current_path is x2_cap.current_path

    def test_self_inductance_positive(self, x2_cap):
        assert x2_cap.self_inductance > 0.0

    def test_axis_is_unit(self, x2_cap):
        assert x2_cap.magnetic_axis_local().norm() == pytest.approx(1.0)

    def test_world_axis_rotates(self, x2_cap):
        a0 = x2_cap.magnetic_axis_world(Placement2D.at(0, 0, 0))
        a90 = x2_cap.magnetic_axis_world(Placement2D.at(0, 0, 90))
        assert abs(a0.dot(a90)) < 1e-9

    def test_placed_path_translated(self, x2_cap):
        p = Placement2D.at(0.05, 0.02, 0)
        path = x2_cap.placed_current_path(p)
        c = path.centroid()
        assert c.x == pytest.approx(0.05, abs=1e-6)
        assert c.y == pytest.approx(0.02, abs=1e-6)

    def test_inplane_flag(self, x2_cap):
        assert x2_cap.has_inplane_axis()

    def test_decoupling_residual_inplane_is_zero(self, x2_cap):
        assert x2_cap.decoupling_residual == pytest.approx(0.0, abs=1e-6)

    def test_decoupling_residual_cm_choke(self):
        assert cm_choke_3w().decoupling_residual == pytest.approx(0.6)


class TestPad:
    def test_pad_fields(self):
        pad = Pad("A", Vec2(1e-3, 0.0))
        assert pad.name == "A"
        assert pad.position.x == pytest.approx(1e-3)
