"""Dashboard, /stats, run-correlation ids and queue-wait telemetry."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import is_run_id
from repro.service import EmiService, ServiceConfig

SMALL_BOARD = """EMIPLACE 1
TITLE dashboard test board
BOARD 0 GROUND 1
  OUTLINE 0,0 70,0 70,50 0,50
END
COMP CX1 TYPE FilmCapacitorX2 PN CX1-X2 SIZE 18x8x15
COMP LF1 TYPE BobbinChoke PN LF1-CH SIZE 12x10x12
COMP Q1 TYPE PowerMosfet PN Q1-DPAK SIZE 10x9x2.3
NET VIN CX1.1 LF1.1
NET VBUS LF1.2 Q1.D
RULE CLEAR * * 0.5
"""


def request_raw(url, method="GET", payload=None, timeout=30):
    """(status, body bytes, headers) without raising on 4xx/5xx."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def wait_terminal(base_url, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, body, _ = request_raw(f"{base_url}/jobs/{job_id}")
        snap = json.loads(body)
        if snap["state"] in ("succeeded", "failed", "cancelled"):
            return snap
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not reach a terminal state")


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("svc-dash")
    config = ServiceConfig(
        port=0,
        pool_workers=2,
        data_dir=root / "data",
        cache_dir=None,
        job_timeout_s=60.0,
    )
    svc = EmiService(config)
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture(scope="module")
def finished_job(service):
    """One board job run to completion (shared by the read-only tests)."""
    status, body, headers = request_raw(
        f"{service.url}/jobs", method="POST", payload={"board": SMALL_BOARD}
    )
    assert status == 202
    snap = json.loads(body)
    final = wait_terminal(service.url, snap["id"])
    assert final["state"] == "succeeded"
    return snap, final, headers


class TestRunIds:
    def test_submission_mints_a_run_id(self, finished_job):
        snap, _, headers = finished_job
        assert is_run_id(snap["run_id"])
        assert headers.get("X-Repro-Run-Id") == snap["run_id"]

    def test_snapshot_carries_header_and_same_id(self, service, finished_job):
        snap, _, _ = finished_job
        _, body, headers = request_raw(f"{service.url}/jobs/{snap['id']}")
        assert headers.get("X-Repro-Run-Id") == snap["run_id"]
        assert json.loads(body)["run_id"] == snap["run_id"]

    def test_run_report_meta_matches(self, service, finished_job):
        snap, _, _ = finished_job
        _, body, _ = request_raw(
            f"{service.url}/jobs/{snap['id']}/artifacts/run_report.json"
        )
        assert json.loads(body)["meta"]["run_id"] == snap["run_id"]

    def test_every_event_carries_the_run_id(self, service, finished_job):
        snap, _, _ = finished_job
        _, body, _ = request_raw(
            f"{service.url}/jobs/{snap['id']}/artifacts/events.jsonl"
        )
        lines = [json.loads(l) for l in body.decode().splitlines() if l.strip()]
        assert lines
        assert all(event.get("run_id") == snap["run_id"] for event in lines)

    def test_distinct_jobs_get_distinct_ids(self, service, finished_job):
        snap, _, _ = finished_job
        status, body, _ = request_raw(
            f"{service.url}/jobs", method="POST", payload={"board": SMALL_BOARD}
        )
        assert status == 202
        other = json.loads(body)
        wait_terminal(service.url, other["id"])
        assert other["run_id"] != snap["run_id"]


class TestQueueWait:
    def test_snapshot_has_queued_at_and_queue_wait(self, finished_job):
        _, final, _ = finished_job
        assert final["queued_at"] == final["submitted_at"]
        assert final["queue_wait_s"] is not None
        assert final["queue_wait_s"] >= 0.0

    def test_gauge_and_histogram_recorded(self, service, finished_job):
        metrics = service.manager.metrics
        assert metrics.gauge("service.job_queue_wait_s") >= 0.0
        summaries = metrics.histogram_summaries()
        assert summaries["service.queue_wait_seconds"]["count"] >= 1
        assert summaries["service.job_latency_seconds"]["count"] >= 1


class TestStats:
    def test_payload_shape(self, service, finished_job):
        _, body, _ = request_raw(f"{service.url}/stats")
        stats = json.loads(body)
        assert set(stats) >= {
            "counters",
            "gauges",
            "histograms",
            "cache",
            "jobs",
            "jobs_total",
        }
        assert stats["counters"]["service.jobs_completed"] >= 1
        assert stats["jobs_total"] >= 1
        assert stats["jobs"][0]["id"]  # newest first, snapshots inline

    def test_latency_histogram_is_chartable(self, service, finished_job):
        _, body, _ = request_raw(f"{service.url}/stats")
        hist = json.loads(body)["histograms"]["service.job_latency_seconds"]
        assert hist["count"] >= 1
        assert hist["p50"] > 0.0
        assert hist["buckets"][-1][0] == "+Inf"
        cumulative = [n for _, n in hist["buckets"]]
        assert cumulative == sorted(cumulative)

    def test_cache_ratio_none_without_lookups(self, service):
        _, body, _ = request_raw(f"{service.url}/stats")
        cache = json.loads(body)["cache"]
        lookups = cache["hits"] + cache["misses"]
        if lookups == 0:
            assert cache["hit_ratio"] is None
        else:
            assert 0.0 <= cache["hit_ratio"] <= 1.0


class TestDashboard:
    def test_served_as_html(self, service, finished_job):
        status, body, headers = request_raw(f"{service.url}/dashboard")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        html = body.decode()
        assert html.startswith("<!DOCTYPE html>")

    def test_self_contained(self, service, finished_job):
        _, body, _ = request_raw(f"{service.url}/dashboard")
        html = body.decode()
        for marker in ('src="http', "href=\"http", "@import", "cdn."):
            assert marker not in html

    def test_bootstrap_carries_live_percentiles(self, service, finished_job):
        _, body, _ = request_raw(f"{service.url}/dashboard")
        html = body.decode()
        start = html.index('<script id="bootstrap"')
        start = html.index(">", start) + 1
        end = html.index("</script>", start)
        bootstrap = json.loads(html[start:end].replace("<\\/", "</"))
        hist = bootstrap["histograms"]["service.job_latency_seconds"]
        assert hist["p50"] > 0.0 and hist["p95"] > 0.0 and hist["p99"] > 0.0

    def test_metrics_exposes_histogram_families(self, service, finished_job):
        _, body, _ = request_raw(f"{service.url}/metrics")
        text = body.decode()
        assert "service_job_latency_seconds_bucket" in text
        assert 'le="+Inf"' in text
        assert "service_queue_wait_seconds_count" in text
