"""Unit tests for the diagnostic vocabulary and the rule registry."""

import json

import pytest

from repro.check import CheckReport, Diagnostic, Severity, finding, rule_specs, spec_for


class TestSeverity:
    def test_ordering_matches_exit_codes(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert int(Severity.INFO) == 0
        assert int(Severity.WARNING) == 1
        assert int(Severity.ERROR) == 2

    def test_parse_case_insensitive(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse("Warning") is Severity.WARNING
        assert Severity.parse("INFO") is Severity.INFO

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestDiagnostic:
    def test_render_includes_code_obj_and_hint(self):
        diag = Diagnostic(
            "NET001",
            Severity.ERROR,
            "node 'sw' floats",
            obj="circuit/node:sw",
            hint="ground it",
        )
        text = diag.render()
        assert "ERROR" in text
        assert "NET001" in text
        assert "circuit/node:sw" in text
        assert "(hint: ground it)" in text

    def test_render_without_obj_or_hint(self):
        text = Diagnostic("CPL001", Severity.WARNING, "bad k").render()
        assert "CPL001: bad k" in text
        assert "hint" not in text

    def test_to_dict_omits_empty_fields(self):
        d = Diagnostic("NET002", Severity.WARNING, "dangling").to_dict()
        assert d == {"code": "NET002", "severity": "warning", "message": "dangling"}

    def test_frozen(self):
        diag = Diagnostic("NET001", Severity.ERROR, "x")
        with pytest.raises(AttributeError):
            diag.code = "NET002"


def _report(*severities: Severity) -> CheckReport:
    report = CheckReport(subject="unit")
    report.extend(
        [Diagnostic(f"NET00{i + 1}", sev, f"m{i}") for i, sev in enumerate(severities)],
        "netlist",
    )
    return report


class TestCheckReport:
    def test_empty_report_is_clean(self):
        report = CheckReport()
        assert report.is_clean()
        assert report.max_severity is Severity.INFO
        assert report.exit_code() == 0
        assert len(report) == 0

    def test_max_severity_and_counts(self):
        report = _report(Severity.WARNING, Severity.ERROR, Severity.ERROR)
        assert report.max_severity is Severity.ERROR
        assert report.count(Severity.ERROR) == 2
        assert report.count(Severity.WARNING) == 1
        assert len(report.errors()) == 2
        assert len(report.warnings()) == 1
        assert not report.is_clean()

    def test_exit_code_gated_by_fail_on(self):
        warn_only = _report(Severity.WARNING)
        assert warn_only.exit_code(Severity.WARNING) == 1
        assert warn_only.exit_code(Severity.ERROR) == 0
        errors = _report(Severity.ERROR)
        assert errors.exit_code(Severity.ERROR) == 2
        assert errors.exit_code(Severity.WARNING) == 2

    def test_codes_and_by_code(self):
        report = _report(Severity.WARNING, Severity.ERROR)
        assert report.codes() == {"NET001", "NET002"}
        assert [d.message for d in report.by_code("NET002")] == ["m1"]

    def test_extend_records_each_analyzer_once(self):
        report = CheckReport()
        report.extend([], "netlist")
        report.extend([], "netlist")
        report.extend([], "coupling")
        assert report.analyzers == ["netlist", "coupling"]

    def test_text_lists_every_finding(self):
        report = _report(Severity.WARNING, Severity.ERROR)
        text = report.text()
        assert text.startswith("check: unit")
        assert "NET001" in text and "NET002" in text
        assert "1 error(s), 1 warning(s)" in text

    def test_json_roundtrip_schema(self):
        report = _report(Severity.ERROR)
        data = json.loads(report.to_json())
        assert data["schema"] == "repro-check-report/1"
        assert data["max_severity"] == "error"
        assert data["counts"] == {"error": 1, "warning": 0, "info": 0}
        assert data["diagnostics"][0]["code"] == "NET001"

    def test_iteration(self):
        report = _report(Severity.WARNING, Severity.ERROR)
        assert [d.code for d in report] == ["NET001", "NET002"]


class TestRegistry:
    def test_catalogue_is_consistent(self):
        specs = rule_specs()
        assert len(specs) >= 15
        codes = [s.code for s in specs]
        assert len(codes) == len(set(codes)), "rule codes must be unique"
        for spec in specs:
            assert spec.code[:3] in {"NET", "CPL", "PLC", "CMP"}
            assert spec.code[3:].isdigit()
            assert spec.title and spec.rationale
            assert spec.category in {"netlist", "coupling", "placement", "component"}

    def test_every_category_present(self):
        categories = {s.category for s in rule_specs()}
        assert categories == {"netlist", "coupling", "placement", "component"}

    def test_spec_for_known_and_unknown(self):
        spec = spec_for("NET001")
        assert spec.severity is Severity.ERROR
        with pytest.raises(KeyError):
            spec_for("XXX999")

    def test_finding_uses_registered_severity(self):
        diag = finding("NET001", "boom", obj="circuit/node:x")
        assert diag.severity is Severity.ERROR
        assert diag.code == "NET001"

    def test_finding_severity_override(self):
        diag = finding("NET001", "soft", severity=Severity.INFO)
        assert diag.severity is Severity.INFO

    def test_finding_rejects_unregistered_code(self):
        with pytest.raises(KeyError):
            finding("NET999", "nope")
