"""Property-based tests for the PEEC engine (hypothesis).

Physical invariants: reciprocity, rigid-motion invariance, closed-form vs
quadrature agreement, |k| bounds, and sign antisymmetry under current
reversal.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Transform3D, Vec3
from repro.peec import (
    Filament,
    coupling_factor,
    loop_self_inductance,
    mutual_inductance,
    mutual_inductance_parallel,
    mutual_inductance_paths_fast,
    neumann_mutual_inductance,
    ring_path,
    self_inductance_bar,
)

mm = st.floats(min_value=-0.05, max_value=0.05, allow_nan=False)
length_mm = st.floats(min_value=0.002, max_value=0.03, allow_nan=False)
angle = st.floats(min_value=0.0, max_value=2 * math.pi, allow_nan=False)


@st.composite
def filaments(draw):
    start = Vec3(draw(mm), draw(mm), draw(mm))
    direction = Vec3(draw(mm) + 0.06, draw(mm), draw(mm))  # never zero length
    return Filament(start, start + direction)


@st.composite
def separated_filament_pairs(draw):
    f1 = draw(filaments())
    offset = Vec3(draw(mm), draw(mm) + 0.12, draw(mm))  # min ~7 cm apart
    start = f1.end + offset
    direction = Vec3(draw(mm), draw(mm) + 0.06, draw(mm))  # never zero length
    return f1, Filament(start, start + direction)


class TestFilamentProperties:
    @settings(max_examples=40)
    @given(separated_filament_pairs())
    def test_reciprocity(self, pair):
        f1, f2 = pair
        assert math.isclose(
            mutual_inductance(f1, f2), mutual_inductance(f2, f1), rel_tol=1e-6, abs_tol=1e-18
        )

    @settings(max_examples=40)
    @given(separated_filament_pairs())
    def test_reversal_antisymmetry(self, pair):
        f1, f2 = pair
        m = mutual_inductance(f1, f2)
        m_rev = mutual_inductance(f1, f2.reversed())
        assert math.isclose(m, -m_rev, rel_tol=1e-6, abs_tol=1e-18)

    @settings(max_examples=30)
    @given(filaments(), st.floats(min_value=0.01, max_value=0.08), length_mm)
    def test_parallel_closed_form_matches_quadrature(self, f1, gap, l2):
        f2 = Filament(
            f1.start + Vec3(0.0, gap, 0.0),
            f1.start + Vec3(0.0, gap, 0.0) + f1.direction * l2,
        )
        # order=20 leaves ~1e-4 quadrature error on strongly length-mismatched
        # pairs (e.g. 52 mm vs 4 mm at 10 mm gap), right at the tolerance.
        closed = mutual_inductance_parallel(f1, f2)
        quad = neumann_mutual_inductance(f1, f2, order=40)
        assert math.isclose(closed, quad, rel_tol=1e-4, abs_tol=1e-16)

    @settings(max_examples=30)
    @given(length_mm, st.floats(min_value=1e-4, max_value=3e-3))
    def test_self_inductance_positive_and_monotone(self, length, width):
        l1 = self_inductance_bar(length, width, width)
        l2 = self_inductance_bar(length * 2, width, width)
        assert 0.0 < l1 < l2


class TestPathProperties:
    @settings(max_examples=25)
    @given(
        st.floats(min_value=0.002, max_value=0.01),
        st.floats(min_value=0.002, max_value=0.01),
        st.floats(min_value=0.025, max_value=0.08),
        angle,
    )
    def test_coupling_factor_bounds(self, r1, r2, distance, theta):
        a = ring_path(Vec3.zero(), r1, segments=8)
        b = ring_path(
            Vec3(distance * math.cos(theta), distance * math.sin(theta), 0.0),
            r2,
            segments=8,
        )
        k = coupling_factor(a, b)
        assert -1.0 <= k <= 1.0

    @settings(max_examples=25)
    @given(
        st.floats(min_value=0.003, max_value=0.008),
        st.floats(min_value=0.03, max_value=0.07),
        mm,
        mm,
        angle,
    )
    def test_rigid_motion_invariance(self, radius, distance, dx, dy, rot):
        a = ring_path(Vec3.zero(), radius, segments=8, axis="x")
        b = ring_path(Vec3(distance, 0.0, 0.0), radius, segments=8, axis="x")
        m0 = mutual_inductance_paths_fast(a, b)
        t = Transform3D(Vec3(dx, dy, 0.01), rotation_z_rad=rot)
        m1 = mutual_inductance_paths_fast(a.transformed(t), b.transformed(t))
        assert math.isclose(m0, m1, rel_tol=1e-6, abs_tol=1e-18)

    @settings(max_examples=20)
    @given(st.floats(min_value=0.003, max_value=0.01), st.integers(min_value=6, max_value=20))
    def test_self_inductance_positive_any_discretisation(self, radius, segments):
        ring = ring_path(Vec3.zero(), radius, segments=segments)
        assert loop_self_inductance(ring) > 0.0

    @settings(max_examples=20)
    @given(
        st.floats(min_value=0.003, max_value=0.008),
        st.floats(min_value=0.03, max_value=0.08),
        st.floats(min_value=1.0, max_value=5.0),
    )
    def test_weight_bilinearity(self, radius, distance, w):
        a = ring_path(Vec3.zero(), radius, segments=8)
        b = ring_path(Vec3(distance, 0, 0), radius, segments=8)
        b_weighted = b.scaled_weights(w)
        m_unit = mutual_inductance_paths_fast(a, b)
        m_scaled = mutual_inductance_paths_fast(a, b_weighted)
        assert math.isclose(m_scaled, w * m_unit, rel_tol=1e-9, abs_tol=1e-20)
