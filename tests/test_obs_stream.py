"""Integration tests for the streaming obs layer.

Covers the tracer-to-bus emission contract, the threading contract
(single-threaded span stack, lock-protected counters/gauges), the
resource sampler, worker chunk events from the parallel executor, and
the null-tracer guarantee that none of the machinery runs when tracing
is off.
"""

import threading
import time

import pytest

from repro import obs
from repro.obs import (
    EventBus,
    EventRingBuffer,
    NullTracer,
    Tracer,
    disable,
    enable,
)
from repro.obs.sampler import ResourceSampler, rss_bytes
from repro.parallel import CouplingExecutor


@pytest.fixture(autouse=True)
def _restore_global_tracer():
    yield
    obs.disable()


def _ring_bus():
    bus = EventBus()
    ring = bus.subscribe(EventRingBuffer(capacity=8192))
    return bus, ring


class TestTracerBusEmission:
    def test_span_open_close_events_with_paths(self):
        bus, ring = _ring_bus()
        tracer = Tracer(bus=bus)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        events = ring.drain()
        opens = [(e.name, e.path) for e in events if e.kind == "span_open"]
        closes = [(e.name, e.path) for e in events if e.kind == "span_close"]
        assert opens == [("a", "run/a"), ("b", "run/a/b")]
        # Inner span closes first; paths match the open-time paths.
        assert closes == [("b", "run/a/b"), ("a", "run/a")]

    def test_span_close_carries_elapsed(self):
        bus, ring = _ring_bus()
        tracer = Tracer(bus=bus)
        with tracer.span("timed"):
            time.sleep(0.005)
        close = [e for e in ring.drain() if e.kind == "span_close"][0]
        assert close.value is not None
        assert close.value >= 0.005

    def test_counter_event_has_increment_and_path(self):
        bus, ring = _ring_bus()
        tracer = Tracer(bus=bus)
        with tracer.span("work"):
            tracer.count("items", 3)
        event = [e for e in ring.drain() if e.kind == "counter"][0]
        assert event.name == "items"
        assert event.value == 3.0
        assert event.path == "run/work"

    def test_gauge_event(self):
        bus, ring = _ring_bus()
        Tracer(bus=bus).gauge("g", 1.5)
        event = [e for e in ring.drain() if e.kind == "gauge"][0]
        assert (event.name, event.value, event.path) == ("g", 1.5, "")

    def test_stage_start_done(self):
        bus, ring = _ring_bus()
        tracer = Tracer(bus=bus)
        with tracer.stage("rules", {"layout": "baseline"}):
            pass
        stages = [e for e in ring.drain() if e.kind == "stage"]
        assert [e.attrs["status"] for e in stages] == ["start", "done"]
        assert stages[0].attrs["layout"] == "baseline"

    def test_stage_error_records_exception_type(self):
        bus, ring = _ring_bus()
        tracer = Tracer(bus=bus)
        with pytest.raises(ValueError):
            with tracer.stage("rules"):
                raise ValueError("boom")
        done = [e for e in ring.drain() if e.kind == "stage"][-1]
        assert done.attrs["status"] == "error"
        assert done.attrs["error_type"] == "ValueError"

    def test_stage_records_nothing_in_profile_tree(self):
        bus, _ = _ring_bus()
        tracer = Tracer(bus=bus)
        with tracer.stage("rules"):
            pass
        assert tracer.root.children == {}

    def test_no_bus_no_events_machinery(self):
        tracer = Tracer()
        assert tracer.bus is None
        handle1 = tracer.stage("a")
        handle2 = tracer.stage("b")
        assert handle1 is handle2  # shared null stage handle
        with tracer.span("x"):
            tracer.count("c")
            tracer.gauge("g", 1.0)  # must not raise without a bus


class TestThreadingContract:
    def test_span_from_foreign_thread_raises(self):
        tracer = Tracer()
        caught: list[BaseException] = []

        def enter():
            try:
                with tracer.span("forbidden"):
                    pass
            except BaseException as exc:
                caught.append(exc)

        thread = threading.Thread(target=enter)
        thread.start()
        thread.join()
        assert len(caught) == 1
        assert isinstance(caught[0], RuntimeError)
        assert "single-threaded" in str(caught[0])
        # The tree is untouched: no half-entered span.
        assert tracer.root.children == {}

    def test_gauges_and_counters_from_foreign_thread(self):
        tracer = Tracer()
        errors: list[BaseException] = []

        def write():
            try:
                for i in range(500):
                    tracer.gauge("thread.g", float(i))
                    tracer.count("thread.c")
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=write) for _ in range(3)]
        for t in threads:
            t.start()
        with tracer.span("main.work"):
            for _ in range(500):
                tracer.count("main.c")
        for t in threads:
            t.join()
        assert errors == []
        report = tracer.report()
        assert report.totals()["thread.c"] == 1500
        assert report.totals()["main.c"] == 500
        assert report.gauges["thread.g"] == 499.0


class TestNullTracerParity:
    def test_public_api_matches_tracer(self):
        def public_methods(cls):
            return {
                name
                for name in dir(cls)
                if not name.startswith("_") and callable(getattr(cls, name))
            }

        assert public_methods(NullTracer) == public_methods(Tracer)

    def test_null_stage_is_shared_noop(self):
        null = NullTracer()
        assert null.stage("a") is null.stage("b")
        with null.stage("x", {"k": 1}):
            pass

    def test_null_bus_is_none_and_report_empty(self):
        null = NullTracer()
        assert null.bus is None
        assert null.elapsed_s() == 0.0
        report = null.report(extra_meta={"status": "ok"})
        assert report.meta == {"status": "ok"}
        assert report.totals() == {}
        assert report.gauges == {}

    def test_disabled_run_emits_no_events_and_no_threads(self):
        bus, ring = _ring_bus()
        null = NullTracer()
        with null.span("x"), null.stage("y"):
            null.count("c")
            null.gauge("g", 1.0)
        after = {t.name for t in threading.enumerate()}
        assert ring.drain() == []  # the bus never saw anything
        # No sampler or chunk-drainer threads appeared.
        assert not any(
            name.startswith(("repro-obs", "repro-chunk")) for name in after
        )


class TestResourceSampler:
    def test_rss_bytes_positive_on_this_platform(self):
        assert rss_bytes() > 0

    def test_sample_once_sets_gauges(self):
        tracer = Tracer()
        sampler = ResourceSampler(tracer, period_s=10.0)
        values = sampler.sample_once()
        assert values["proc.rss_bytes"] > 0
        assert values["proc.rss_peak_bytes"] >= values["proc.rss_bytes"]
        assert "proc.cpu_pct" in values
        for name in ("proc.rss_bytes", "proc.rss_peak_bytes", "proc.cpu_pct"):
            assert name in tracer.gauges

    def test_peak_is_monotone(self):
        sampler = ResourceSampler(Tracer(), period_s=10.0)
        first = sampler.sample_once()["proc.rss_peak_bytes"]
        second = sampler.sample_once()["proc.rss_peak_bytes"]
        assert second >= first

    def test_start_stop_lifecycle(self):
        tracer = Tracer()
        sampler = ResourceSampler(tracer, period_s=0.01)
        assert not sampler.running
        sampler.start()
        sampler.start()  # idempotent
        assert sampler.running
        time.sleep(0.05)
        sampler.stop()
        sampler.stop()  # idempotent
        assert not sampler.running
        assert sampler.samples >= 1
        assert tracer.gauges["proc.rss_peak_bytes"] > 0

    def test_stop_takes_final_sample_even_subperiod(self):
        tracer = Tracer()
        sampler = ResourceSampler(tracer, period_s=60.0)
        sampler.start()
        sampler.stop()
        assert sampler.samples >= 1
        assert "proc.rss_bytes" in tracer.gauges

    def test_context_manager(self):
        tracer = Tracer()
        with ResourceSampler(tracer, period_s=60.0) as sampler:
            assert sampler.running
        assert not sampler.running

    def test_gauge_events_reach_bus_through_tracer(self):
        bus, ring = _ring_bus()
        tracer = Tracer(bus=bus)
        ResourceSampler(tracer, period_s=60.0, bus=bus).sample_once()
        gauges = [e for e in ring.drain() if e.kind == "gauge"]
        names = {e.name for e in gauges}
        assert {"proc.rss_bytes", "proc.rss_peak_bytes", "proc.cpu_pct"} <= names
        # Exactly once each: not duplicated by a direct bus publish.
        assert len(gauges) == 3

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError, match="period_s"):
            ResourceSampler(Tracer(), period_s=0.0)


class TestFlowStageEvents:
    def test_precheck_emits_check_stage(self):
        from repro.converters import BuckConverterDesign
        from repro.core import EmiDesignFlow

        bus, ring = _ring_bus()
        enable(bus=bus)
        try:
            EmiDesignFlow(BuckConverterDesign()).run_precheck()
        finally:
            disable()
        stages = [e for e in ring.drain() if e.kind == "stage"]
        assert [(e.name, e.attrs["status"]) for e in stages] == [
            ("check", "start"),
            ("check", "done"),
        ]


def _square(x):
    return x * x


class TestExecutorChunkEvents:
    def test_chunk_events_published_with_bus(self):
        bus, ring = _ring_bus()
        enable(bus=bus)
        try:
            with CouplingExecutor(workers=2, chunk_size=5) as ex:
                result = ex.map(_square, range(20))
        finally:
            disable()
        assert result == [x * x for x in range(20)]
        logs = [e for e in ring.drain() if e.kind == "log"]
        starts = [e for e in logs if e.name == "parallel.chunk_start"]
        dones = [e for e in logs if e.name == "parallel.chunk_done"]
        map_starts = [e for e in logs if e.name == "parallel.map_start"]
        assert len(map_starts) == 1
        assert map_starts[0].attrs == {"chunks": 4, "tasks": 20}
        # Every chunk marked on both sides, no losses.
        assert len(starts) == 4
        assert len(dones) == 4
        assert sorted(e.attrs["chunk"] for e in dones) == [0, 1, 2, 3]
        for event in starts + dones:
            assert event.attrs["items"] == 5
            assert event.attrs["pid"] > 0
            assert event.attrs["worker_ts"] > 0

    def test_no_bus_means_no_log_events(self):
        bus, ring = _ring_bus()
        enable()  # traced but bus-less
        try:
            with CouplingExecutor(workers=2, chunk_size=5) as ex:
                ex.map(_square, range(20))
        finally:
            disable()
        assert ring.drain() == []

    def test_serial_map_never_streams(self):
        bus, ring = _ring_bus()
        enable(bus=bus)
        try:
            with CouplingExecutor(workers=1) as ex:
                ex.map(_square, range(10))
        finally:
            disable()
        logs = [e for e in ring.drain() if e.kind == "log"]
        assert logs == []
