"""Unit tests for partial inductances of filaments.

The closed forms are cross-validated against quadrature and against
textbook reference values, which is the foundation the whole coupling
prediction rests on.
"""

import math

import pytest

from repro.geometry import Transform3D, Vec3
from repro.peec import (
    MU0,
    Filament,
    mutual_inductance,
    mutual_inductance_parallel,
    neumann_mutual_inductance,
    self_inductance_bar,
)


def fil(x1, y1, z1, x2, y2, z2, **kw) -> Filament:
    return Filament(Vec3(x1, y1, z1), Vec3(x2, y2, z2), **kw)


class TestFilamentBasics:
    def test_length_direction_midpoint(self):
        f = fil(0, 0, 0, 0.03, 0.04, 0)
        assert f.length == pytest.approx(0.05)
        assert f.direction.is_close(Vec3(0.6, 0.8, 0.0))
        assert f.midpoint.is_close(Vec3(0.015, 0.02, 0.0))

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            fil(0, 0, 0, 0, 0, 0)

    def test_bad_cross_section_rejected(self):
        with pytest.raises(ValueError):
            fil(0, 0, 0, 1, 0, 0, width=0.0)

    def test_reversed(self):
        f = fil(0, 0, 0, 1, 0, 0)
        assert f.reversed().direction.is_close(Vec3(-1.0, 0.0, 0.0))

    def test_split_preserves_endpoints_and_length(self):
        f = fil(0, 0, 0, 0.01, 0.02, 0.03)
        pieces = f.split(4)
        assert len(pieces) == 4
        assert pieces[0].start.is_close(f.start)
        assert pieces[-1].end.is_close(f.end)
        assert sum(p.length for p in pieces) == pytest.approx(f.length)

    def test_split_invalid(self):
        with pytest.raises(ValueError):
            fil(0, 0, 0, 1, 0, 0).split(0)

    def test_transformed(self):
        f = fil(0.01, 0, 0, 0.02, 0, 0)
        t = Transform3D(Vec3(0, 0, 0.005), rotation_z_rad=math.pi / 2.0)
        g = f.transformed(t)
        assert g.start.is_close(Vec3(0.0, 0.01, 0.005), tol=1e-12)

    def test_mirrored_z(self):
        f = fil(0, 0, 0.001, 0.01, 0, 0.002).mirrored_z(0.0)
        assert f.start.z == pytest.approx(-0.001)
        assert f.end.z == pytest.approx(-0.002)


class TestSelfInductance:
    def test_ruehli_formula_value(self):
        # 10 mm x 1 mm x 35 um trace: compare with the formula directly.
        length, w, t = 0.01, 1e-3, 35e-6
        expected = (MU0 * length / (2 * math.pi)) * (
            math.log(2 * length / (w + t)) + 0.5 + 0.2235 * (w + t) / length
        )
        assert self_inductance_bar(length, w, t) == pytest.approx(expected)

    def test_magnitude_is_nanohenry_scale(self):
        # Classic rule of thumb: ~6-10 nH/cm for thin traces.
        value = self_inductance_bar(0.01, 1e-3, 35e-6)
        assert 4e-9 < value < 12e-9

    def test_grows_superlinearly_with_length(self):
        l1 = self_inductance_bar(0.01, 1e-3, 35e-6)
        l2 = self_inductance_bar(0.02, 1e-3, 35e-6)
        assert l2 > 2.0 * l1

    def test_stubby_bar_clamped_positive(self):
        assert self_inductance_bar(1e-4, 5e-3, 5e-3) > 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            self_inductance_bar(0.0, 1e-3, 1e-3)
        with pytest.raises(ValueError):
            self_inductance_bar(1e-2, -1e-3, 1e-3)


class TestParallelClosedForm:
    def test_matches_quadrature_offset_pair(self):
        f1 = fil(0, 0, 0, 0.02, 0, 0)
        f2 = fil(0.005, 0.004, 0, 0.018, 0.004, 0)
        closed = mutual_inductance_parallel(f1, f2)
        quad = neumann_mutual_inductance(f1, f2, order=24)
        assert closed == pytest.approx(quad, rel=1e-9)

    def test_antiparallel_is_negative(self):
        f1 = fil(0, 0, 0, 0.02, 0, 0)
        f2 = fil(0.018, 0.004, 0, 0.005, 0.004, 0)
        assert mutual_inductance_parallel(f1, f2) < 0.0

    def test_sign_antisymmetry(self):
        f1 = fil(0, 0, 0, 0.02, 0, 0)
        f2 = fil(0.0, 0.003, 0, 0.02, 0.003, 0)
        m_par = mutual_inductance_parallel(f1, f2)
        m_anti = mutual_inductance_parallel(f1, f2.reversed())
        assert m_par == pytest.approx(-m_anti)

    def test_axially_displaced_pair(self):
        f1 = fil(0, 0, 0, 0.02, 0, 0)
        f2 = fil(0.05, 0.004, 0, 0.08, 0.004, 0)
        closed = mutual_inductance_parallel(f1, f2)
        quad = neumann_mutual_inductance(f1, f2, order=24)
        assert closed == pytest.approx(quad, rel=1e-8)

    def test_non_parallel_rejected(self):
        f1 = fil(0, 0, 0, 0.02, 0, 0)
        f2 = fil(0, 0.01, 0, 0.02, 0.011, 0)
        with pytest.raises(ValueError):
            mutual_inductance_parallel(f1, f2)

    def test_reciprocity(self):
        f1 = fil(0, 0, 0, 0.02, 0, 0)
        f2 = fil(0.004, 0.006, 0.001, 0.016, 0.006, 0.001)
        assert mutual_inductance_parallel(f1, f2) == pytest.approx(
            mutual_inductance_parallel(f2, f1)
        )


class TestGeneralMutual:
    def test_perpendicular_is_zero(self):
        f1 = fil(0, 0, 0, 0.02, 0, 0)
        f2 = fil(0.01, 0.005, 0, 0.01, 0.025, 0)
        assert neumann_mutual_inductance(f1, f2) == 0.0
        assert mutual_inductance(f1, f2) == 0.0

    def test_skew_pair_angle_scaling(self):
        # M scales with cos(angle) between directions at fixed geometry scale.
        f1 = fil(0, 0, 0, 0.02, 0, 0)
        base = fil(0.0, 0.01, 0, 0.02, 0.01, 0)
        m0 = mutual_inductance(f1, base)
        rot = fil(0.0, 0.01, 0, 0.02 * math.cos(0.5), 0.01 + 0.02 * math.sin(0.5), 0)
        m1 = mutual_inductance(f1, rot)
        assert abs(m1) < abs(m0)

    def test_close_pair_subdivision_converges(self):
        f1 = fil(0, 0, 0, 0.05, 0, 0)
        f2 = fil(0.001, 0.002, 0.0005, 0.049, 0.0025, 0.0005)
        coarse = neumann_mutual_inductance(f1, f2, order=32)
        auto = mutual_inductance(f1, f2)
        assert auto == pytest.approx(coarse, rel=0.02)

    def test_decays_with_distance(self):
        f1 = fil(0, 0, 0, 0.02, 0, 0)
        prev = None
        for d in (0.005, 0.01, 0.02, 0.04):
            f2 = fil(0, d, 0, 0.02, d, 0)
            m = mutual_inductance(f1, f2)
            assert m > 0.0
            if prev is not None:
                assert m < prev
            prev = m

    def test_two_parallel_wires_textbook(self):
        # Two parallel 100 mm wires, 10 mm apart:
        # M = (mu0 l / 2 pi)(ln(l/d + sqrt(1+(l/d)^2)) - sqrt(1+(d/l)^2) + d/l)
        length, d = 0.1, 0.01
        f1 = fil(0, 0, 0, length, 0, 0)
        f2 = fil(0, d, 0, length, d, 0)
        ratio = length / d
        expected = (MU0 * length / (2 * math.pi)) * (
            math.log(ratio + math.sqrt(1 + ratio**2))
            - math.sqrt(1 + (d / length) ** 2)
            + d / length
        )
        assert mutual_inductance_parallel(f1, f2) == pytest.approx(expected, rel=1e-6)
