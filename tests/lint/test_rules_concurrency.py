"""One deliberately broken fixture per CON rule code, plus clean twins.

The fixtures mirror the real shapes in ``src/repro/obs`` — the whole
point of conlint is that these patterns were extracted from that code.
"""

from __future__ import annotations

import textwrap

from repro.lint import lint_sources


def run(source: str, label: str = "mod.py"):
    findings, _ = lint_sources({label: textwrap.dedent(source)})
    return findings


def codes_at(findings, code: str) -> list[int]:
    return [f.line for f in findings if f.code == code]


class TestCon001WriteOutsideLock:
    def test_unguarded_write_is_flagged(self):
        findings = run(
            """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n += 1

                def reset(self):
                    self._n = 0
            """
        )
        assert codes_at(findings, "CON001") == [13]

    def test_constructor_writes_are_exempt(self):
        findings = run(
            """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n += 1
            """
        )
        assert codes_at(findings, "CON001") == []

    def test_mutator_call_outside_lock_is_a_write(self):
        findings = run(
            """\
            import threading

            class Buffer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._events = []

                def push(self, event):
                    with self._lock:
                        self._events.append(event)

                def push_fast(self, event):
                    self._events.append(event)
            """
        )
        assert codes_at(findings, "CON001") == [13]

    def test_reads_outside_lock_are_not_flagged(self):
        # Lock-free reads of published-once state are a documented
        # pattern here; only writes race destructively.
        findings = run(
            """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._n += 1

                def peek(self):
                    return self._n
            """
        )
        assert codes_at(findings, "CON001") == []

    def test_class_without_locks_is_exempt(self):
        findings = run(
            """\
            class Plain:
                def __init__(self):
                    self._n = 0

                def bump(self):
                    self._n += 1
            """
        )
        assert codes_at(findings, "CON001") == []

    def test_disagreeing_guards_do_not_flag(self):
        # Locked writes under different locks: no single guard can be
        # inferred, so CON001 stays quiet (CON002 owns ordering).
        findings = run(
            """\
            import threading

            class Torn:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self._n = 0

                def via_a(self):
                    with self._a:
                        self._n += 1

                def via_b(self):
                    with self._b:
                        self._n += 1

                def bare(self):
                    self._n = 0
            """
        )
        assert codes_at(findings, "CON001") == []


class TestCon002LockOrder:
    def test_both_orders_deadlock(self):
        # The acceptance fixture: a deliberate lock-order inversion the
        # static pass must flag (the runtime sanitizer flags the same
        # shape in tests/test_lint_sanitizer.py).
        findings = run(
            """\
            import threading

            class TwoLocks:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """
        )
        assert codes_at(findings, "CON002") == [10, 15]

    def test_consistent_order_is_clean(self):
        findings = run(
            """\
            import threading

            class TwoLocks:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
            """
        )
        assert codes_at(findings, "CON002") == []

    def test_transitive_cycle(self):
        # a -> b and b -> c established, then c -> a closes the cycle.
        findings = run(
            """\
            import threading

            class ThreeLocks:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self._c = threading.Lock()

                def ab(self):
                    with self._a:
                        with self._b:
                            pass

                def bc(self):
                    with self._b:
                        with self._c:
                            pass

                def ca(self):
                    with self._c:
                        with self._a:
                            pass
            """
        )
        assert len(codes_at(findings, "CON002")) >= 1

    def test_nested_plain_lock_self_deadlock(self):
        findings = run(
            """\
            import threading

            class Recursive:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        )
        assert codes_at(findings, "CON002") == [9]

    def test_nested_rlock_is_clean(self):
        findings = run(
            """\
            import threading

            class Recursive:
                def __init__(self):
                    self._lock = threading.RLock()

                def work(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        )
        assert codes_at(findings, "CON002") == []

    def test_same_attr_name_in_two_classes_is_not_a_cycle(self):
        # Class A takes _x then _y; class B takes _y then _x — but they
        # are different locks, so there is no shared cycle.
        findings = run(
            """\
            import threading

            class First:
                def __init__(self):
                    self._x = threading.Lock()
                    self._y = threading.Lock()

                def go(self):
                    with self._x:
                        with self._y:
                            pass

            class Second:
                def __init__(self):
                    self._x = threading.Lock()
                    self._y = threading.Lock()

                def go(self):
                    with self._y:
                        with self._x:
                            pass
            """
        )
        assert codes_at(findings, "CON002") == []


class TestCon003PoolCaptures:
    def test_lock_into_submit(self):
        findings = run(
            """\
            import threading

            class Shipper:
                def __init__(self):
                    self._lock = threading.Lock()

                def run(self, pool, work):
                    pool.submit(work, self._lock)
            """
        )
        assert codes_at(findings, "CON003") == [8]

    def test_handle_into_initargs(self):
        findings = run(
            """\
            from concurrent.futures import ProcessPoolExecutor

            class Logger:
                def __init__(self, path):
                    self._handle = open(path, "a")

                def pool(self, init):
                    return ProcessPoolExecutor(
                        max_workers=2,
                        initializer=init,
                        initargs=(self._handle,),
                    )
            """
        )
        assert codes_at(findings, "CON003") == [11]

    def test_self_with_lock_into_thread_target(self):
        findings = run(
            """\
            import threading

            class Owner:
                def __init__(self):
                    self._lock = threading.Lock()

                def spawn(self, pool, work):
                    pool.submit(work, self)
            """
        )
        assert codes_at(findings, "CON003") == [8]

    def test_self_without_lock_or_handle_is_clean(self):
        findings = run(
            """\
            class Plain:
                def spawn(self, pool, work):
                    pool.submit(work, self)
            """
        )
        assert codes_at(findings, "CON003") == []

    def test_lambda_capturing_self_with_lock(self):
        findings = run(
            """\
            import threading

            class Owner:
                def __init__(self):
                    self._lock = threading.Lock()

                def spawn(self, pool):
                    pool.submit(lambda: self.work())
            """
        )
        assert codes_at(findings, "CON003") == [8]


class TestCon004DaemonThreads:
    def test_started_never_joined(self):
        findings = run(
            """\
            import threading

            class Sampler:
                def start(self):
                    self._thread = threading.Thread(target=self.run, daemon=True)
                    self._thread.start()
            """
        )
        assert codes_at(findings, "CON004") == [5]

    def test_join_path_is_clean(self):
        # The ResourceSampler shape: stop() hands the attribute off to a
        # local and joins it.
        findings = run(
            """\
            import threading

            class Sampler:
                def start(self):
                    self._thread = threading.Thread(target=self.run, daemon=True)
                    self._thread.start()

                def stop(self):
                    thread, self._thread = self._thread, None
                    if thread is not None:
                        thread.join()
            """
        )
        assert codes_at(findings, "CON004") == []

    def test_inline_daemon_thread_is_always_flagged(self):
        findings = run(
            """\
            import threading

            class FireAndForget:
                def poke(self, work):
                    threading.Thread(target=work, daemon=True).start()
            """
        )
        assert codes_at(findings, "CON004") == [5]

    def test_non_daemon_thread_is_clean(self):
        findings = run(
            """\
            import threading

            class Worker:
                def start(self):
                    self._thread = threading.Thread(target=self.run)
                    self._thread.start()
            """
        )
        assert codes_at(findings, "CON004") == []


class TestCon005CallbackUnderLock:
    def test_loop_over_subscribers_under_lock(self):
        findings = run(
            """\
            import threading

            class Bus:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._subs = []

                def publish(self, event):
                    with self._lock:
                        for sub in self._subs:
                            sub(event)
            """
        )
        assert codes_at(findings, "CON005") == [11]

    def test_snapshot_iteration_under_lock(self):
        findings = run(
            """\
            import threading

            class Bus:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._subs = []

                def publish(self, event):
                    with self._lock:
                        for sub in list(self._subs):
                            sub(event)
            """
        )
        assert codes_at(findings, "CON005") == [11]

    def test_subscript_callback_under_lock(self):
        findings = run(
            """\
            import threading

            class Bus:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._subs = []

                def first(self, event):
                    with self._lock:
                        self._subs[0](event)
            """
        )
        assert codes_at(findings, "CON005") == [10]

    def test_snapshot_then_call_outside_lock_is_clean(self):
        findings = run(
            """\
            import threading

            class Bus:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._subs = []

                def publish(self, event):
                    with self._lock:
                        subs = list(self._subs)
                    for sub in subs:
                        sub(event)
            """
        )
        assert codes_at(findings, "CON005") == []

    def test_inline_suppression(self):
        findings = run(
            """\
            import threading

            class Bus:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._subs = []

                def publish(self, event):
                    with self._lock:
                        for sub in self._subs:
                            sub(event)  # physlint: disable=CON005
            """
        )
        assert codes_at(findings, "CON005") == []


class TestRealShapesStayClean:
    def test_event_bus_like_class_with_discipline(self):
        # EventBus distilled: everything under one lock, snapshot for
        # close, join path for nothing (no threads).  Only the
        # deliberate under-lock delivery shows up.
        findings = run(
            """\
            import threading

            class MiniBus:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._subs = []
                    self._closed = False
                    self.errors = 0

                def subscribe(self, sub):
                    with self._lock:
                        self._subs.append(sub)

                def close(self):
                    with self._lock:
                        if self._closed:
                            return
                        self._closed = True
                        subs = list(self._subs)
                    return subs
            """
        )
        assert [f.code for f in findings if f.code.startswith("CON")] == []
