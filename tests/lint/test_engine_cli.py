"""The physlint engine, the ``lint-src`` CLI, and the acceptance fixtures.

Two acceptance criteria from the subsystem's issue live here:

* a fixture module containing a mixed-unit add (m + mm), a float ``==``
  and an unguarded division reports exactly UNT001, NUM001 and NUM002
  and exits nonzero;
* the shipped tree itself, checked against the checked-in baseline,
  exits 0.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    DEFAULT_BASELINE_PATH,
    Baseline,
    default_target,
    lint_paths,
    lint_rule_specs,
)
from repro.cli import build_parser, main

ACCEPTANCE_FIXTURE = textwrap.dedent(
    """\
    def emd(board_gap: Meters, clearance: Millimeters) -> Meters:
        return board_gap + clearance


    def is_resonant(freq: float) -> bool:
        return freq == 1e6


    def scale(num: float, den: float) -> float:
        return num / den
    """
)


@pytest.fixture
def fixture_file(tmp_path):
    path = tmp_path / "broken_module.py"
    path.write_text(ACCEPTANCE_FIXTURE)
    return path


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["lint-src"])
        assert args.paths == []
        assert args.format == "text"
        assert args.fail_on == "warning"
        assert not args.no_baseline

    def test_flags(self):
        args = build_parser().parse_args(
            ["lint-src", "src", "--format", "json", "--fail-on", "error", "--no-baseline"]
        )
        assert args.paths == [Path("src")]
        assert args.format == "json"
        assert args.no_baseline


class TestAcceptanceFixture:
    def test_reports_unt001_num001_num002(self, fixture_file):
        result = lint_paths([fixture_file], baseline=None)
        assert sorted({f.code for f in result.findings}) == [
            "NUM001",
            "NUM002",
            "UNT001",
        ]

    def test_cli_exits_nonzero(self, fixture_file, capsys):
        code = main(["lint-src", str(fixture_file), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 2  # UNT001 is an error
        assert "UNT001" in out and "NUM001" in out and "NUM002" in out

    def test_cli_json_output(self, fixture_file, capsys):
        code = main(["lint-src", str(fixture_file), "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 2
        assert payload["files"] == 1
        assert payload["counts"]["error"] >= 1
        codes = {d["code"] for d in payload["diagnostics"]}
        assert {"UNT001", "NUM001", "NUM002"} <= codes

    def test_fail_on_error_ignores_plain_warnings(self, tmp_path, capsys):
        path = tmp_path / "warn_only.py"
        path.write_text("def f(v: float) -> bool:\n    return v == 0.3\n")
        code = main(["lint-src", str(path), "--no-baseline", "--fail-on", "error"])
        assert code == 0
        assert "NUM001" in capsys.readouterr().out


class TestCleanTree:
    def test_shipped_tree_is_clean_under_baseline(self):
        baseline = Baseline.load(DEFAULT_BASELINE_PATH)
        result = lint_paths([default_target()], baseline=baseline)
        offenders = [f"{f.file}:{f.line} {f.code}" for f in result.findings]
        assert offenders == [], (
            "physlint found non-baselined findings; fix them or run "
            "`make physlint-baseline`"
        )
        assert result.files > 100

    def test_cli_clean_tree_exits_zero(self, capsys):
        code = main(["lint-src", str(default_target())])
        assert code == 0
        capsys.readouterr()


SELECT_FIXTURE = textwrap.dedent(
    """\
    import threading


    def scale(num: float, den: float) -> float:
        return num / den


    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._n = 0

        def bump(self):
            with self._lock:
                self._n += 1

        def reset(self):
            self._n = 0
    """
)


class TestSelect:
    @pytest.fixture
    def mixed_file(self, tmp_path):
        path = tmp_path / "mixed.py"
        path.write_text(SELECT_FIXTURE)
        return path

    def test_select_con_drops_other_families(self, mixed_file):
        result = lint_paths([mixed_file], baseline=None, select=["CON"])
        assert sorted({f.code for f in result.findings}) == ["CON001"]

    def test_no_select_keeps_everything(self, mixed_file):
        result = lint_paths([mixed_file], baseline=None)
        codes = {f.code for f in result.findings}
        assert {"NUM002", "CON001"} <= codes

    def test_exact_code_select(self, mixed_file):
        result = lint_paths([mixed_file], baseline=None, select=["NUM002"])
        assert sorted({f.code for f in result.findings}) == ["NUM002"]

    def test_parse_errors_survive_select(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        result = lint_paths([path], baseline=None, select=["CON"])
        assert [f.code for f in result.findings] == ["LNT001"]

    def test_cli_select_flag(self, mixed_file, capsys):
        code = main(["lint-src", str(mixed_file), "--no-baseline", "--select", "CON"])
        out = capsys.readouterr().out
        assert code == 2  # CON001 is an error
        assert "CON001" in out
        assert "NUM002" not in out

    def test_cli_select_empty_errors(self, mixed_file, capsys):
        code = main(["lint-src", str(mixed_file), "--select", ",,"])
        assert code != 0
        capsys.readouterr()

    def test_shipped_tree_is_con_clean_without_baseline(self):
        # Tentpole acceptance: `repro-emi lint-src --select CON` over
        # src/ needs no baseline at all — the one deliberate under-lock
        # delivery in EventBus.publish is inline-suppressed.
        result = lint_paths([default_target()], baseline=None, select=["CON"])
        offenders = [f"{f.file}:{f.line} {f.code}" for f in result.findings]
        assert offenders == []


class TestEngine:
    def test_write_baseline_then_clean(self, fixture_file, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        code = main(
            [
                "lint-src",
                str(fixture_file),
                "--no-baseline",
                "--write-baseline",
                str(baseline_path),
            ]
        )
        assert code == 0  # --write-baseline accepts the findings and exits 0
        capsys.readouterr()
        code = main(["lint-src", str(fixture_file), "--baseline", str(baseline_path)])
        assert code == 0
        capsys.readouterr()

    def test_missing_path_errors(self, capsys):
        code = main(["lint-src", "/no/such/path.py"])
        assert code != 0
        assert "no such file" in capsys.readouterr().err

    def test_directory_labels_are_package_relative(self, tmp_path):
        pkg = tmp_path / "repro" / "sub"
        pkg.mkdir(parents=True)
        (pkg / "m.py").write_text("def f(v: float) -> bool:\n    return v == 0.1\n")
        result = lint_paths([tmp_path / "repro"], baseline=None)
        assert [f.file for f in result.findings] == ["repro/sub/m.py"]

    def test_registry_is_stable(self):
        codes = [spec.code for spec in lint_rule_specs()]
        assert len(codes) == len(set(codes))
        # Append-only contract: these codes are documented and baselined.
        assert {
            "UNT001",
            "UNT002",
            "UNT003",
            "UNT004",
            "UNT005",
            "UNT006",
            "NUM001",
            "NUM002",
            "NUM003",
            "NUM004",
            "NUM005",
            "API001",
            "API002",
            "CON001",
            "CON002",
            "CON003",
            "CON004",
            "CON005",
            "PRF001",
            "PRF002",
            "PRF003",
            "PRF004",
            "PRF005",
            "ARCH001",
            "ARCH002",
            "ARCH003",
            "LNT001",
        } == set(codes)

    def test_module_entry_point(self, fixture_file, capsys):
        from repro.lint.__main__ import main as module_main

        code = module_main([str(fixture_file), "--no-baseline"])
        assert code == 2
        capsys.readouterr()


class TestObservability:
    def test_lint_run_emits_spans_and_counters(self, fixture_file):
        from repro.obs import disable, enable

        tracer = enable()
        try:
            lint_paths([fixture_file], baseline=None)
        finally:
            disable()
        report = tracer.report()
        assert report.find("lint.run") is not None
        assert report.find("lint.analyze") is not None
        counters = report.totals()
        assert counters.get("lint.files") == 1
        assert counters.get("lint.findings", 0) >= 3
