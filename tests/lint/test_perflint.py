"""perflint: the PRF/ARCH rule families, hotness promotion, SARIF output.

The subsystem's acceptance criteria live here:

* a broken fixture per new rule code (PRF001-PRF005, ARCH001-ARCH003)
  reports exactly that code at the expected line and exits nonzero from
  the CLI (PRF fixtures via a synthetic hotness snapshot — cold PRF
  findings are info and never gate);
* hotness promotion demonstrably flips a finding from info to error;
* the shipped perflint baseline is zero-entry and the shipped tree is
  ARCH-clean with no hot-promoted PRF errors under the committed
  snapshot.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.check import Severity
from repro.cli import main
from repro.lint import (
    Baseline,
    HotnessModel,
    build_import_graph,
    default_target,
    findings_to_sarif,
    lint_paths,
    lint_sources,
)
from repro.obs import PerfHistory, Tracer

REPO_ROOT = Path(__file__).parents[2]
HOTNESS_SNAPSHOT = REPO_ROOT / "benchmarks" / "baselines" / "HOTNESS.json"
GOLDEN_SARIF = Path(__file__).parents[1] / "data" / "perflint_sarif.json"

PRF001_SRC = textwrap.dedent(
    """\
    import numpy as np


    def doubled(xs):
        out = []
        for v in np.asarray(xs):
            out.append(v * 2.0)
        return out
    """
)

PRF002_SRC = textwrap.dedent(
    """\
    import numpy as np


    def fill(n):
        total = 0.0
        for i in range(n):
            buf = np.zeros(8)
            total = total + float(buf[0]) + i
        return total
    """
)

PRF003_SRC = textwrap.dedent(
    """\
    def drain(cfg, items):
        acc = 0.0
        for item in items:
            acc = acc + cfg.limit
            acc = acc + cfg.limit
            acc = acc + cfg.limit
        return acc
    """
)

PRF004_SRC = textwrap.dedent(
    """\
    def pair_count(seq):
        hits = 0
        for i in range(len(seq)):
            for j in range(i + 1, len(seq)):
                hits = hits + 1
        return hits
    """
)

PRF005_SRC = textwrap.dedent(
    """\
    def fan_out(ctx, task, items):
        return [ctx.pool.submit(len, task.mesh) for _ in items]
    """
)

ARCH001_A_SRC = "import repro.alpha.b\n"
ARCH001_B_SRC = "import repro.alpha.a\n"
ARCH002_SRC = "from repro.check.limits import COUPLING_CLAMP_TOLERANCE\n"
ARCH003_SRC = "import repro.cli\n"

#: code -> (sources, offending label, expected line).
CASES: dict[str, tuple[dict[str, str], str, int]] = {
    "PRF001": ({"repro/coupling/kern.py": PRF001_SRC}, "repro/coupling/kern.py", 6),
    "PRF002": ({"repro/placement/alloc.py": PRF002_SRC}, "repro/placement/alloc.py", 7),
    "PRF003": ({"repro/placement/hoist.py": PRF003_SRC}, "repro/placement/hoist.py", 4),
    "PRF004": ({"repro/placement/pairs.py": PRF004_SRC}, "repro/placement/pairs.py", 4),
    "PRF005": ({"repro/parallel/fan.py": PRF005_SRC}, "repro/parallel/fan.py", 2),
    "ARCH001": (
        {"repro/alpha/a.py": ARCH001_A_SRC, "repro/alpha/b.py": ARCH001_B_SRC},
        "repro/alpha/a.py",
        1,
    ),
    "ARCH002": ({"repro/geometry/shapes.py": ARCH002_SRC}, "repro/geometry/shapes.py", 1),
    "ARCH003": ({"repro/viz/shim.py": ARCH003_SRC}, "repro/viz/shim.py", 1),
}

#: Synthetic snapshot marking every PRF fixture module hot (span names are
#: the modules' dotted paths, so the module-cover mapping applies).
HOT_FIXTURE_SPANS = {
    "coupling.kern": 1.0,
    "placement.alloc": 1.0,
    "placement.hoist": 1.0,
    "placement.pairs": 1.0,
    "parallel.fan": 1.0,
}


def _all_sources() -> dict[str, str]:
    merged: dict[str, str] = {}
    for sources, _label, _line in CASES.values():
        merged.update(sources)
    return merged


def _write_tree(tmp_path: Path) -> Path:
    for label, text in _all_sources().items():
        path = tmp_path / label
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return tmp_path / "repro"


def _write_snapshot(tmp_path: Path) -> Path:
    path = tmp_path / "hotness.json"
    HotnessModel(shares=dict(HOT_FIXTURE_SPANS), source="test").save(path)
    return path


class TestBrokenFixtures:
    @pytest.mark.parametrize("code", sorted(CASES))
    def test_reports_exact_code_and_line(self, code):
        sources, label, line = CASES[code]
        findings, _ = lint_sources(sources, select=[code])
        assert [(f.code, f.file, f.line) for f in findings] == [(code, label, line)]

    @pytest.mark.parametrize("code", sorted(CASES))
    def test_cli_exits_nonzero(self, code, tmp_path, capsys):
        tree = _write_tree(tmp_path)
        snapshot = _write_snapshot(tmp_path)
        _sources, label, line = CASES[code]
        exit_code = main(
            [
                "lint-src",
                str(tree),
                "--no-baseline",
                "--select",
                code,
                "--hotness",
                str(snapshot),
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 2
        assert code in out
        assert f"{label}:{line}" in out


class TestHotnessPromotion:
    LABEL = "repro/coupling/kern.py"

    def test_cold_finding_stays_info(self):
        findings, _ = lint_sources({self.LABEL: PRF001_SRC}, select=["PRF"])
        assert [f.severity for f in findings] == [Severity.INFO]

    def test_hot_finding_becomes_error(self):
        model = HotnessModel(shares={"coupling.kern": 0.5})
        findings, _ = lint_sources(
            {self.LABEL: PRF001_SRC}, select=["PRF"], hotness=model
        )
        assert [f.severity for f in findings] == [Severity.ERROR]
        assert findings[0].message.endswith("[hot path]")

    def test_unrelated_hot_span_does_not_promote(self):
        model = HotnessModel(shares={"routing.route": 0.9})
        findings, _ = lint_sources(
            {self.LABEL: PRF001_SRC}, select=["PRF"], hotness=model
        )
        assert [f.severity for f in findings] == [Severity.INFO]

    def test_arch_findings_are_never_promoted_twice(self):
        # ARCH is already error; promotion only touches PRF codes.
        model = HotnessModel(shares={"viz.shim": 1.0})
        findings, _ = lint_sources(
            {"repro/viz/shim.py": ARCH003_SRC}, select=["ARCH"], hotness=model
        )
        assert [f.severity for f in findings] == [Severity.ERROR]
        assert "[hot path]" not in findings[0].message

    def test_cli_exit_flips_with_snapshot(self, tmp_path, capsys):
        path = tmp_path / "repro" / "coupling" / "kern.py"
        path.parent.mkdir(parents=True)
        path.write_text(PRF001_SRC)
        tree = str(tmp_path / "repro")
        cold = main(["lint-src", tree, "--no-baseline", "--select", "PRF"])
        capsys.readouterr()
        snapshot = _write_snapshot(tmp_path)
        hot = main(
            [
                "lint-src",
                tree,
                "--no-baseline",
                "--select",
                "PRF",
                "--hotness",
                str(snapshot),
            ]
        )
        capsys.readouterr()
        assert cold == 0  # info findings never gate
        assert hot == 2

    def test_cli_rejects_malformed_snapshot(self, tmp_path, capsys):
        snapshot = tmp_path / "bad.json"
        snapshot.write_text('{"schema": "something-else/9"}')
        exit_code = main(
            ["lint-src", str(tmp_path), "--no-baseline", "--hotness", str(snapshot)]
        )
        assert exit_code == 2
        assert "hotness" in capsys.readouterr().err


class TestSelectFamilies:
    def test_select_prf_keeps_only_prf(self):
        findings, _ = lint_sources(_all_sources(), select=["PRF"])
        codes = sorted({f.code for f in findings})
        assert codes == ["PRF001", "PRF002", "PRF003", "PRF004", "PRF005"]

    def test_select_arch_keeps_only_arch(self):
        findings, _ = lint_sources(_all_sources(), select=["ARCH"])
        codes = sorted({f.code for f in findings})
        assert codes == ["ARCH001", "ARCH002", "ARCH003"]

    def test_mixed_select_with_exact_code(self):
        findings, _ = lint_sources(_all_sources(), select=["ARCH003", "PRF004"])
        codes = sorted({f.code for f in findings})
        assert codes == ["ARCH003", "PRF004"]


class TestBaselineRoundTrip:
    def test_write_then_clean(self, tmp_path, capsys):
        tree = _write_tree(tmp_path)
        snapshot = _write_snapshot(tmp_path)
        baseline_path = tmp_path / "perf_baseline.json"
        wrote = main(
            [
                "lint-src",
                str(tree),
                "--no-baseline",
                "--select",
                "PRF,ARCH",
                "--hotness",
                str(snapshot),
                "--write-baseline",
                str(baseline_path),
            ]
        )
        capsys.readouterr()
        assert wrote == 0
        baseline = Baseline.load(baseline_path)
        rerun = main(
            [
                "lint-src",
                str(tree),
                "--select",
                "PRF,ARCH",
                "--hotness",
                str(snapshot),
                "--baseline",
                str(baseline_path),
            ]
        )
        capsys.readouterr()
        assert rerun == 0
        # The round-tripped baseline waives both new families.
        result = lint_paths([tree], baseline=baseline, select=["PRF", "ARCH"])
        assert result.findings == []
        assert result.baselined == len(CASES)


class TestHotnessModel:
    def test_save_load_round_trip(self, tmp_path):
        model = HotnessModel(
            shares={"coupling.field_solve": 0.25, "parallel.worker": 0.5},
            threshold=0.1,
            source="unit-test",
        )
        path = tmp_path / "snap.json"
        model.save(path)
        loaded = HotnessModel.load(path)
        assert loaded.shares == model.shares
        assert loaded.threshold == model.threshold
        assert loaded.source == "unit-test"

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text('{"schema": "other/1", "spans": {}}')
        with pytest.raises(ValueError, match="schema"):
            HotnessModel.load(path)

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="JSON"):
            HotnessModel.load(path)

    def test_load_rejects_non_object_spans(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"schema": "hotness-snapshot/1", "spans": [1, 2]}))
        with pytest.raises(ValueError, match="spans"):
            HotnessModel.load(path)

    def test_hot_spans_sorted_and_thresholded(self):
        model = HotnessModel(
            shares={"a.slow": 0.3, "b.fast": 0.6, "c.cold": 0.01, "run": 0.99},
            threshold=0.05,
        )
        assert model.hot_spans == ["b.fast", "a.slow"]

    def test_span_extending_module_path_marks_module_hot(self):
        model = HotnessModel(shares={"coupling.sweep.distance": 0.5})
        assert model.is_hot("repro/coupling/sweep.py", "distance_sweep")
        assert model.is_hot("repro/coupling/sweep.py", "<module>")

    def test_bare_package_span_does_not_mark_submodules_hot(self):
        model = HotnessModel(shares={"coupling": 0.9})
        assert not model.is_hot("repro/coupling/sweep.py", "distance_sweep")

    def test_function_token_mapping(self):
        model = HotnessModel(shares={"parallel.worker": 0.5})
        assert model.is_hot("repro/parallel/executor.py", "_worker_loop")
        assert not model.is_hot("repro/parallel/executor.py", "CouplingExecutor.map")
        assert not model.is_hot("repro/viz/svg.py", "render_board_svg")

    def test_from_history_aggregates_shares(self, tmp_path):
        def report(wall: float):
            tracer = Tracer(meta={"command": "demo"})
            with tracer.span("coupling.field_solve"):
                pass
            out = tracer.report()
            out.root.wall_s = wall
            out.find("coupling.field_solve").wall_s = wall / 2
            return out

        store = tmp_path / "history.jsonl"
        history = PerfHistory(store)
        history.append(report(1.0), key="a")
        history.append(report(3.0), key="b")
        model = HotnessModel.from_history(store, threshold=0.25)
        assert model.shares["coupling.field_solve"] == pytest.approx(0.5)
        assert "run" not in model.shares
        assert model.hot_spans == ["coupling.field_solve"]

    def test_from_history_empty_store(self, tmp_path):
        model = HotnessModel.from_history(tmp_path / "missing.jsonl")
        assert model.shares == {}
        assert model.hot_spans == []


class TestImportGraph:
    def test_type_checking_imports_are_skipped(self):
        sources = {
            "repro/alpha/a.py": textwrap.dedent(
                """\
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    import repro.alpha.b
                """
            ),
            "repro/alpha/b.py": ARCH001_B_SRC,
        }
        findings, _ = lint_sources(sources, select=["ARCH001"])
        assert findings == []

    def test_lazy_imports_do_not_form_cycles(self):
        sources = {
            "repro/alpha/a.py": textwrap.dedent(
                """\
                def late():
                    import repro.alpha.b

                    return repro.alpha.b
                """
            ),
            "repro/alpha/b.py": ARCH001_B_SRC,
        }
        findings, _ = lint_sources(sources, select=["ARCH001"])
        assert findings == []

    def test_relative_imports_resolve(self):
        import ast

        sources = {
            "repro/alpha/a.py": "from . import b\n",
            "repro/alpha/b.py": "from .a import thing\n",
        }
        graph = build_import_graph(
            {label: ast.parse(text) for label, text in sources.items()}
        )
        assert graph.cycles() == [["repro/alpha/a.py", "repro/alpha/b.py"]]

    def test_main_shim_may_import_cli(self):
        findings, _ = lint_sources(
            {"repro/lint/__main__.py": ARCH003_SRC}, select=["ARCH"]
        )
        assert findings == []


class TestSarif:
    def _findings(self):
        sources = {
            "repro/coupling/kern.py": PRF001_SRC,
            "repro/core/div.py": "def scale(num, den):\n    return num / den\n",
            "repro/viz/shim.py": ARCH003_SRC,
        }
        model = HotnessModel(shares={"coupling.kern": 1.0})
        findings, _ = lint_sources(sources, hotness=model)
        return findings

    def test_matches_golden_document(self):
        document = findings_to_sarif(self._findings(), tool_version="1.2.3")
        golden = json.loads(GOLDEN_SARIF.read_text())
        assert document == golden

    def test_levels_follow_severity(self):
        document = findings_to_sarif(self._findings())
        results = document["runs"][0]["results"]
        levels = {r["ruleId"]: r["level"] for r in results}
        assert levels["PRF001"] == "error"  # promoted by the hot span
        assert levels["NUM002"] == "warning"
        assert levels["ARCH003"] == "error"

    def test_rule_index_consistent(self):
        document = findings_to_sarif(self._findings())
        run = document["runs"][0]
        rules = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert rules == sorted(rules)
        for result in run["results"]:
            assert rules[result["ruleIndex"]] == result["ruleId"]

    def test_cli_sarif_output(self, tmp_path, capsys):
        path = tmp_path / "div.py"
        path.write_text("def scale(num, den):\n    return num / den\n")
        exit_code = main(
            ["lint-src", str(path), "--no-baseline", "--format", "sarif"]
        )
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 1  # NUM002 is a warning; the default gate trips on it
        assert document["version"] == "2.1.0"
        assert [r["ruleId"] for r in document["runs"][0]["results"]] == ["NUM002"]


class TestShippedTree:
    def test_perflint_baseline_is_zero_entry(self):
        import repro.lint as lint_pkg

        path = Path(lint_pkg.__file__).parent / "perflint_baseline.json"
        document = json.loads(path.read_text())
        assert document["entries"] == []

    def test_tree_is_arch_clean_without_baseline(self):
        result = lint_paths([default_target()], baseline=None, select=["ARCH"])
        offenders = [f"{f.file}:{f.line} {f.code}" for f in result.findings]
        assert offenders == []

    def test_tree_has_no_hot_prf_errors_under_committed_snapshot(self):
        hotness = HotnessModel.load(HOTNESS_SNAPSHOT)
        assert hotness.hot_spans  # the committed snapshot is non-trivial
        result = lint_paths(
            [default_target()], baseline=None, select=["PRF"], hotness=hotness
        )
        hot = [f for f in result.findings if f.severity >= Severity.ERROR]
        assert hot == []


class TestDocsAgree:
    """docs/ARCHITECTURE.md's "Enforced layering" table IS ARCH_LAYERS."""

    def test_layer_table_matches_code(self):
        import re

        from repro.lint import ARCH_LAYERS
        from repro.lint.rules_arch import CROSS_CUTTING_PACKAGES

        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        documented: dict[str, int] = {}
        for match in re.finditer(r"^\| (\d+) \| ([a-z, ]+) \|$", text, re.MULTILINE):
            layer = int(match.group(1))
            for package in match.group(2).split(","):
                documented[package.strip()] = layer
        assert documented == ARCH_LAYERS
        cross = re.search(r"Cross-cutting \(importable from every layer\): (.+)\.", text)
        assert cross is not None
        assert {p.strip() for p in cross.group(1).split(",")} == set(
            CROSS_CUTTING_PACKAGES
        )

    def test_perflint_doc_lists_every_rule_code(self):
        from repro.lint import lint_rule_specs

        text = (REPO_ROOT / "docs" / "PERFLINT.md").read_text()
        for spec in lint_rule_specs():
            if spec.code.startswith(("PRF", "ARCH")):
                assert spec.code in text, f"{spec.code} missing from docs/PERFLINT.md"
