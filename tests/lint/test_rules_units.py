"""One deliberately broken fixture per UNT rule, asserting exact code/line.

Every fixture is an in-memory module run through :func:`lint_sources`;
line numbers in the assertions count from the first line of the dedented
source (``ast`` is 1-based).
"""

from __future__ import annotations

import textwrap

from repro.lint import lint_sources


def run(source: str, label: str = "mod.py"):
    findings, _ = lint_sources({label: textwrap.dedent(source)})
    return findings


def codes_at(findings, code: str) -> list[int]:
    return [f.line for f in findings if f.code == code]


class TestUnt001MixedArithmetic:
    def test_dimension_mismatch_add(self):
        findings = run(
            """\
            def f(d: Meters, l: Henries) -> Meters:
                return d + l
            """
        )
        assert codes_at(findings, "UNT001") == [2]

    def test_scale_mismatch_m_plus_mm(self):
        findings = run(
            """\
            def f(a: Meters, b: Millimeters) -> Meters:
                return a + b
            """
        )
        [finding] = [f for f in findings if f.code == "UNT001"]
        assert finding.line == 2
        assert "m vs mm" in finding.message

    def test_scale_mismatch_h_vs_nh(self):
        findings = run(
            """\
            def f(a: Henries, b: NanoHenries) -> Henries:
                return a - b
            """
        )
        assert codes_at(findings, "UNT001") == [2]

    def test_same_unit_add_is_clean(self):
        findings = run(
            """\
            def f(a: Meters, b: Meters) -> Meters:
                return a + b
            """
        )
        assert findings == []

    def test_literals_mix_with_anything(self):
        findings = run(
            """\
            def f(a: Meters) -> Meters:
                return a + 0.5
            """
        )
        assert findings == []


class TestUnt002MixedComparison:
    def test_dimension_mismatch_compare(self):
        findings = run(
            """\
            def f(d: Meters, t: Seconds) -> bool:
                return d < t
            """
        )
        assert codes_at(findings, "UNT002") == [2]

    def test_scale_mismatch_compare(self):
        findings = run(
            """\
            def f(x: Henries, y: NanoHenries) -> bool:
                return x >= y
            """
        )
        assert codes_at(findings, "UNT002") == [2]


class TestUnt003CallArgumentMismatch:
    def test_degrees_into_radian_parameter(self):
        findings = run(
            """\
            def needs_rad(angle: Radians) -> Radians:
                return angle

            def caller(a: Degrees) -> Radians:
                return needs_rad(a)
            """
        )
        assert codes_at(findings, "UNT003") == [5]

    def test_keyword_argument_mismatch(self):
        findings = run(
            """\
            def spacing(gap: Meters) -> Meters:
                return gap

            def caller(l: Henries) -> Meters:
                return spacing(gap=l)
            """
        )
        assert codes_at(findings, "UNT003") == [5]

    def test_matching_argument_is_clean(self):
        findings = run(
            """\
            def needs_rad(angle: Radians) -> Radians:
                return angle

            def caller(a: Radians) -> Radians:
                return needs_rad(a)
            """
        )
        assert findings == []


class TestUnt004ReturnMismatch:
    def test_returns_wrong_dimension(self):
        findings = run(
            """\
            def inductance() -> Henries:
                return 1e-9

            def f() -> Meters:
                return inductance()
            """
        )
        assert codes_at(findings, "UNT004") == [5]


class TestUnt005AssignmentConflict:
    def test_rebinding_param_to_other_unit(self):
        findings = run(
            """\
            def make_l() -> Henries:
                return 1e-9

            def f(x: Meters) -> Meters:
                x = make_l()
                return x
            """
        )
        assert codes_at(findings, "UNT005") == [5]

    def test_annotated_local_conflict(self):
        findings = run(
            """\
            def f(x: Meters) -> Meters:
                y: Henries = x
                return x
            """
        )
        assert codes_at(findings, "UNT005") == [2]


class TestUnt006MixedReduction:
    def test_max_of_mixed_units(self):
        findings = run(
            """\
            def f(d: Meters, l: Henries) -> Meters:
                return max(d, l)
            """
        )
        assert codes_at(findings, "UNT006") == [2]

    def test_homogeneous_reduction_is_clean(self):
        findings = run(
            """\
            def f(d: Meters, e: Meters) -> Meters:
                return max(d, e)
            """
        )
        assert findings == []


class TestPropagation:
    def test_units_flow_through_assignments(self):
        findings = run(
            """\
            def f(d: Meters, l: Henries) -> Meters:
                shifted = d
                return shifted + l
            """
        )
        assert codes_at(findings, "UNT001") == [3]

    def test_radian_trig_is_understood(self):
        # math.cos consumes radians and yields a plain number.
        findings = run(
            """\
            import math

            def f(a: Radians, d: Meters) -> Meters:
                return d * math.cos(a)
            """
        )
        assert findings == []

    def test_unknown_units_never_flag(self):
        # Precision grows with annotation coverage: unannotated values
        # must stay silent rather than guess.
        findings = run(
            """\
            def f(a, b):
                return a + b
            """
        )
        assert findings == []
