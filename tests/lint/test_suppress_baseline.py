"""Inline suppressions and the checked-in baseline."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint import Baseline, LintFinding, lint_sources, scan_suppressions
from repro.lint.registry import lint_spec_for


def run(source: str, label: str = "mod.py"):
    return lint_sources({label: textwrap.dedent(source)})


def finding(file: str, code: str = "NUM002", symbol: str = "f", line: int = 1) -> LintFinding:
    return LintFinding(
        code=code,
        severity=lint_spec_for(code).severity,
        message="x",
        file=file,
        line=line,
        symbol=symbol,
    )


class TestInlineSuppressions:
    def test_same_line_directive_waives_that_line(self):
        findings, suppressed = run(
            """\
            def f(v: float) -> bool:
                return v == 0.3  # physlint: disable=NUM001
            """
        )
        assert findings == []
        assert suppressed == 1

    def test_directive_does_not_leak_to_other_lines(self):
        findings, suppressed = run(
            """\
            def f(v: float) -> bool:
                a = v == 0.3  # physlint: disable=NUM001
                return v == 0.7
            """
        )
        assert [f.line for f in findings] == [3]
        assert suppressed == 1

    def test_standalone_directive_is_file_wide(self):
        findings, suppressed = run(
            """\
            # physlint: disable=NUM001

            def f(v: float) -> bool:
                return v == 0.3

            def g(v: float) -> bool:
                return v == 0.7
            """
        )
        assert findings == []
        assert suppressed == 2

    def test_disable_all(self):
        findings, suppressed = run(
            """\
            # physlint: disable=all

            def f(num: float, den: float) -> float:
                return num / den if num == 0.5 else den
            """
        )
        assert findings == []
        assert suppressed >= 1

    def test_directive_inside_string_is_inert(self):
        suppressions = scan_suppressions('note = "# physlint: disable=NUM001"\n')
        assert suppressions.file_wide == set()
        assert suppressions.by_line == {}

    def test_trailing_prose_after_code_is_tolerated(self):
        suppressions = scan_suppressions(
            "global _x  # physlint: disable=API002 -- documented singleton\n"
        )
        assert suppressions.by_line == {1: {"API002"}}


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        baseline = Baseline.from_findings([finding("a.py"), finding("a.py"), finding("b.py")])
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.budgets == {
            ("a.py", "NUM002", "f"): 2,
            ("b.py", "NUM002", "f"): 1,
        }
        assert len(loaded) == 3

    def test_filter_consumes_budget_then_surfaces(self):
        baseline = Baseline.from_findings([finding("a.py")])
        surfaced, waived = baseline.filter(
            [finding("a.py", line=10), finding("a.py", line=20)]
        )
        assert waived == 1
        assert [f.line for f in surfaced] == [20]

    def test_line_drift_does_not_invalidate(self):
        # Keyed on (file, code, symbol): refactoring inside the function
        # keeps the waiver.
        baseline = Baseline.from_findings([finding("a.py", line=5)])
        surfaced, waived = baseline.filter([finding("a.py", line=99)])
        assert surfaced == [] and waived == 1

    def test_different_symbol_surfaces(self):
        baseline = Baseline.from_findings([finding("a.py", symbol="f")])
        surfaced, _ = baseline.filter([finding("a.py", symbol="g")])
        assert len(surfaced) == 1

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope", "entries": []}))
        with pytest.raises(ValueError, match="schema"):
            Baseline.load(path)

    def test_malformed_entry_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"schema": "physlint-baseline/1", "entries": [{"code": "X"}]})
        )
        with pytest.raises(ValueError, match="malformed"):
            Baseline.load(path)

    def test_not_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{")
        with pytest.raises(ValueError, match="JSON"):
            Baseline.load(path)
