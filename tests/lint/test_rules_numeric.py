"""One deliberately broken fixture per NUM/API/LNT rule code."""

from __future__ import annotations

import textwrap

from repro.lint import lint_sources


def run(source: str, label: str = "mod.py"):
    findings, _ = lint_sources({label: textwrap.dedent(source)})
    return findings


def codes_at(findings, code: str) -> list[int]:
    return [f.line for f in findings if f.code == code]


class TestNum001ExactFloatEquality:
    def test_eq_against_float_literal(self):
        findings = run(
            """\
            def f(v: float) -> bool:
                return v == 0.3
            """
        )
        assert codes_at(findings, "NUM001") == [2]

    def test_neq_against_zero(self):
        findings = run(
            """\
            def f(v: float) -> bool:
                return v != 0.0
            """
        )
        assert codes_at(findings, "NUM001") == [2]

    def test_integer_literal_is_clean(self):
        findings = run(
            """\
            def f(v: int) -> bool:
                return v == 3
            """
        )
        assert codes_at(findings, "NUM001") == []

    def test_literal_vs_literal_is_constant_folding(self):
        findings = run("x = 1.0 == 1.0\n")
        assert codes_at(findings, "NUM001") == []


class TestNum002UnguardedDivision:
    def test_unguarded_division(self):
        findings = run(
            """\
            def ratio(num: float, den: float) -> float:
                return num / den
            """
        )
        assert codes_at(findings, "NUM002") == [2]

    def test_comparison_guard_silences(self):
        findings = run(
            """\
            def ratio(num: float, den: float) -> float:
                if den <= 0.0:
                    raise ValueError("den must be positive")
                return num / den
            """
        )
        assert codes_at(findings, "NUM002") == []

    def test_predicate_guard_silences(self):
        findings = run(
            """\
            from repro.units import approx_zero

            def ratio(num: float, den: float) -> float:
                if approx_zero(den):
                    raise ValueError("den is zero")
                return num / den
            """
        )
        assert codes_at(findings, "NUM002") == []

    def test_or_fallback_silences(self):
        findings = run(
            """\
            def ratio(num: float, den: float) -> float:
                return num / (den or 1.0)
            """
        )
        assert codes_at(findings, "NUM002") == []

    def test_truth_tested_len_silences(self):
        findings = run(
            """\
            def mean(values: list[float]) -> float:
                if not values:
                    return 0.0
                return sum(values) / len(values)
            """
        )
        assert codes_at(findings, "NUM002") == []

    def test_max_clamp_silences(self):
        findings = run(
            """\
            def f(num: float, den: float) -> float:
                return num / max(den, 1e-12)
            """
        )
        assert codes_at(findings, "NUM002") == []

    def test_path_division_is_not_arithmetic(self):
        findings = run(
            """\
            from pathlib import Path

            def f(out: Path, name: str) -> Path:
                return out / f"{name}.svg" / "sub"
            """
        )
        assert codes_at(findings, "NUM002") == []

    def test_uppercase_constant_is_trusted(self):
        findings = run(
            """\
            SCALE = 1000.0

            def f(v: float) -> float:
                return v / SCALE
            """
        )
        assert codes_at(findings, "NUM002") == []


class TestNum003DomainUnsafeMath:
    def test_sqrt_of_difference(self):
        findings = run(
            """\
            import math

            def f(a: float, b: float) -> float:
                return math.sqrt(a - b)
            """
        )
        assert codes_at(findings, "NUM003") == [4]

    def test_log_of_difference(self):
        findings = run(
            """\
            import math

            def f(a: float, b: float) -> float:
                return math.log(a - b)
            """
        )
        assert codes_at(findings, "NUM003") == [4]

    def test_sqrt_of_sum_is_clean(self):
        findings = run(
            """\
            import math

            def f(a: float, b: float) -> float:
                return math.sqrt(a * a + b * b)
            """
        )
        assert codes_at(findings, "NUM003") == []


class TestNum004NaiveAccumulation:
    def test_plain_sum_in_peec_module(self):
        findings = run(
            """\
            def total(lengths: list[float]) -> float:
                return sum(lengths)
            """,
            label="repro/peec/kernel.py",
        )
        assert codes_at(findings, "NUM004") == [2]

    def test_plain_sum_outside_peec_is_tolerated(self):
        findings = run(
            """\
            def total(lengths: list[float]) -> float:
                return sum(lengths)
            """,
            label="repro/viz/plot.py",
        )
        assert codes_at(findings, "NUM004") == []

    def test_fsum_in_peec_is_clean(self):
        findings = run(
            """\
            import math

            def total(lengths: list[float]) -> float:
                return math.fsum(lengths)
            """,
            label="repro/peec/kernel.py",
        )
        assert codes_at(findings, "NUM004") == []


class TestNum005MutableDefault:
    def test_list_default(self):
        findings = run(
            """\
            def f(items: list[int] = []) -> list[int]:
                return items
            """
        )
        assert codes_at(findings, "NUM005") == [1]

    def test_dict_call_default(self):
        findings = run(
            """\
            def f(opts=dict()) -> dict:
                return opts
            """
        )
        assert codes_at(findings, "NUM005") == [1]

    def test_none_default_is_clean(self):
        findings = run(
            """\
            def f(items: list[int] | None = None) -> list[int]:
                return items or []
            """
        )
        assert codes_at(findings, "NUM005") == []


class TestApi001ModuleMutableState:
    def test_lowercase_module_dict(self):
        findings = run("cache = {}\n")
        assert codes_at(findings, "API001") == [1]

    def test_uppercase_registry_is_convention(self):
        findings = run("REGISTRY = {}\n")
        assert codes_at(findings, "API001") == []

    def test_final_annotation_is_trusted(self):
        findings = run(
            """\
            from typing import Final

            cache: Final = {}
            """
        )
        assert codes_at(findings, "API001") == []


class TestApi002GlobalStatement:
    def test_global_rebinding(self):
        findings = run(
            """\
            _state = None

            def install(value):
                global _state
                _state = value
            """
        )
        assert codes_at(findings, "API002") == [4]


class TestLnt001Unparsable:
    def test_syntax_error_reports_lnt001(self):
        findings = run("def broken(:\n")
        assert [f.code for f in findings] == ["LNT001"]
        assert findings[0].severity.name == "ERROR"
