"""Unit tests for CM/DM noise separation."""

import numpy as np
import pytest

from repro.emi import Spectrum, separate_modes


def make(values_pos, values_neg):
    freqs = np.arange(1, len(values_pos) + 1) * 1e6
    return (
        Spectrum(freqs, np.asarray(values_pos, dtype=complex)),
        Spectrum(freqs, np.asarray(values_neg, dtype=complex)),
    )


class TestSeparation:
    def test_pure_common_mode(self):
        pos, neg = make([1.0, 2.0], [1.0, 2.0])
        split = separate_modes(pos, neg)
        assert np.allclose(np.abs(split.common_mode.values), [1.0, 2.0])
        assert np.allclose(np.abs(split.differential_mode.values), 0.0)

    def test_pure_differential_mode(self):
        pos, neg = make([1.0], [-1.0])
        split = separate_modes(pos, neg)
        assert abs(split.common_mode.values[0]) == pytest.approx(0.0)
        assert abs(split.differential_mode.values[0]) == pytest.approx(1.0)

    def test_reconstruction(self):
        pos, neg = make([1.0 + 0.5j, 0.2], [0.3, -0.1 + 0.2j])
        split = separate_modes(pos, neg)
        rebuilt_pos = split.common_mode.values + split.differential_mode.values
        rebuilt_neg = split.common_mode.values - split.differential_mode.values
        assert np.allclose(rebuilt_pos, pos.values)
        assert np.allclose(rebuilt_neg, neg.values)

    def test_grid_mismatch_rejected(self):
        pos = Spectrum(np.array([1e6]), np.array([1.0], dtype=complex))
        neg = Spectrum(np.array([2e6]), np.array([1.0], dtype=complex))
        with pytest.raises(ValueError):
            separate_modes(pos, neg)


class TestModeSplit:
    def test_dominant_mode(self):
        pos, neg = make([1.0, 1.0], [1.0, -1.0])
        split = separate_modes(pos, neg)
        assert split.dominant_mode_at(0) == "CM"
        assert split.dominant_mode_at(1) == "DM"

    def test_cm_fraction_bounds(self):
        pos, neg = make([1.0, 0.5], [0.9, -0.5])
        frac = separate_modes(pos, neg).cm_fraction()
        assert 0.0 <= frac <= 1.0

    def test_cm_fraction_pure_cases(self):
        pos, neg = make([1.0], [1.0])
        assert separate_modes(pos, neg).cm_fraction() == pytest.approx(1.0)
        pos, neg = make([1.0], [-1.0])
        assert separate_modes(pos, neg).cm_fraction() == pytest.approx(0.0)
