"""Unit tests for the CouplingExecutor fan-out (repro.parallel.executor)."""

import pytest

from repro.obs import disable, enable
from repro.parallel import CouplingExecutor


def _square(x):
    return x * x


def _raise_on_seven(x):
    if x == 7:
        raise ValueError("seven is not allowed")
    return x


class TestConstruction:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            CouplingExecutor(workers=0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            CouplingExecutor(workers=2, chunk_size=0)

    def test_is_parallel(self):
        assert not CouplingExecutor(workers=1).is_parallel
        assert CouplingExecutor(workers=2).is_parallel


class TestSerial:
    def test_map_serial(self):
        ex = CouplingExecutor(workers=1)
        assert ex.map(_square, range(10)) == [x * x for x in range(10)]

    def test_serial_never_creates_pool(self):
        ex = CouplingExecutor(workers=1)
        ex.map(_square, range(10))
        assert ex._pool is None

    def test_single_item_stays_in_process(self):
        ex = CouplingExecutor(workers=4)
        assert ex.map(_square, [3]) == [9]
        assert ex._pool is None


class TestParallel:
    def test_map_parallel_matches_serial_in_order(self):
        with CouplingExecutor(workers=2) as ex:
            result = ex.map(_square, range(37))
        assert result == [x * x for x in range(37)]

    def test_explicit_chunk_size(self):
        with CouplingExecutor(workers=2, chunk_size=3) as ex:
            result = ex.map(_square, range(10))
        assert result == [x * x for x in range(10)]

    def test_pool_reused_across_maps(self):
        with CouplingExecutor(workers=2) as ex:
            ex.map(_square, range(8))
            pool = ex._pool
            ex.map(_square, range(8))
            assert ex._pool is pool

    def test_close_is_idempotent(self):
        ex = CouplingExecutor(workers=2)
        ex.map(_square, range(8))
        ex.close()
        ex.close()
        assert ex._pool is None


class TestFallback:
    def test_unpicklable_fn_falls_back_to_serial(self):
        # A lambda cannot be shipped to a worker by name; the executor must
        # deliver the correct result anyway.
        with CouplingExecutor(workers=2) as ex:
            result = ex.map(lambda x: x + 1, range(20))
        assert result == list(range(1, 21))

    def test_task_error_reraises_original_type(self):
        with CouplingExecutor(workers=2) as ex, pytest.raises(ValueError, match="seven"):
            ex.map(_raise_on_seven, range(20))


class TestCounters:
    def test_task_chunk_and_fallback_counters(self):
        tracer = enable()
        try:
            with CouplingExecutor(workers=2, chunk_size=5) as ex:
                ex.map(_square, range(20))
                ex.map(lambda x: x, range(4))
            report = tracer.report()
        finally:
            disable()
        counters = report.totals()
        assert counters["parallel.tasks"] == 24
        # Only the successful map counts chunks: the unpicklable one fails
        # at payload serialisation, before any pool submission.
        assert counters["parallel.chunks"] == 4
        assert counters["parallel.fallbacks"] == 1


def _traced_square(x):
    from repro.obs import get_tracer

    tracer = get_tracer()
    with tracer.span("task.square"):
        tracer.count("task.items")
        return x * x


class TestWorkerSpanCapture:
    def test_worker_spans_merge_under_parallel_worker(self):
        tracer = enable()
        try:
            with CouplingExecutor(workers=2, chunk_size=5) as ex:
                result = ex.map(_traced_square, range(20))
            report = tracer.report()
        finally:
            disable()
        assert result == [x * x for x in range(20)]
        worker = report.find("parallel.worker")
        assert worker is not None
        # One merged worker-root per chunk.
        assert worker.count == 4
        # The task's own span and counters crossed the process boundary.
        task_span = worker.children["task.square"]
        assert task_span.count == 20
        assert task_span.wall_s > 0
        assert report.totals()["task.items"] == 20
        # The capture nests under the parallel.map span.
        parallel_map = report.find("parallel.map")
        assert "parallel.worker" in parallel_map.children

    def test_untraced_run_ships_no_capture(self):
        # No tracer: the payload advertises traced=False and the map
        # still returns plain results (the capture tuple is internal).
        with CouplingExecutor(workers=2, chunk_size=5) as ex:
            assert ex.map(_traced_square, range(10)) == [x * x for x in range(10)]

    def test_serial_map_traces_inline(self):
        tracer = enable()
        try:
            CouplingExecutor(workers=1).map(_traced_square, range(6))
            report = tracer.report()
        finally:
            disable()
        # Serial execution records spans directly -- no worker node.
        assert report.find("parallel.worker") is None
        assert report.find("task.square").count == 6

    def test_fallback_still_traces_inline(self):
        tracer = enable()
        try:
            with CouplingExecutor(workers=2) as ex:
                # Unpicklable closure forces the serial fallback.
                ex.map(lambda x: _traced_square(x), range(8))
            report = tracer.report()
        finally:
            disable()
        assert report.totals()["parallel.fallbacks"] == 1
        assert report.find("task.square").count == 8
