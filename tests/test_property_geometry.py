"""Property-based tests for the geometry kernel (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    OrientedRect,
    Placement2D,
    Polygon2D,
    Rect,
    Vec2,
    Vec3,
    normalize_angle,
)

coords = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False, allow_infinity=False)
angles = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)
small_pos = st.floats(min_value=1e-4, max_value=0.1, allow_nan=False)


@st.composite
def vec2(draw):
    return Vec2(draw(coords), draw(coords))


@st.composite
def vec3(draw):
    return Vec3(draw(coords), draw(coords), draw(coords))


@st.composite
def placements(draw):
    return Placement2D(draw(vec2()), draw(angles))


class TestVectorInvariants:
    @given(vec2(), angles)
    def test_rotation_preserves_norm(self, v, a):
        assert math.isclose(v.rotated(a).norm(), v.norm(), abs_tol=1e-12)

    @given(vec2(), vec2())
    def test_triangle_inequality(self, a, b):
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-12

    @given(vec3(), vec3())
    def test_cross_orthogonal_to_operands(self, a, b):
        c = a.cross(b)
        assert abs(c.dot(a)) < 1e-9
        assert abs(c.dot(b)) < 1e-9

    @given(vec2(), vec2())
    def test_dot_cauchy_schwarz(self, a, b):
        assert abs(a.dot(b)) <= a.norm() * b.norm() + 1e-12


class TestPlacementInvariants:
    @given(placements(), vec2())
    def test_apply_inverse_roundtrip(self, p, v):
        assert p.inverse_apply(p.apply(v)).is_close(v, tol=1e-9)

    @given(placements(), vec2(), vec2())
    def test_rigid_transform_preserves_distance(self, p, a, b):
        d0 = a.distance_to(b)
        d1 = p.apply(a).distance_to(p.apply(b))
        assert math.isclose(d0, d1, abs_tol=1e-9)

    @given(angles)
    def test_normalize_angle_range(self, a):
        n = normalize_angle(a)
        assert 0.0 <= n < 2.0 * math.pi
        assert math.isclose(math.cos(n), math.cos(a), abs_tol=1e-9)


class TestRectInvariants:
    @given(vec2(), small_pos, small_pos, vec2(), small_pos, small_pos)
    def test_overlap_symmetric(self, c1, w1, h1, c2, w2, h2):
        a = Rect.from_center(c1, w1, h1)
        b = Rect.from_center(c2, w2, h2)
        assert a.overlaps(b) == b.overlaps(a)

    @given(vec2(), small_pos, small_pos, vec2(), small_pos, small_pos)
    def test_separation_zero_iff_touching_or_overlap(self, c1, w1, h1, c2, w2, h2):
        a = Rect.from_center(c1, w1, h1)
        b = Rect.from_center(c2, w2, h2)
        if a.overlaps(b):
            assert a.separation(b) == 0.0

    @given(vec2(), small_pos, small_pos, st.floats(min_value=0, max_value=0.05))
    def test_inflate_monotone(self, c, w, h, margin):
        r = Rect.from_center(c, w, h)
        grown = r.inflated(margin)
        assert grown.area() >= r.area()

    @given(vec2(), small_pos, small_pos, angles)
    def test_oriented_aabb_contains_corners(self, c, hw, hh, rot):
        o = OrientedRect(c, hw, hh, rot)
        box = o.aabb()
        for corner in o.corners():
            assert box.contains_point(corner, tol=1e-9)

    @given(vec2(), small_pos, small_pos, angles)
    def test_oriented_area_invariant(self, c, hw, hh, rot):
        assert math.isclose(
            OrientedRect(c, hw, hh, rot).area(),
            OrientedRect(c, hw, hh, 0.0).area(),
            rel_tol=1e-12,
        )


class TestPolygonInvariants:
    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-0.5, max_value=0.5),
                st.floats(min_value=-0.5, max_value=0.5),
            ),
            min_size=3,
            max_size=8,
            unique=True,
        )
    )
    def test_convex_hull_polygon_contains_points(self, pts):
        from repro.geometry import convex_hull

        vecs = [Vec2(x, y) for x, y in pts]
        hull = convex_hull(vecs)
        if len(hull) < 3:
            return  # collinear input
        poly = Polygon2D(hull)
        if poly.area() < 1e-6:
            return  # numerically degenerate sliver; containment is moot
        for v in vecs:
            assert poly.contains_point(v, tol=1e-7)

    @given(
        st.floats(min_value=0.02, max_value=0.5),
        st.floats(min_value=0.02, max_value=0.5),
        st.floats(min_value=0.0, max_value=0.009),
    )
    def test_erosion_shrinks_area(self, w, h, margin):
        poly = Polygon2D.rectangle(0.0, 0.0, w, h)
        eroded = poly.eroded(margin)
        assert eroded is not None
        assert eroded.area() <= poly.area() + 1e-12

    @given(st.floats(min_value=0.05, max_value=0.5))
    def test_centroid_inside_rectangle(self, size):
        poly = Polygon2D.rectangle(0.0, 0.0, size, size * 0.5)
        assert poly.contains_point(poly.centroid())
