"""Property-based tests for the ASCII interface (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.components import (
    BobbinChoke,
    CeramicCapacitor,
    FilmCapacitorX2,
    PowerMosfet,
)
from repro.geometry import Placement2D, Polygon2D
from repro.io import read_problem, write_problem
from repro.placement import Board, PlacedComponent, PlacementProblem
from repro.rules import MinDistanceRule, RuleSet

mm = st.floats(min_value=0.005, max_value=0.09, allow_nan=False)
rotations = st.sampled_from([0.0, 90.0, 180.0, 270.0])
pemds = st.floats(min_value=0.001, max_value=0.05, allow_nan=False)
residuals = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
part_factories = st.sampled_from(
    [FilmCapacitorX2, CeramicCapacitor, BobbinChoke, PowerMosfet]
)


@st.composite
def problems(draw):
    problem = PlacementProblem([Board(0, Polygon2D.rectangle(0, 0, 0.1, 0.1))])
    n = draw(st.integers(min_value=1, max_value=6))
    refs = []
    for i in range(n):
        ref = f"U{i}"
        refs.append(ref)
        comp = PlacedComponent(ref, draw(part_factories)())
        if draw(st.booleans()):
            comp.placement = Placement2D.at(draw(mm), draw(mm), draw(rotations))
            comp.fixed = draw(st.booleans())
        if draw(st.booleans()):
            comp.preferred_rotation_deg = draw(rotations)
        problem.add_component(comp)
    if n >= 2 and draw(st.booleans()):
        problem.add_net("N1", [(refs[0], "1"), (refs[1], "1")])
    rules = []
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                rules.append(
                    MinDistanceRule(
                        refs[i],
                        refs[j],
                        pemd=draw(pemds),
                        residual=draw(residuals),
                    )
                )
    problem.rules = RuleSet(min_distance=rules)
    return problem


class TestAsciiRoundtripProperties:
    @settings(max_examples=25, deadline=None)
    @given(problems())
    def test_structure_preserved(self, problem):
        again = read_problem(write_problem(problem))
        assert set(again.components) == set(problem.components)
        assert len(again.nets) == len(problem.nets)
        assert len(again.rules.min_distance) == len(problem.rules.min_distance)

    @settings(max_examples=25, deadline=None)
    @given(problems())
    def test_placements_preserved(self, problem):
        again = read_problem(write_problem(problem))
        for ref, comp in problem.components.items():
            twin = again.components[ref]
            assert twin.fixed == comp.fixed
            assert twin.is_placed == comp.is_placed
            if comp.is_placed:
                assert twin.placement.position.is_close(
                    comp.placement.position, tol=1e-6
                )
                assert math.isclose(
                    twin.placement.rotation_deg % 360.0,
                    comp.placement.rotation_deg % 360.0,
                    abs_tol=1e-6,
                )

    @settings(max_examples=25, deadline=None)
    @given(problems())
    def test_rules_preserved(self, problem):
        again = read_problem(write_problem(problem))
        for rule in problem.rules.min_distance:
            twin = again.rules.min_distance_for(rule.ref_a, rule.ref_b)
            assert twin is not None
            assert math.isclose(twin.pemd, rule.pemd, rel_tol=1e-4)
            assert math.isclose(twin.residual, rule.residual, rel_tol=1e-3, abs_tol=1e-4)

    @settings(max_examples=15, deadline=None)
    @given(problems())
    def test_double_roundtrip_is_fixed_point(self, problem):
        once = write_problem(problem)
        twice = write_problem(read_problem(once))
        assert once == twice
