"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.io import read_problem, write_problem
from repro.placement import AutoPlacer

from conftest import build_small_problem


@pytest.fixture
def problem_file(tmp_path):
    path = tmp_path / "board.txt"
    path.write_text(write_problem(build_small_problem(), title="cli test"))
    return path


@pytest.fixture
def placed_file(tmp_path):
    problem = build_small_problem()
    AutoPlacer(problem).run()
    path = tmp_path / "placed.txt"
    path.write_text(write_problem(problem, title="placed"))
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_place_flags(self):
        args = build_parser().parse_args(
            ["place", "x.txt", "--baseline", "--no-rotation"]
        )
        assert args.baseline and args.no_rotation


class TestPlaceCommand:
    def test_place_writes_output_and_svg(self, problem_file, tmp_path, capsys):
        out = tmp_path / "placed.txt"
        svg = tmp_path / "board.svg"
        code = main(["place", str(problem_file), "-o", str(out), "--svg", str(svg)])
        assert code == 0
        assert "violations: 0" in capsys.readouterr().out
        placed = read_problem(out.read_text())
        assert all(c.is_placed for c in placed.components.values())
        assert svg.read_text().startswith("<svg")

    def test_baseline_mode_exit_code(self, problem_file, capsys):
        # Baseline ignores min distances; exit code reflects the DRC of the
        # checks it ran (body/keepin), which pass.
        code = main(["place", str(problem_file), "--baseline"])
        assert code == 0

    def test_place_failure_exit_code(self, tmp_path):
        # A board far too small for the parts.
        problem = build_small_problem()
        from repro.geometry import Polygon2D
        from repro.placement import Board

        problem.boards = [Board(0, Polygon2D.rectangle(0, 0, 0.015, 0.015))]
        path = tmp_path / "tiny.txt"
        path.write_text(write_problem(problem))
        assert main(["place", str(path)]) == 2


class TestDrcCommand:
    def test_clean_layout(self, placed_file, capsys):
        code = main(["drc", str(placed_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 violation(s)" in out
        assert "GREEN" in out

    def test_violating_layout(self, tmp_path, capsys):
        problem = build_small_problem()
        from repro.geometry import Placement2D

        for i, comp in enumerate(problem.components.values()):
            comp.placement = Placement2D.at(0.02 + i * 0.001, 0.02)
        path = tmp_path / "bad.txt"
        path.write_text(write_problem(problem))
        code = main(["drc", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "RED" in out

    def test_csv_export(self, placed_file, tmp_path):
        csv_path = tmp_path / "markers.csv"
        main(["drc", str(placed_file), "--csv", str(csv_path)])
        text = csv_path.read_text()
        assert text.startswith("ref_a,ref_b,emd_mm,distance_mm,satisfied")


class TestRulesCommand:
    def test_derives_and_writes(self, tmp_path, capsys):
        # Strip existing rules so the command derives fresh ones.
        problem = build_small_problem(with_rules=False)
        src = tmp_path / "bare.txt"
        src.write_text(write_problem(problem))
        out = tmp_path / "ruled.txt"
        code = main(
            ["rules", str(src), "--k-threshold", "0.02", "--max-pairs", "4",
             "-o", str(out)]
        )
        assert code == 0
        ruled = read_problem(out.read_text())
        assert len(ruled.rules.min_distance) >= 1
        assert "PEMD" in capsys.readouterr().out


class TestPerformanceFlags:
    def _bare_file(self, tmp_path):
        problem = build_small_problem(with_rules=False)
        src = tmp_path / "bare.txt"
        src.write_text(write_problem(problem))
        return src

    def test_rules_parser_accepts_perf_flags(self):
        args = build_parser().parse_args(
            ["rules", "board.txt", "--workers", "4", "--no-cache"]
        )
        assert args.workers == 4
        assert args.no_cache is True
        assert args.cache_dir is None

    def test_rules_warm_cache_reports_disk_hits(self, tmp_path, capsys):
        src = self._bare_file(tmp_path)
        cache_dir = tmp_path / "cache"
        argv = ["rules", str(src), "--max-pairs", "2", "--cache-dir", str(cache_dir)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 from disk" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "field solve(s)" in warm
        assert "(0 from disk)" not in warm  # warm run answers from disk

    def test_rules_no_cache_never_touches_disk(self, tmp_path, capsys):
        src = self._bare_file(tmp_path)
        cache_dir = tmp_path / "cache"
        argv = [
            "rules", str(src), "--max-pairs", "2",
            "--cache-dir", str(cache_dir), "--no-cache",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert not cache_dir.exists()

    def test_rules_parallel_matches_serial(self, tmp_path, capsys):
        src = self._bare_file(tmp_path)
        assert main(["rules", str(src), "--max-pairs", "2", "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(
                ["rules", str(src), "--max-pairs", "2", "--no-cache",
                 "--workers", "2"]
            )
            == 0
        )
        parallel = capsys.readouterr().out
        # The printed PEMD lines carry the derived values; they must agree.
        pemd = [line for line in serial.splitlines() if "PEMD" in line]
        assert pemd == [line for line in parallel.splitlines() if "PEMD" in line]


class TestCompactCommand:
    def test_compacts_and_reports(self, placed_file, tmp_path, capsys):
        out = tmp_path / "compact.txt"
        code = main(["compact", str(placed_file), "-o", str(out)])
        assert code == 0
        assert "compaction:" in capsys.readouterr().out
        compacted = read_problem(out.read_text())
        assert all(c.is_placed for c in compacted.components.values())


class TestRefineFlag:
    def test_place_with_refinement(self, problem_file, capsys):
        code = main(["place", str(problem_file), "--refine"])
        assert code == 0
        assert "refinement:" in capsys.readouterr().out


class TestDemoCommand:
    def test_demo_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "demo"
        metrics = tmp_path / "m.json"
        code = main(["demo", "--out-dir", str(out_dir), "--metrics-out", str(metrics)])
        assert code == 0
        assert (out_dir / "spectra.csv").exists()
        assert (out_dir / "report.md").exists()
        assert (out_dir / "baseline.svg").exists()
        assert (out_dir / "optimized.svg").exists()
        report = (out_dir / "report.md").read_text()
        assert report.startswith("# EMI design-flow report")

        # The acceptance check: the metrics JSON holds a span tree with all
        # five flow stages at nonzero wall time and populated counters.
        from repro.obs import RunReport

        run = RunReport.from_json(metrics.read_text())
        for stage in (
            "flow.simulate",
            "flow.sensitivity",
            "flow.rules",
            "flow.placement",
            "flow.verification",
        ):
            span = run.find(stage)
            assert span is not None, f"demo metrics missing {stage}"
            assert span.wall_s > 0.0
        totals = run.totals()
        assert totals["coupling.cache_misses"] > 0
        assert totals["circuit.mna_factorizations"] > 0
        assert totals["placement.components_placed"] > 0
        assert run.meta["command"] == "demo"


class TestObservabilityFlags:
    def test_place_metrics_out(self, problem_file, tmp_path, capsys):
        from repro import obs
        from repro.obs import NullTracer, RunReport

        metrics = tmp_path / "place.json"
        code = main(["place", str(problem_file), "--metrics-out", str(metrics)])
        assert code == 0
        assert f"wrote {metrics}" in capsys.readouterr().out
        run = RunReport.from_json(metrics.read_text())
        run_span = run.find("placement.run")
        assert run_span is not None and run_span.wall_s > 0
        assert run.find("placement.sequential") is not None
        assert run.totals()["placement.candidates_scored"] > 0
        # The CLI restores the null tracer afterwards.
        assert isinstance(obs.get_tracer(), NullTracer)

    def test_place_trace_prints_table(self, problem_file, capsys):
        code = main(["place", str(problem_file), "--trace"])
        assert code == 0
        out = capsys.readouterr().out
        assert "wall [s]" in out
        assert "placement.run" in out
        assert "counters:" in out

    def test_metrics_written_even_on_failure(self, tmp_path, capsys):
        problem = build_small_problem()
        from repro.geometry import Polygon2D
        from repro.placement import Board

        problem.boards = [Board(0, Polygon2D.rectangle(0, 0, 0.015, 0.015))]
        path = tmp_path / "tiny.txt"
        path.write_text(write_problem(problem))
        metrics = tmp_path / "fail.json"
        assert main(["place", str(path), "--metrics-out", str(metrics)]) == 2
        from repro.obs import RunReport

        run = RunReport.from_json(metrics.read_text())
        assert run.find("placement.run") is not None

    def test_without_flags_tracer_stays_null(self, problem_file):
        from repro import obs
        from repro.obs import NullTracer

        assert main(["place", str(problem_file)]) == 0
        assert isinstance(obs.get_tracer(), NullTracer)
