"""Unit tests for the magnetic-dipole coupling approximation."""

import pytest

from repro.components import FilmCapacitorX2, small_bobbin_choke
from repro.coupling import (
    dipole_coupling_factor,
    dipole_mutual_inductance,
    pair_coupling_factor,
)
from repro.geometry import Placement2D


class TestAgainstFullPeec:
    def test_far_field_agreement(self, bobbin):
        other = small_bobbin_choke()
        pa, pb = Placement2D.at(0, 0), Placement2D.at(0.08, 0)
        full = pair_coupling_factor(bobbin, pa, other, pb)
        dip = dipole_coupling_factor(bobbin, pa, other, pb)
        assert dip == pytest.approx(full, rel=0.1)

    def test_sign_agreement(self, bobbin):
        other = small_bobbin_choke()
        for rot in (0.0, 180.0):
            pa = Placement2D.at(0, 0)
            pb = Placement2D.at(0.07, 0, rot)
            full = pair_coupling_factor(bobbin, pa, other, pb)
            dip = dipole_coupling_factor(bobbin, pa, other, pb)
            assert (full > 0) == (dip > 0)

    def test_near_field_diverges_from_peec(self, x2_cap):
        # At contact distance the dipole picture must NOT be trusted;
        # document that by checking the deviation is measurable.
        other = FilmCapacitorX2()
        pa, pb = Placement2D.at(0, 0), Placement2D.at(0.02, 0)
        full = pair_coupling_factor(x2_cap, pa, other, pb)
        dip = dipole_coupling_factor(x2_cap, pa, other, pb)
        assert dip != pytest.approx(full, rel=0.02)


class TestDipoleAlgebra:
    def test_inverse_cube_law(self, bobbin):
        other = small_bobbin_choke()
        pa = Placement2D.at(0, 0)
        m1 = dipole_mutual_inductance(bobbin, pa, other, Placement2D.at(0.05, 0))
        m2 = dipole_mutual_inductance(bobbin, pa, other, Placement2D.at(0.10, 0))
        assert abs(m1 / m2) == pytest.approx(8.0, rel=1e-6)

    def test_axial_twice_broadside(self, bobbin):
        # Coaxial dipoles couple twice as strongly as parallel side-by-side.
        other = small_bobbin_choke()
        pa = Placement2D.at(0, 0)
        axial = dipole_mutual_inductance(bobbin, pa, other, Placement2D.at(0.06, 0))
        broadside = dipole_mutual_inductance(
            bobbin, pa, other, Placement2D.at(0, 0.06)
        )
        assert axial == pytest.approx(-2.0 * broadside, rel=1e-6)

    def test_coincident_rejected(self, bobbin):
        with pytest.raises(ValueError):
            dipole_mutual_inductance(
                bobbin, Placement2D.at(0, 0), small_bobbin_choke(), Placement2D.at(0, 0)
            )

    def test_k_clamped(self, bobbin):
        k = dipole_coupling_factor(
            bobbin, Placement2D.at(0, 0), small_bobbin_choke(), Placement2D.at(1e-4, 0)
        )
        assert -1.0 <= k <= 1.0
