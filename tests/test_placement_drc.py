"""Unit tests for the design-rule checker."""

from repro.components import FilmCapacitorX2
from repro.geometry import Cuboid, Placement2D, Polygon2D, Rect
from repro.placement import (
    Board,
    DesignRuleChecker,
    Keepout3D,
    PlacedComponent,
    PlacementProblem,
)
from repro.rules import GroupCoherenceRule, NetLengthRule

from conftest import build_small_problem


def spread_layout(problem):
    positions = {
        "C1": (0.012, 0.012),
        "C2": (0.068, 0.012),
        "C3": (0.068, 0.048),
        "L1": (0.012, 0.048),
        "L2": (0.040, 0.048),
        "Q1": (0.040, 0.012),
        "D1": (0.040, 0.030),
    }
    for ref, (x, y) in positions.items():
        problem.components[ref].placement = Placement2D.at(x, y)


class TestBodySpacing:
    def test_overlap_detected(self):
        problem = build_small_problem()
        problem.components["C1"].placement = Placement2D.at(0.02, 0.02)
        problem.components["C2"].placement = Placement2D.at(0.025, 0.02)
        violations = DesignRuleChecker(problem).check_body_spacing()
        assert any(v.kind == "overlap" for v in violations)

    def test_clearance_detected(self):
        problem = build_small_problem()
        problem.components["C1"].placement = Placement2D.at(0.02, 0.02)
        # 18 mm wide: edges at 29 and 29.3 -> gap 0.3 mm < 0.5 mm clearance.
        problem.components["C2"].placement = Placement2D.at(0.0383, 0.02)
        violations = DesignRuleChecker(problem).check_body_spacing()
        kinds = {v.kind for v in violations}
        assert "clearance" in kinds and "overlap" not in kinds

    def test_spaced_parts_clean(self):
        problem = build_small_problem()
        spread_layout(problem)
        assert DesignRuleChecker(problem).check_body_spacing() == []

    def test_only_filter(self):
        problem = build_small_problem()
        problem.components["C1"].placement = Placement2D.at(0.02, 0.02)
        problem.components["C2"].placement = Placement2D.at(0.025, 0.02)
        problem.components["C3"].placement = Placement2D.at(0.025, 0.04)
        violations = DesignRuleChecker(problem).check_body_spacing(only="C3")
        assert all("C3" in v.refs for v in violations)


class TestMinDistance:
    def test_violation_reports_emd(self):
        problem = build_small_problem()
        spread_layout(problem)
        problem.components["C2"].placement = Placement2D.at(0.018, 0.012)
        violations = DesignRuleChecker(problem).check_min_distances()
        md = [v for v in violations if set(v.refs) == {"C1", "C2"}]
        assert len(md) == 1
        assert md[0].required > md[0].actual
        assert md[0].deficit > 0.0

    def test_rotation_can_cure_violation(self):
        problem = build_small_problem()
        spread_layout(problem)
        problem.components["C2"].placement = Placement2D.at(0.030, 0.012)
        checker = DesignRuleChecker(problem)
        assert checker.check_min_distances(only="C2")
        problem.components["C2"].placement = Placement2D.at(0.030, 0.012, 90)
        assert not checker.check_min_distances(only="C2")

    def test_unplaced_pairs_skipped(self):
        problem = build_small_problem()
        problem.components["C1"].placement = Placement2D.at(0.02, 0.02)
        assert DesignRuleChecker(problem).check_min_distances() == []

    def test_markers_red_green(self):
        problem = build_small_problem()
        spread_layout(problem)
        problem.components["C2"].placement = Placement2D.at(0.016, 0.012)
        markers = DesignRuleChecker(problem).rule_markers()
        assert len(markers) == len(problem.rules.min_distance)
        bad = [m for m in markers if not m.satisfied]
        assert bad and all(m.color == "red" for m in bad)
        good = [m for m in markers if m.satisfied]
        assert good and all(m.color == "green" for m in good)


class TestKeepinKeepout:
    def test_outside_board_detected(self):
        problem = build_small_problem()
        spread_layout(problem)
        problem.components["C1"].placement = Placement2D.at(0.075, 0.012)
        violations = DesignRuleChecker(problem).check_keepin()
        assert any(v.kind == "keepin" and v.refs == ("C1",) for v in violations)

    def test_keepout_z_offset(self):
        board = Board(
            0,
            Polygon2D.rectangle(0, 0, 0.08, 0.06),
            keepouts=[
                Keepout3D("hs", Cuboid(Rect(0.0, 0.0, 0.04, 0.06), 20e-3, 40e-3))
            ],
        )
        problem = PlacementProblem([board])
        # X2 cap is 15 mm tall: passes under the 20 mm overhang.
        problem.add_component(PlacedComponent("C1", FilmCapacitorX2()))
        problem.components["C1"].placement = Placement2D.at(0.02, 0.03)
        assert DesignRuleChecker(problem).check_keepouts() == []
        # Raise the part on a 10 mm standoff: now it intrudes.
        problem.components["C1"].placement = Placement2D(
            problem.components["C1"].placement.position, 0.0, z_offset=10e-3
        )
        assert DesignRuleChecker(problem).check_keepouts()

    def test_allowed_area_restriction(self):
        from repro.placement import PlacementArea

        board = Board(0, Polygon2D.rectangle(0, 0, 0.08, 0.06))
        board.areas.append(
            PlacementArea("left", Polygon2D.rectangle(0, 0, 0.04, 0.06))
        )
        board.areas.append(
            PlacementArea("right", Polygon2D.rectangle(0.04, 0, 0.08, 0.06))
        )
        problem = PlacementProblem([board])
        problem.add_component(
            PlacedComponent("C1", FilmCapacitorX2(), allowed_areas=("left",))
        )
        problem.components["C1"].placement = Placement2D.at(0.06, 0.03)
        assert DesignRuleChecker(problem).check_keepin()
        problem.components["C1"].placement = Placement2D.at(0.02, 0.03)
        assert not DesignRuleChecker(problem).check_keepin()


class TestGroupsAndNets:
    def test_group_spread_violation(self):
        problem = build_small_problem()
        spread_layout(problem)
        problem.define_group("g", ["C1", "C3"])
        problem.rules.groups.append(
            GroupCoherenceRule(group="g", members=("C1", "C3"), max_spread=0.03)
        )
        violations = DesignRuleChecker(problem).check_groups()
        assert any(v.kind == "group" for v in violations)

    def test_net_length_violation(self):
        problem = build_small_problem()
        spread_layout(problem)
        problem.rules.net_lengths.append(NetLengthRule(net="N1", max_length=1e-3))
        violations = DesignRuleChecker(problem).check_net_lengths()
        assert any(v.kind == "net_length" for v in violations)

    def test_check_all_aggregates(self):
        problem = build_small_problem()
        spread_layout(problem)
        checker = DesignRuleChecker(problem)
        assert len(checker.check_all()) == (
            len(checker.check_body_spacing())
            + len(checker.check_min_distances())
            + len(checker.check_keepin())
            + len(checker.check_keepouts())
            + len(checker.check_groups())
            + len(checker.check_net_lengths())
        )

    def test_is_legal(self):
        problem = build_small_problem()
        spread_layout(problem)
        checker = DesignRuleChecker(problem)
        # The spread layout satisfies spacing and keepin; min distances may
        # or may not hold — consistency check only.
        assert checker.is_legal() == (not checker.check_all())
