"""Unit tests for persistent-cache garbage collection (LRU by mtime)."""

import os

from repro.parallel import PersistentCouplingCache


def make_entry(cache, key, mtime, payload=None):
    cache.put(key, payload or {"k": 0.1})
    path = cache.path_for(key)
    os.utime(path, (mtime, mtime))
    return path


def key(i: int) -> str:
    return f"{i:02x}" + "0" * 62


NOW = 1_000_000.0


class TestAgeEviction:
    def test_entries_older_than_max_age_go(self, tmp_path):
        cache = PersistentCouplingCache(cache_dir=tmp_path)
        old = make_entry(cache, key(1), NOW - 500.0)
        fresh = make_entry(cache, key(2), NOW - 10.0)
        stats = cache.gc(max_age_s=100.0, now=NOW)
        assert stats["scanned"] == 2
        assert stats["evicted"] == 1
        assert stats["kept"] == 1
        assert not old.is_file()
        assert fresh.is_file()

    def test_counter_tracks_evictions(self, tmp_path):
        cache = PersistentCouplingCache(cache_dir=tmp_path)
        make_entry(cache, key(1), NOW - 500.0)
        make_entry(cache, key(2), NOW - 600.0)
        assert cache.evicted == 0
        cache.gc(max_age_s=100.0, now=NOW)
        assert cache.evicted == 2


class TestSizeEviction:
    def test_oldest_evicted_first_until_budget_fits(self, tmp_path):
        cache = PersistentCouplingCache(cache_dir=tmp_path)
        paths = [
            make_entry(cache, key(i), NOW - 100.0 + i, payload={"k": 0.1, "i": i})
            for i in range(4)
        ]
        sizes = [p.stat().st_size for p in paths]
        budget = sizes[2] + sizes[3]  # room for exactly the two newest
        stats = cache.gc(max_size_bytes=budget, now=NOW)
        assert stats["evicted"] == 2
        assert not paths[0].is_file() and not paths[1].is_file()
        assert paths[2].is_file() and paths[3].is_file()
        assert stats["bytes_after"] <= budget

    def test_zero_budget_clears_everything(self, tmp_path):
        cache = PersistentCouplingCache(cache_dir=tmp_path)
        for i in range(3):
            make_entry(cache, key(i), NOW - i)
        stats = cache.gc(max_size_bytes=0, now=NOW)
        assert stats["evicted"] == 3
        assert len(cache) == 0

    def test_within_budget_evicts_nothing(self, tmp_path):
        cache = PersistentCouplingCache(cache_dir=tmp_path)
        make_entry(cache, key(1), NOW)
        stats = cache.gc(max_size_bytes=10 * 1024 * 1024, now=NOW)
        assert stats["evicted"] == 0
        assert stats["bytes_after"] == stats["bytes_before"]


class TestCombined:
    def test_age_then_size(self, tmp_path):
        cache = PersistentCouplingCache(cache_dir=tmp_path)
        ancient = make_entry(cache, key(1), NOW - 1000.0)
        older = make_entry(cache, key(2), NOW - 50.0)
        newest = make_entry(cache, key(3), NOW - 1.0)
        budget = newest.stat().st_size  # post-age survivors must fit one entry
        stats = cache.gc(max_size_bytes=budget, max_age_s=100.0, now=NOW)
        assert stats["evicted"] == 2
        assert not ancient.is_file() and not older.is_file()
        assert newest.is_file()

    def test_bytes_accounting(self, tmp_path):
        cache = PersistentCouplingCache(cache_dir=tmp_path)
        for i in range(3):
            make_entry(cache, key(i), NOW - 1000.0)
        stats = cache.gc(max_age_s=100.0, now=NOW)
        assert stats["bytes_evicted"] == stats["bytes_before"]
        assert stats["bytes_after"] == 0

    def test_empty_cache_is_a_no_op(self, tmp_path):
        cache = PersistentCouplingCache(cache_dir=tmp_path / "missing")
        stats = cache.gc(max_size_bytes=1, max_age_s=1.0, now=NOW)
        assert stats == {
            "scanned": 0,
            "evicted": 0,
            "kept": 0,
            "bytes_before": 0,
            "bytes_after": 0,
            "bytes_evicted": 0,
        }

    def test_survivors_still_readable(self, tmp_path):
        cache = PersistentCouplingCache(cache_dir=tmp_path)
        make_entry(cache, key(1), NOW - 1000.0)
        make_entry(cache, key(2), NOW, payload={"k": 0.75})
        cache.gc(max_age_s=100.0, now=NOW)
        assert cache.get(key(2)) == {"k": 0.75}
        assert cache.get(key(1)) is None
