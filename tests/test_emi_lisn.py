"""Unit tests for the CISPR 25 artificial network."""

import numpy as np
import pytest

from repro.circuit import Circuit, MnaSystem
from repro.emi import LISN_INDUCTANCE, RECEIVER_IMPEDANCE, add_lisn


def lisn_fixture() -> tuple[Circuit, object]:
    c = Circuit()
    c.add_vsource("VSUP", "supply", "0", ac=0.0)
    ports = add_lisn(c, "LISN", "supply", "eut")
    return c, ports


class TestTopology:
    def test_created_elements(self):
        c, _ = lisn_fixture()
        names = {e.name for e in c.elements}
        assert {"LISN.L", "LISN.Csup", "LISN.Cmeas", "LISN.Rrx", "LISN.Rdis"} <= names

    def test_ports(self):
        _, ports = lisn_fixture()
        assert ports.measurement_node == "LISN.meas"
        assert ports.series_inductor.inductance == LISN_INDUCTANCE

    def test_standard_values(self):
        assert LISN_INDUCTANCE == 5e-6
        assert RECEIVER_IMPEDANCE == 50.0


class TestImpedance:
    def eut_impedance(self, freq: float) -> float:
        """|Z| seen from the EUT port (supply side AC-shorted)."""
        c, _ = lisn_fixture()
        c.add_isource("ITEST", "0", "eut", ac=1.0)
        sol = MnaSystem(c).solve_ac(freq)
        return abs(sol.voltage("eut"))

    def test_low_frequency_impedance_small(self):
        # At 10 kHz the 5 uH dominates: |Z| ~ wL ~ 0.3 ohm.
        z = self.eut_impedance(10e3)
        assert z < 3.0

    def test_midband_impedance_near_50(self):
        # CISPR AN: |Z| approaches the 50 ohm receiver in band B.
        z = self.eut_impedance(10e6)
        assert 35.0 < z < 55.0

    def test_impedance_rises_with_frequency(self):
        z1 = self.eut_impedance(100e3)
        z2 = self.eut_impedance(2e6)
        assert z2 > z1


class TestMeasurementPath:
    def test_noise_current_produces_reading(self):
        c, ports = lisn_fixture()
        c.add_isource("INOISE", "0", "eut", ac=1e-3)
        sol = MnaSystem(c).solve_ac(5e6)
        v_meas = abs(sol.voltage(ports.measurement_node))
        # ~1 mA into ~50 ohm => ~50 mV at the port.
        assert 0.02 < v_meas < 0.06

    def test_meas_tracks_eut_above_coupling_corner(self):
        c, ports = lisn_fixture()
        c.add_isource("INOISE", "0", "eut", ac=1e-3)
        sol = MnaSystem(c).solve_ac(20e6)
        ratio = abs(sol.voltage(ports.measurement_node)) / abs(sol.voltage("eut"))
        assert ratio == pytest.approx(1.0, abs=0.1)

    def test_dc_blocked_from_receiver(self):
        c, ports = lisn_fixture()
        c.add_isource("INOISE", "0", "eut", ac=1e-3)
        sol = MnaSystem(c).solve_ac(10.0)  # far below the 0.1 uF corner
        assert abs(sol.voltage(ports.measurement_node)) < abs(sol.voltage("eut")) * 0.5

    def test_supply_decoupled_at_hf(self):
        c, ports = lisn_fixture()
        c.add_isource("INOISE", "0", "eut", ac=1e-3)
        sol = MnaSystem(c).solve_ac(10e6)
        # The 5 uH chokes HF off the supply node.
        assert abs(sol.voltage("supply")) < abs(sol.voltage("eut")) * 0.1

    def test_two_lisns_coexist(self):
        c = Circuit()
        c.add_vsource("VSUP", "supply", "0", ac=0.0)
        p1 = add_lisn(c, "LISN_P", "supply", "eut_p")
        p2 = add_lisn(c, "LISN_N", "supply", "eut_n")
        c.add_resistor("RX", "eut_p", "eut_n", 10.0)
        sol = MnaSystem(c).solve_ac(1e6)
        assert p1.measurement_node != p2.measurement_node
        assert np.isfinite(abs(sol.voltage(p1.measurement_node)))
