"""Unit tests for the effective-permeability correction."""

import pytest

from repro.peec import (
    AIR_CORE,
    FERRITE_N87,
    IRON_POWDER_26,
    CoreMaterial,
    demagnetizing_factor_rod,
    effective_permeability,
    stray_coupling_scale,
)


class TestDemagnetizingFactor:
    def test_sphere_limit_for_stubby(self):
        assert demagnetizing_factor_rod(0.01, 0.01) == pytest.approx(1.0 / 3.0)

    def test_decreases_with_aspect_ratio(self):
        n2 = demagnetizing_factor_rod(0.02, 0.01)
        n5 = demagnetizing_factor_rod(0.05, 0.01)
        n10 = demagnetizing_factor_rod(0.10, 0.01)
        assert n2 > n5 > n10 > 0.0

    def test_long_rod_small_n(self):
        assert demagnetizing_factor_rod(0.5, 0.01) < 0.002

    def test_invalid(self):
        with pytest.raises(ValueError):
            demagnetizing_factor_rod(0.0, 0.01)


class TestEffectivePermeability:
    def test_closed_core_keeps_mu(self):
        assert effective_permeability(2000.0, 0.0) == pytest.approx(2000.0)

    def test_open_core_saturates_by_shape(self):
        # With N = 0.1, mu_eff -> ~1/N regardless of material mu.
        assert effective_permeability(2000.0, 0.1) == pytest.approx(10.0, rel=0.01)
        assert effective_permeability(10000.0, 0.1) == pytest.approx(10.0, rel=0.01)

    def test_air_unchanged(self):
        assert effective_permeability(1.0, 0.3) == pytest.approx(1.0)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            effective_permeability(0.5, 0.1)
        with pytest.raises(ValueError):
            effective_permeability(100.0, 1.5)

    def test_monotone_in_mu(self):
        lo = effective_permeability(10.0, 0.05)
        hi = effective_permeability(100.0, 0.05)
        assert hi > lo


class TestMaterials:
    def test_catalogue_sanity(self):
        assert AIR_CORE.mu_r == 1.0
        assert FERRITE_N87.mu_r > 1000.0
        assert IRON_POWDER_26.mu_r < FERRITE_N87.mu_r

    def test_material_mu_eff(self):
        assert FERRITE_N87.mu_eff(1.0 / 3.0) < 4.0

    def test_custom_material(self):
        m = CoreMaterial("test", mu_r=50.0, stray_fraction=0.5)
        assert m.mu_eff(0.02) == pytest.approx(50.0 / (1.0 + 0.02 * 49.0))


class TestStrayScale:
    def test_air_identity(self):
        assert stray_coupling_scale(1.0, 1.0) == pytest.approx(1.0)

    def test_geometric_mean(self):
        assert stray_coupling_scale(4.0, 9.0) == pytest.approx(6.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            stray_coupling_scale(0.5, 1.0)
