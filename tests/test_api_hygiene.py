"""Meta-tests: public-API hygiene across every package.

Production-quality guardrails: every package's ``__all__`` names must
actually exist, every exported callable/class must carry a docstring, and
the package docstrings themselves must be present.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.geometry",
    "repro.peec",
    "repro.components",
    "repro.circuit",
    "repro.emi",
    "repro.coupling",
    "repro.sensitivity",
    "repro.rules",
    "repro.placement",
    "repro.routing",
    "repro.converters",
    "repro.io",
    "repro.viz",
    "repro.core",
    "repro.obs",
    "repro.cli",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_has_docstring(package):
    module = importlib.import_module(package)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_exist(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert exported, f"{package} exports nothing"
    for name in exported:
        assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package", PACKAGES)
def test_exported_objects_documented(package):
    module = importlib.import_module(package)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if (inspect.isclass(obj) or inspect.isfunction(obj)) and not (
            obj.__doc__ and obj.__doc__.strip()
        ):
            undocumented.append(name)
    assert not undocumented, f"{package}: undocumented exports {undocumented}"


@pytest.mark.parametrize("package", PACKAGES)
def test_exported_classes_have_documented_public_methods(package):
    module = importlib.import_module(package)
    offenders = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if not inspect.isclass(obj):
            continue
        for method_name, method in inspect.getmembers(obj, inspect.isfunction):
            if method_name.startswith("_"):
                continue
            if method.__name__ == "<lambda>":
                continue  # dataclass field defaults holding callables
            if method.__qualname__.split(".")[0] != obj.__name__:
                continue  # inherited from elsewhere (e.g. dataclass helpers)
            if not (method.__doc__ and method.__doc__.strip()):
                offenders.append(f"{name}.{method_name}")
    assert not offenders, f"{package}: undocumented methods {sorted(set(offenders))}"
