"""Unit tests for the CSV exporters."""

import numpy as np
import pytest

from repro.emi import Spectrum
from repro.geometry import Placement2D
from repro.placement import AutoPlacer
from repro.viz import couplings_to_csv, layout_to_csv, markers_to_csv, spectrum_to_csv

from conftest import build_small_problem


def spectrum(scale=1.0) -> Spectrum:
    freqs = np.array([1e6, 2e6, 3e6])
    return Spectrum(freqs, scale * np.array([1e-3, 1e-4, 1e-5], dtype=complex))


class TestSpectrumCsv:
    def test_header_and_rows(self):
        text = spectrum_to_csv({"pred": spectrum(), "meas": spectrum(2.0)})
        lines = text.strip().splitlines()
        assert lines[0] == "freq_hz,pred_dbuv,meas_dbuv"
        assert len(lines) == 4
        first = lines[1].split(",")
        assert float(first[0]) == 1e6
        assert float(first[1]) == pytest.approx(60.0, abs=0.01)

    def test_grid_mismatch_rejected(self):
        other = Spectrum(np.array([1e6]), np.array([1.0], dtype=complex))
        with pytest.raises(ValueError):
            spectrum_to_csv({"a": spectrum(), "b": other})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            spectrum_to_csv({})


class TestCouplingsCsv:
    def test_sorted_by_magnitude(self):
        text = couplings_to_csv({("A", "B"): 0.01, ("C", "D"): -0.1})
        lines = text.strip().splitlines()
        assert lines[1].startswith("C,D")
        assert lines[2].startswith("A,B")


class TestLayoutCsv:
    def test_placed_and_unplaced(self):
        problem = build_small_problem()
        problem.components["C1"].placement = Placement2D.at(0.01, 0.02, 90)
        text = layout_to_csv(problem)
        lines = text.strip().splitlines()
        assert len(lines) == 1 + len(problem.components)
        c1_row = next(line for line in lines if line.startswith("C1,"))
        assert ",10.000,20.000,90.0," in c1_row
        d1_row = next(line for line in lines if line.startswith("D1,"))
        assert ",,," in d1_row  # unplaced: empty coordinates


class TestMarkersCsv:
    def test_all_rules_exported(self):
        problem = build_small_problem()
        AutoPlacer(problem).run()
        text = markers_to_csv(problem)
        lines = text.strip().splitlines()
        assert len(lines) == 1 + len(problem.rules.min_distance)
        assert all(line.endswith(",1") for line in lines[1:])  # all satisfied
