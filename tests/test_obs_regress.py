"""Unit tests for the regression engine (repro.obs.regress)."""

from repro.obs import RunReport, Span, Thresholds, Tracer, compare
from repro.obs.regress import span_walls


def report_with(walls: dict[str, float], counters: dict[str, float] | None = None):
    """A flat report: root children named/timed per ``walls``."""
    root = Span("run")
    root.count = 1
    root.wall_s = sum(walls.values()) or 1.0
    for name, wall in walls.items():
        child = root.child(name)
        child.count = 1
        child.wall_s = wall
        for cname, value in (counters or {}).items():
            child.counters[cname] = value
        counters = None  # counters land on the first child only
    return RunReport(root=root)


class TestSpanWalls:
    def test_paths_are_slash_joined(self):
        tracer = Tracer()
        with tracer.span("a"), tracer.span("b"):
            pass
        walls = span_walls(tracer.report())
        assert set(walls) == {"run", "run/a", "run/a/b"}

    def test_same_name_under_different_parents_distinct(self):
        tracer = Tracer()
        with tracer.span("a"), tracer.span("hot"):
            pass
        with tracer.span("b"), tracer.span("hot"):
            pass
        walls = span_walls(tracer.report())
        assert "run/a/hot" in walls and "run/b/hot" in walls


class TestSpanClassification:
    def test_identical_runs_ok(self):
        r = report_with({"stage": 1.0})
        verdict = compare(r, [r])
        assert verdict.ok
        assert all(d.status == "ok" for d in verdict.deltas)

    def test_2x_slowdown_is_regression(self):
        base = report_with({"stage": 1.0})
        slow = report_with({"stage": 2.0})
        verdict = compare(slow, [base])
        assert not verdict.ok
        names = [d.name for d in verdict.regressions]
        assert "run/stage" in names

    def test_speedup_is_improvement(self):
        base = report_with({"stage": 1.0})
        fast = report_with({"stage": 0.4})
        verdict = compare(fast, [base])
        assert verdict.ok
        assert any(
            d.name == "run/stage" and d.status == "improvement"
            for d in verdict.deltas
        )

    def test_micro_spans_never_flag(self):
        base = report_with({"blip": 0.0001})
        slow = report_with({"blip": 0.004})  # 40x but under the floor
        verdict = compare(slow, [base])
        assert verdict.ok

    def test_floor_is_configurable(self):
        base = report_with({"blip": 0.0001})
        slow = report_with({"blip": 0.004})
        verdict = compare(slow, [base], Thresholds(min_wall_s=0.0001))
        assert not verdict.ok

    def test_new_and_missing_do_not_fail_gate(self):
        base = report_with({"old_stage": 1.0})
        cur = report_with({"new_stage": 1.0})
        verdict = compare(cur, [base])
        statuses = {d.name: d.status for d in verdict.deltas if d.kind == "span"}
        assert statuses["run/old_stage"] == "missing"
        assert statuses["run/new_stage"] == "new"
        assert verdict.ok

    def test_threshold_boundary(self):
        base = report_with({"stage": 1.0})
        just_under = report_with({"stage": 1.29})
        just_over = report_with({"stage": 1.31})
        assert compare(just_under, [base]).ok
        assert not compare(just_over, [base]).ok


class TestRollingBaseline:
    def test_median_shrugs_off_one_noisy_run(self):
        baseline = [
            report_with({"stage": 1.0}),
            report_with({"stage": 9.0}),  # one pathological outlier
            report_with({"stage": 1.1}),
        ]
        # Median is 1.1: a 1.2 s run is fine, a 2.0 s run regresses.
        assert compare(report_with({"stage": 1.2}), baseline).ok
        verdict = compare(report_with({"stage": 2.0}), baseline)
        assert not verdict.ok
        assert verdict.baseline_runs == 3


class TestCounters:
    def test_counter_growth_is_regression(self):
        base = report_with({"stage": 1.0}, {"peec.filament_pairs": 100})
        grown = report_with({"stage": 1.0}, {"peec.filament_pairs": 150})
        verdict = compare(grown, [base])
        assert [d.name for d in verdict.regressions] == ["peec.filament_pairs"]

    def test_counter_shrink_is_improvement(self):
        base = report_with({"stage": 1.0}, {"solves": 100})
        less = report_with({"stage": 1.0}, {"solves": 50})
        verdict = compare(less, [base])
        assert verdict.ok
        assert any(
            d.name == "solves" and d.status == "improvement" for d in verdict.deltas
        )

    def test_sub_unit_jitter_ignored(self):
        base = report_with({"stage": 1.0}, {"solves": 3})
        same = report_with({"stage": 1.0}, {"solves": 3.4})
        assert all(d.status in ("ok", "new") for d in compare(same, [base]).deltas)

    def test_zero_baseline_counter(self):
        base = report_with({"stage": 1.0}, {"solves": 0})
        grown = report_with({"stage": 1.0}, {"solves": 10})
        verdict = compare(grown, [base])
        delta = next(d for d in verdict.deltas if d.name == "solves")
        assert delta.status == "regression"
        assert delta.ratio is None


class TestVerdictRendering:
    def test_to_dict_is_machine_readable(self):
        import json

        base = report_with({"stage": 1.0})
        verdict = compare(report_with({"stage": 2.0}), [base])
        data = json.loads(json.dumps(verdict.to_dict()))
        assert data["ok"] is False
        assert data["baseline_runs"] == 1
        # Both run/stage and the root (whose wall is the sum) regress.
        assert data["regressions"] == 2
        assert data["thresholds"]["wall_rel"] == 0.30
        kinds = {d["kind"] for d in data["deltas"]}
        assert kinds == {"span"}

    def test_table_sorts_regressions_first(self):
        base = report_with({"fast": 1.0, "slow": 1.0})
        cur = report_with({"fast": 0.9, "slow": 3.0})
        lines = compare(cur, [base]).table().splitlines()
        assert "slow" in lines[1]
        assert "regression" in lines[1]

    def test_table_messages(self):
        base = report_with({"stage": 1.0})
        verdict = compare(report_with({"stage": 1.0}), [base])
        assert verdict.table(show_ok=False) == "(all metrics within thresholds)"
        empty = compare(RunReport(root=Span("run")), [])
        # A root-only report vs an empty baseline: root rates "new".
        assert "REGRESSION" not in empty.summary()

    def test_summary_counts(self):
        base = report_with({"a": 1.0, "b": 1.0})
        cur = report_with({"a": 5.0, "b": 0.2})
        summary = compare(cur, [base]).summary()
        # run/a and the root regress; run/b improves.
        assert "2 regression(s)" in summary
        assert "1 improvement(s)" in summary
