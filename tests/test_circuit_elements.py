"""Unit tests for circuit element primitives."""

import pytest

from repro.circuit import (
    Capacitor,
    CurrentSource,
    IdealDiode,
    Inductor,
    MutualCoupling,
    Resistor,
    Switch,
    VoltageSource,
)


class TestValidation:
    def test_same_node_rejected(self):
        with pytest.raises(ValueError):
            Resistor("R1", "a", "a", 1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Resistor("", "a", "b", 1.0)

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ValueError):
            Resistor("R1", "a", "b", 0.0)
        with pytest.raises(ValueError):
            Capacitor("C1", "a", "b", -1e-9)
        with pytest.raises(ValueError):
            Inductor("L1", "a", "b", 0.0)

    def test_coupling_bounds(self):
        with pytest.raises(ValueError):
            MutualCoupling("K1", "L1", "L2", 1.5)
        with pytest.raises(ValueError):
            MutualCoupling("K1", "L1", "L1", 0.5)

    def test_coupling_negative_k_allowed(self):
        k = MutualCoupling("K1", "L1", "L2", -0.3)
        assert k.k == -0.3

    def test_diode_ac_state(self):
        with pytest.raises(ValueError):
            IdealDiode("D1", "a", "b", ac_state="maybe")


class TestSources:
    def test_vsource_defaults(self):
        v = VoltageSource("V1", "a", "0")
        assert v.value_at_time(0.0) == 0.0
        assert v.phasor_at(1e6) == 0.0

    def test_vsource_waveform(self):
        v = VoltageSource("V1", "a", "0", dc=5.0, waveform=lambda t: 3.0 * t)
        assert v.value_at_time(2.0) == pytest.approx(6.0)

    def test_vsource_dc_fallback(self):
        v = VoltageSource("V1", "a", "0", dc=5.0)
        assert v.value_at_time(123.0) == 5.0

    def test_vsource_spectrum_overrides_ac(self):
        v = VoltageSource("V1", "a", "0", ac=1.0, spectrum=lambda f: 2.0 + 0j)
        assert v.phasor_at(1e6) == 2.0 + 0j

    def test_isource_symmetry(self):
        i = CurrentSource("I1", "a", "0", dc=0.1, ac=0.5j)
        assert i.value_at_time(0.0) == pytest.approx(0.1)
        assert i.phasor_at(1.0) == 0.5j


class TestSwitchAndDiode:
    def test_switch_control(self):
        s = Switch("S1", "a", "b", r_on=0.01, r_off=1e6, control=lambda t: t < 1.0)
        assert s.resistance_at(0.5) == 0.01
        assert s.resistance_at(1.5) == 1e6

    def test_switch_ac_state(self):
        s = Switch("S1", "a", "b", ac_closed=False)
        assert s.ac_resistance() == s.r_off

    def test_nodes(self):
        d = IdealDiode("D1", "anode", "cathode")
        assert d.nodes() == ("anode", "cathode")
