"""Smoke tests: every example script must run cleanly end to end.

Examples are the public face of the library; this guard keeps them from
rotting when APIs move.  Each script runs in a subprocess with the repo's
interpreter and must exit 0 without writing to stderr beyond warnings.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_all_examples_discovered():
    # The repository promises at least the documented example set.
    assert len(SCRIPTS) >= 6
    assert "quickstart.py" in SCRIPTS
    assert "buck_converter_emi.py" in SCRIPTS
