"""Unit tests for polygons (placement areas)."""

import math

import pytest

from repro.geometry import Polygon2D, Vec2, convex_hull


def unit_square() -> Polygon2D:
    return Polygon2D.rectangle(0.0, 0.0, 1.0, 1.0)


def l_shape() -> Polygon2D:
    return Polygon2D(
        [
            Vec2(0.0, 0.0),
            Vec2(2.0, 0.0),
            Vec2(2.0, 1.0),
            Vec2(1.0, 1.0),
            Vec2(1.0, 2.0),
            Vec2(0.0, 2.0),
        ]
    )


class TestConstruction:
    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon2D([Vec2(0, 0), Vec2(1, 0)])

    def test_cw_input_normalised_to_ccw(self):
        cw = Polygon2D([Vec2(0, 0), Vec2(0, 1), Vec2(1, 1), Vec2(1, 0)])
        ccw = unit_square()
        assert cw.area() == pytest.approx(ccw.area())
        # Signed area of stored vertices must be positive for both.
        assert cw.centroid().is_close(ccw.centroid())

    def test_rectangle_invalid_extent(self):
        with pytest.raises(ValueError):
            Polygon2D.rectangle(0.0, 0.0, 0.0, 1.0)


class TestMeasures:
    def test_square_area(self):
        assert unit_square().area() == pytest.approx(1.0)

    def test_l_shape_area(self):
        assert l_shape().area() == pytest.approx(3.0)

    def test_perimeter(self):
        assert unit_square().perimeter() == pytest.approx(4.0)

    def test_centroid_square(self):
        assert unit_square().centroid().is_close(Vec2(0.5, 0.5))

    def test_bbox(self):
        assert l_shape().bbox() == (0.0, 0.0, 2.0, 2.0)

    def test_regular_polygon_approximates_circle(self):
        poly = Polygon2D.regular(Vec2(0.0, 0.0), 1.0, 64)
        assert poly.area() == pytest.approx(math.pi, rel=0.01)


class TestContainment:
    def test_interior_point(self):
        assert unit_square().contains_point(Vec2(0.5, 0.5))

    def test_exterior_point(self):
        assert not unit_square().contains_point(Vec2(1.5, 0.5))

    def test_boundary_point_counts_inside(self):
        assert unit_square().contains_point(Vec2(1.0, 0.5))

    def test_vertex_counts_inside(self):
        assert unit_square().contains_point(Vec2(0.0, 0.0))

    def test_l_shape_notch_excluded(self):
        assert not l_shape().contains_point(Vec2(1.5, 1.5))

    def test_contains_rect_inside(self):
        assert unit_square().contains_rect(0.1, 0.1, 0.9, 0.9)

    def test_contains_rect_crossing_boundary(self):
        assert not unit_square().contains_rect(0.5, 0.5, 1.5, 0.9)

    def test_contains_rect_in_l_notch(self):
        # A rect inside the notch region must be rejected outright.
        assert not l_shape().contains_rect(1.2, 1.2, 1.8, 1.8)

    def test_intersects_rect(self):
        assert unit_square().intersects_rect(0.9, 0.9, 2.0, 2.0)
        assert not unit_square().intersects_rect(1.1, 1.1, 2.0, 2.0)

    def test_rect_containing_polygon_intersects(self):
        assert unit_square().intersects_rect(-1.0, -1.0, 2.0, 2.0)


class TestErosion:
    def test_eroded_square_area(self):
        inner = unit_square().eroded(0.1)
        assert inner is not None
        assert inner.area() == pytest.approx(0.64, rel=1e-6)

    def test_erosion_too_large_returns_none(self):
        assert unit_square().eroded(0.6) is None

    def test_zero_margin_is_copy(self):
        same = unit_square().eroded(0.0)
        assert same is not None
        assert same.area() == pytest.approx(1.0)

    def test_eroded_contains_only_interior(self):
        inner = unit_square().eroded(0.2)
        assert inner is not None
        assert inner.contains_point(Vec2(0.5, 0.5))
        assert not inner.contains_point(Vec2(0.1, 0.1))


class TestSampling:
    def test_boundary_samples_on_boundary(self):
        pts = unit_square().boundary_samples(0.25)
        assert len(pts) >= 16
        for p in pts:
            on_edge = (
                abs(p.x) < 1e-9
                or abs(p.x - 1.0) < 1e-9
                or abs(p.y) < 1e-9
                or abs(p.y - 1.0) < 1e-9
            )
            assert on_edge

    def test_grid_samples_inside(self):
        pts = unit_square().grid_samples(0.3)
        assert pts
        assert all(unit_square().contains_point(p) for p in pts)

    def test_bad_spacing_raises(self):
        with pytest.raises(ValueError):
            unit_square().boundary_samples(0.0)
        with pytest.raises(ValueError):
            unit_square().grid_samples(-1.0)


class TestConvexHull:
    def test_hull_of_square_plus_interior(self):
        pts = [Vec2(0, 0), Vec2(1, 0), Vec2(1, 1), Vec2(0, 1), Vec2(0.5, 0.5)]
        hull = convex_hull(pts)
        assert len(hull) == 4

    def test_hull_collinear(self):
        pts = [Vec2(0, 0), Vec2(1, 1), Vec2(2, 2)]
        hull = convex_hull(pts)
        assert len(hull) <= 2 or all(p.x == p.y for p in hull)
