"""Unit tests for the netlist -> placement-problem importer."""

import pytest

from repro.circuit import parse_netlist
from repro.components import CommonModeChoke, FilmCapacitorX2
from repro.io import default_part_for, problem_from_netlist
from repro.placement import AutoPlacer


PI_FILTER = """
V1 in 0 ac=1
C1 in 0 1.5u esr=15m esl=14n
L1 in mid 5.5u esr=20m
C2 mid 0 1.5u esr=15m esl=14n
C3 mid 0 470u esr=60m esl=10n
R1 mid out 10
C4 out 0 10n
"""


class TestDefaultParts:
    def test_capacitor_by_value(self):
        c = parse_netlist("C1 a 0 470u").elements[0]
        assert type(default_part_for(c)).__name__ == "ElectrolyticCapacitor"
        c = parse_netlist("C1 a 0 1u").elements[0]
        assert type(default_part_for(c)).__name__ == "FilmCapacitorX2"
        c = parse_netlist("C1 a 0 10n").elements[0]
        assert type(default_part_for(c)).__name__ == "CeramicCapacitor"

    def test_inductor_keeps_value(self):
        l = parse_netlist("L1 a b 33u").elements[0]
        part = default_part_for(l)
        assert part.inductance == pytest.approx(33e-6)

    def test_resistor_value(self):
        r = parse_netlist("R1 a b 4.7k").elements[0]
        assert default_part_for(r).resistance == pytest.approx(4.7e3)

    def test_sources_become_connectors(self):
        v = parse_netlist("V1 a 0 ac=1").elements[0]
        assert type(default_part_for(v)).__name__ == "Connector"


class TestImport:
    def test_expanded_parasitics_collapse(self):
        problem = problem_from_netlist(PI_FILTER)
        # C1 expanded to C1.C/C1.ESR/C1.ESL in the circuit, but places once.
        assert set(problem.components) == {"V1", "C1", "L1", "C2", "C3", "R1", "C4"}

    def test_nets_reflect_shared_nodes(self):
        problem = problem_from_netlist(PI_FILTER)
        by_name = {n.name: n for n in problem.nets}
        assert {r for r, _ in by_name["N_mid"].pins} == {"L1", "C2", "C3", "R1"}

    def test_ground_not_a_net(self):
        problem = problem_from_netlist(PI_FILTER)
        assert not any(n.name == "N_0" for n in problem.nets)

    def test_part_map_overrides(self):
        problem = problem_from_netlist(
            PI_FILTER, part_map={"L1": CommonModeChoke(part_number="L1-CMC")}
        )
        assert type(problem.components["L1"].component).__name__ == "CommonModeChoke"

    def test_board_dimensions(self):
        problem = problem_from_netlist(PI_FILTER, board_width=0.1, board_height=0.05)
        xmin, ymin, xmax, ymax = problem.board(0).outline.bbox()
        assert xmax - xmin == pytest.approx(0.1)

    def test_empty_netlist_rejected(self):
        with pytest.raises(ValueError):
            problem_from_netlist("* nothing here\n")

    def test_imported_problem_placeable(self):
        problem = problem_from_netlist(PI_FILTER)
        report = AutoPlacer(problem).run()
        assert report.placed_count == len(problem.components)
        assert report.violations_after == 0

    def test_explicit_parts_keep_pads(self):
        problem = problem_from_netlist(
            "C1 a b 1u\nC2 b c 1u\n",
            part_map={"C1": FilmCapacitorX2(part_number="C1-X2")},
        )
        net_b = next(n for n in problem.nets if n.name == "N_b")
        assert ("C1", "2") in net_b.pins or ("C1", "1") in net_b.pins
