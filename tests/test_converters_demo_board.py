"""Unit tests for the Fig. 9 demo board generator (29 devices, 100 rules)."""

import pytest

from repro.converters import (
    DEMO_DEVICE_COUNT,
    DEMO_RULE_COUNT,
    build_demo_board,
    layout_couplings,
)


class TestDemoBoard:
    def test_paper_quoted_sizes(self):
        problem = build_demo_board()
        assert len(problem.components) == DEMO_DEVICE_COUNT == 29
        assert len(problem.rules.min_distance) == DEMO_RULE_COUNT == 100
        assert len(problem.groups) == 3

    def test_rules_reference_existing_parts(self):
        problem = build_demo_board()
        for rule in problem.rules.min_distance:
            assert rule.ref_a in problem.components
            assert rule.ref_b in problem.components

    def test_pemd_range_sane(self):
        problem = build_demo_board()
        for rule in problem.rules.min_distance:
            assert 0.003 <= rule.pemd <= 0.04

    def test_strong_field_parts_rule_dense(self):
        problem = build_demo_board()
        choke_rules = problem.rules.rules_involving("L1")
        resistor_rules = problem.rules.rules_involving("R1")
        assert len(choke_rules) > len(resistor_rules)

    def test_groups_are_disjoint(self):
        problem = build_demo_board()
        seen: set[str] = set()
        for g in problem.groups:
            assert not (set(g.members) & seen)
            seen.update(g.members)

    def test_custom_board_size(self):
        problem = build_demo_board(board_width=0.12, board_height=0.09)
        xmin, _, xmax, _ = problem.board(0).outline.bbox()
        assert xmax - xmin == pytest.approx(0.12)


class TestLayoutCouplings:
    def test_empty_for_unplaced(self):
        problem = build_demo_board()
        assert layout_couplings(problem) == {}

    def test_pairs_sorted_and_floored(self):
        from repro.geometry import Placement2D

        problem = build_demo_board()
        for i, ref in enumerate(["CX1", "CX2", "L1"]):
            problem.components[ref].placement = Placement2D.at(0.02 + 0.025 * i, 0.02)
        ks = layout_couplings(problem, refdes_of_interest=["CX1", "CX2", "L1"])
        assert all(a < b for a, b in ks)
        assert all(abs(k) >= 1e-6 for k in ks.values())
