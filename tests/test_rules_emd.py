"""Unit tests for the EMD = PEMD * max(|cos alpha|, residual) law."""

import math

import pytest

from repro.components import (
    BobbinChoke,
    FilmCapacitorX2,
    cm_choke_3w,
    small_bobbin_choke,
)
from repro.geometry import Placement2D
from repro.rules import (
    axis_angle,
    effective_min_distance,
    emd_factor,
    emd_for_pair,
)


class TestAxisAngle:
    def test_parallel_caps(self, x2_cap):
        a = axis_angle(
            x2_cap, Placement2D.at(0, 0), FilmCapacitorX2(), Placement2D.at(0.03, 0)
        )
        assert a == pytest.approx(0.0, abs=1e-6)

    def test_perpendicular_caps(self, x2_cap):
        a = axis_angle(
            x2_cap, Placement2D.at(0, 0), FilmCapacitorX2(), Placement2D.at(0.03, 0, 90)
        )
        assert a == pytest.approx(math.pi / 2.0, abs=1e-6)

    def test_folded_to_first_quadrant(self, x2_cap):
        a = axis_angle(
            x2_cap, Placement2D.at(0, 0), FilmCapacitorX2(), Placement2D.at(0.03, 0, 180)
        )
        assert a == pytest.approx(0.0, abs=1e-6)

    def test_cap_vs_vertical_choke(self, x2_cap):
        vert = BobbinChoke(orientation="vertical")
        a = axis_angle(x2_cap, Placement2D.at(0, 0), vert, Placement2D.at(0.03, 0))
        assert a == pytest.approx(math.pi / 2.0, abs=1e-3)


class TestEffectiveMinDistance:
    def test_paper_cosine_law(self):
        pemd = 0.03
        assert effective_min_distance(pemd, 0.0) == pytest.approx(pemd)
        assert effective_min_distance(pemd, math.radians(60)) == pytest.approx(
            pemd * 0.5
        )
        assert effective_min_distance(pemd, math.pi / 2.0) == pytest.approx(0.0, abs=1e-12)

    def test_residual_floor(self):
        assert effective_min_distance(0.03, math.pi / 2.0, residual=0.5) == pytest.approx(
            0.015
        )

    def test_cos_dominates_when_larger(self):
        assert effective_min_distance(0.03, 0.0, residual=0.5) == pytest.approx(0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_min_distance(-0.01, 0.0)
        with pytest.raises(ValueError):
            effective_min_distance(0.01, 0.0, residual=2.0)


class TestEmdForPair:
    def test_rotating_by_90_reduces_emd(self, x2_cap):
        other = FilmCapacitorX2()
        pemd = 0.03
        full = emd_for_pair(
            x2_cap, Placement2D.at(0, 0), other, Placement2D.at(0.03, 0), pemd
        )
        reduced = emd_for_pair(
            x2_cap, Placement2D.at(0, 0), other, Placement2D.at(0.03, 0, 90), pemd
        )
        assert full == pytest.approx(pemd)
        assert reduced == pytest.approx(0.0, abs=1e-9)

    def test_rule_residual_respected(self, x2_cap):
        other = FilmCapacitorX2()
        reduced = emd_for_pair(
            x2_cap,
            Placement2D.at(0, 0),
            other,
            Placement2D.at(0.03, 0, 90),
            0.03,
            rule_residual=0.8,
        )
        assert reduced == pytest.approx(0.024)

    def test_vertical_axis_component_keeps_full_pemd(self, x2_cap):
        vert = BobbinChoke(orientation="vertical")
        for rot in (0.0, 45.0, 90.0):
            emd = emd_for_pair(
                x2_cap, Placement2D.at(0, 0), vert, Placement2D.at(0.03, 0, rot), 0.03
            )
            assert emd == pytest.approx(0.03, rel=1e-3)

    def test_three_winding_choke_floor(self, x2_cap):
        choke = cm_choke_3w()
        emd = emd_for_pair(
            x2_cap, Placement2D.at(0, 0), choke, Placement2D.at(0.04, 0), 0.03
        )
        # The vertical net axis gives alpha = 90 deg; the 0.6 residual of
        # the rotating stray field keeps 60 % of the rule.
        assert emd >= 0.03 * 0.6 - 1e-9

    def test_factor_bounds(self, x2_cap):
        f = emd_factor(
            x2_cap,
            Placement2D.at(0, 0),
            small_bobbin_choke(),
            Placement2D.at(0.03, 0, 37),
        )
        assert 0.0 <= f <= 1.0

    def test_negative_pemd_rejected(self, x2_cap):
        with pytest.raises(ValueError):
            emd_for_pair(
                x2_cap,
                Placement2D.at(0, 0),
                FilmCapacitorX2(),
                Placement2D.at(0.03, 0),
                -1.0,
            )
