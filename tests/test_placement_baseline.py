"""Unit tests for the EMI-unaware baseline placer."""

from repro.placement import BaselinePlacer, DesignRuleChecker, placement_area

from conftest import build_small_problem


class TestBaseline:
    def test_places_everything(self):
        problem = build_small_problem()
        report = BaselinePlacer(problem).run()
        assert report.placed_count == 7

    def test_body_rules_respected(self):
        problem = build_small_problem()
        BaselinePlacer(problem).run()
        checker = DesignRuleChecker(problem)
        assert not checker.check_body_spacing()
        assert not checker.check_keepin()
        assert not checker.check_keepouts()

    def test_emi_rules_typically_violated(self):
        # The whole point of Fig. 1: a compact EMI-blind layout violates
        # the coupling-derived min distances.
        problem = build_small_problem()
        BaselinePlacer(problem).run()
        violations = DesignRuleChecker(problem).check_min_distances()
        assert violations

    def test_more_compact_than_emi_aware(self):
        from repro.placement import AutoPlacer

        baseline_problem = build_small_problem()
        BaselinePlacer(baseline_problem).run()
        aware_problem = build_small_problem()
        AutoPlacer(aware_problem).run()
        assert placement_area(baseline_problem) <= placement_area(aware_problem)

    def test_no_rotation_plan(self):
        problem = build_small_problem()
        report = BaselinePlacer(problem).run()
        assert report.rotation_plan is None
