"""Unit tests for the boost-converter demonstrator."""

import numpy as np
import pytest

from repro.circuit import MnaSystem
from repro.converters import (
    BOOST_COUPLING_BRANCHES,
    BoostConverterDesign,
    BuckConverterDesign,
    layout_couplings,
)
from repro.placement import AutoPlacer, BaselinePlacer


@pytest.fixture(scope="module")
def boost() -> BoostConverterDesign:
    return BoostConverterDesign()


class TestParameters:
    def test_duty_and_input_current(self, boost):
        assert boost.duty == pytest.approx(0.5)
        assert boost.input_current == pytest.approx(2.0)

    def test_invalid_voltages(self):
        with pytest.raises(ValueError):
            BoostConverterDesign(input_voltage=24.0, output_voltage=12.0)

    def test_parts_cached(self, boost):
        assert boost.parts() is boost.parts()


class TestCircuit:
    def test_all_coupling_branches_exist(self, boost):
        circuit, _ = boost.emi_circuit()
        inductors = {e.name for e in circuit.inductors()}
        for branch in BOOST_COUPLING_BRANCHES:
            assert branch in inductors

    def test_solvable(self, boost):
        circuit, meas = boost.emi_circuit()
        assert np.isfinite(abs(MnaSystem(circuit).solve_ac(5e6).voltage(meas)))

    def test_couplings_change_spectrum(self, boost):
        clean = boost.emission_spectrum()
        dirty = boost.emission_spectrum({("CX1", "L1"): 0.05})
        assert dirty.mean_abs_error_db(clean) > 1.0


class TestTopologyPhysics:
    def test_continuous_input_current_quieter_than_buck(self, boost):
        """The defining boost property: the inductor at the input keeps the
        drawn current continuous, so the LISN sees far less DM noise than
        the buck's chopped input above the fundamental."""
        buck = BuckConverterDesign()
        s_boost = boost.emission_spectrum()
        s_buck = buck.emission_spectrum()
        assert s_boost.max_dbuv_in(5e6, 30e6) < s_buck.max_dbuv_in(5e6, 30e6) - 15.0
        assert s_boost.max_dbuv_in(30e6, 108e6) < s_buck.max_dbuv_in(30e6, 108e6) - 6.0

    def test_bigger_inductor_less_ripple_noise(self):
        small = BoostConverterDesign()
        small.parts()["L1"].rated_inductance = 22e-6
        large = BoostConverterDesign()
        large.parts()["L1"].rated_inductance = 150e-6
        h1_small = small.emission_spectrum().dbuv()[0]
        h1_large = large.emission_spectrum().dbuv()[0]
        assert h1_large < h1_small - 6.0


class TestPlacementIntegration:
    def test_placement_problem_complete(self, boost):
        problem = boost.placement_problem()
        assert len(problem.components) == 11
        assert len(problem.groups) == 3
        report = AutoPlacer(problem).run()
        assert report.placed_count == 11

    def test_layout_couplings_feed_model(self, boost):
        problem = boost.placement_problem()
        BaselinePlacer(problem).run()
        ks = layout_couplings(
            problem, refdes_of_interest=list(BOOST_COUPLING_BRANCHES.values())
        )
        assert ks
        clean = boost.emission_spectrum()
        coupled = boost.emission_spectrum(ks)
        # Bad placement degrades the boost too — the flow generalises.
        assert coupled.max_dbuv_in(5e6, 108e6) > clean.max_dbuv_in(5e6, 108e6) + 6.0
