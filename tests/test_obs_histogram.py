"""Unit tests for the histogram primitive and run-correlation ids."""

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    RUN_ID_LENGTH,
    bucket_label,
    is_run_id,
    new_run_id,
)


class TestDefaultBuckets:
    def test_strictly_increasing(self):
        assert all(a < b for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))

    def test_span_and_shape(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-5)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(1e2)
        assert len(DEFAULT_BUCKETS) == 22

    def test_labels_are_shortest_decimal(self):
        assert bucket_label(1.0) == "1"
        assert bucket_label(0.00025) == "0.00025"
        assert bucket_label(2.5) == "2.5"


class TestObserve:
    def test_counts_length_is_boundaries_plus_overflow(self):
        hist = Histogram("t")
        assert len(hist.counts) == len(DEFAULT_BUCKETS) + 1

    def test_value_on_edge_lands_in_that_bucket(self):
        hist = Histogram("t", boundaries=(1.0, 2.0, 4.0))
        hist.observe(2.0)  # le semantics: exactly-on-edge counts as <= edge
        assert hist.counts == [0, 1, 0, 0]

    def test_overflow_bucket(self):
        hist = Histogram("t", boundaries=(1.0, 2.0))
        hist.observe(1e9)
        assert hist.counts == [0, 0, 1]
        assert hist.cumulative()[-1] == ("+Inf", 1)

    def test_sum_and_count_track(self):
        hist = Histogram("t")
        for v in (0.001, 0.002, 0.003):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == pytest.approx(0.006)

    def test_cumulative_is_monotone_and_ends_at_count(self):
        hist = Histogram("t")
        for v in (1e-6, 1e-4, 1e-2, 1.0, 1e6):
            hist.observe(v)
        cumulative = [n for _, n in hist.cumulative()]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == hist.count


class TestValidation:
    def test_rejects_empty_boundaries(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("t", boundaries=())

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("t", boundaries=(1.0, 1.0, 2.0))


class TestMerge:
    def test_merge_adds_buckets_sum_count(self):
        a, b = Histogram("t"), Histogram("t")
        a.observe(0.001)
        b.observe(0.001)
        b.observe(50.0)
        a.merge(b)
        assert a.count == 3
        assert a.total == pytest.approx(50.002)
        both = Histogram("t")
        for v in (0.001, 0.001, 50.0):
            both.observe(v)
        assert a.counts == both.counts

    def test_merge_rejects_boundary_mismatch(self):
        a = Histogram("t", boundaries=(1.0, 2.0))
        b = Histogram("t", boundaries=(1.0, 3.0))
        with pytest.raises(ValueError, match="boundary mismatch"):
            a.merge(b)


class TestPercentile:
    def test_empty_is_zero(self):
        assert Histogram("t").percentile(0.5) == 0.0

    def test_linear_interpolation_in_bucket(self):
        hist = Histogram("t", boundaries=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 10.0):
            hist.observe(v)
        # rank 2 of 4 falls exactly at the top of the (1, 2] bucket
        assert hist.percentile(0.5) == pytest.approx(2.0)

    def test_overflow_rank_clamps_to_last_edge(self):
        hist = Histogram("t", boundaries=(1.0, 2.0, 4.0))
        hist.observe(100.0)
        assert hist.percentile(0.99) == pytest.approx(4.0)

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram("t").percentile(1.5)

    def test_snapshot_keys(self):
        hist = Histogram("t")
        hist.observe(0.01)
        snap = hist.snapshot()
        assert set(snap) == {"count", "sum", "p50", "p95", "p99"}
        assert snap["count"] == 1
        assert snap["p50"] > 0.0


class TestSerialization:
    def test_round_trip_default_buckets(self):
        hist = Histogram("t")
        for v in (1e-4, 0.5, 1e4):
            hist.observe(v)
        clone = Histogram.from_dict("t", hist.to_dict())
        assert clone.counts == hist.counts
        assert clone.total == pytest.approx(hist.total)
        assert clone.boundaries == DEFAULT_BUCKETS

    def test_default_boundaries_omitted_from_dict(self):
        assert "boundaries" not in Histogram("t").to_dict()
        custom = Histogram("t", boundaries=(1.0, 2.0))
        assert custom.to_dict()["boundaries"] == [1.0, 2.0]

    def test_round_trip_custom_buckets(self):
        hist = Histogram("t", boundaries=(1.0, 2.0))
        hist.observe(1.5)
        clone = Histogram.from_dict("t", hist.to_dict())
        assert clone.boundaries == (1.0, 2.0)
        assert clone.counts == hist.counts

    def test_from_dict_rejects_count_length_mismatch(self):
        with pytest.raises(ValueError, match="bucket\\s+counts"):
            Histogram.from_dict("t", {"count": 0, "sum": 0.0, "counts": [0, 1]})


class TestRunId:
    def test_shape_and_alphabet(self):
        rid = new_run_id()
        assert len(rid) == RUN_ID_LENGTH == 26
        assert is_run_id(rid)
        assert set(rid) <= set("0123456789ABCDEFGHJKMNPQRSTVWXYZ")

    def test_is_run_id_rejects_wrong_shapes(self):
        assert not is_run_id("")
        assert not is_run_id("short")
        assert not is_run_id("l" * 26)  # 'l' is not in the Crockford alphabet
        assert not is_run_id(new_run_id().lower())

    def test_timestamp_prefix_orders_lexicographically(self):
        early = new_run_id(timestamp_ms=1_000)
        late = new_run_id(timestamp_ms=2_000_000_000_000)
        assert early[:10] < late[:10]

    def test_same_timestamp_same_prefix(self):
        a = new_run_id(timestamp_ms=123456789)
        b = new_run_id(timestamp_ms=123456789)
        assert a[:10] == b[:10]
        assert a[10:] != b[10:]  # random tail differs

    def test_unique(self):
        ids = {new_run_id() for _ in range(200)}
        assert len(ids) == 200
