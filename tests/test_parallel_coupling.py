"""Parallel/persistent coupling engine against the serial ground truth.

The executor's contract is *bitwise* identity — the same pure function on
the same inputs in every mode — so every comparison here is exact
equality, which trivially satisfies the documented 1e-12 bound.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.components import FilmCapacitorX2, small_bobbin_choke
from repro.coupling import CouplingDatabase, distance_sweep, rotation_sweep
from repro.geometry import Placement2D
from repro.parallel import CouplingExecutor, PersistentCouplingCache


@pytest.fixture(scope="module")
def executor():
    ex = CouplingExecutor(workers=2)
    yield ex
    ex.close()


def _component(kind: str):
    return FilmCapacitorX2() if kind == "cap" else small_bobbin_choke()


class TestParallelMatchesSerial:
    @settings(max_examples=5, deadline=None)
    @given(
        kind_a=st.sampled_from(["cap", "coil"]),
        kind_b=st.sampled_from(["cap", "coil"]),
        d0_mm=st.floats(min_value=25.0, max_value=60.0),
        rot_b=st.floats(min_value=0.0, max_value=360.0),
        direction=st.floats(min_value=0.0, max_value=360.0),
    )
    def test_distance_sweep_property(
        self, executor, kind_a, kind_b, d0_mm, rot_b, direction
    ):
        comp_a, comp_b = _component(kind_a), _component(kind_b)
        distances = np.linspace(d0_mm * 1e-3, d0_mm * 1e-3 + 0.05, 5)
        serial = distance_sweep(
            comp_a, comp_b, distances, rotation_b_deg=rot_b, direction_deg=direction
        )
        parallel = distance_sweep(
            comp_a,
            comp_b,
            distances,
            rotation_b_deg=rot_b,
            direction_deg=direction,
            executor=executor,
        )
        assert np.array_equal(serial, parallel)

    def test_rotation_sweep_signed_match(self, executor):
        comp_a, comp_b = small_bobbin_choke(), small_bobbin_choke()
        angles = np.linspace(0.0, 330.0, 12)
        serial = rotation_sweep(comp_a, comp_b, 0.04, angles)
        parallel = rotation_sweep(comp_a, comp_b, 0.04, angles, executor=executor)
        assert np.array_equal(serial, parallel)

    def test_pairwise_couplings_match_and_order(self, executor):
        placed = [
            ("C1", FilmCapacitorX2(), Placement2D.at(0.0, 0.0, 0.0)),
            ("L1", small_bobbin_choke(), Placement2D.at(0.03, 0.0, 30.0)),
            ("C2", FilmCapacitorX2(), Placement2D.at(0.01, 0.04, 90.0)),
            ("L2", small_bobbin_choke(), Placement2D.at(0.05, 0.03, 200.0)),
        ]
        serial = CouplingDatabase().pairwise_couplings(placed)
        parallel = CouplingDatabase().pairwise_couplings(placed, executor=executor)
        assert list(serial) == list(parallel)
        for pair in serial:
            assert serial[pair].k == parallel[pair].k
            assert serial[pair].mutual_h == parallel[pair].mutual_h


class TestPersistentDatabase:
    def test_round_trip_across_instances(self, tmp_path, executor):
        comp_a, comp_b = FilmCapacitorX2(), small_bobbin_choke()
        distances = np.linspace(0.03, 0.08, 4)

        cold = CouplingDatabase(persistent=PersistentCouplingCache(cache_dir=tmp_path))
        k_cold = distance_sweep(comp_a, comp_b, distances, database=cold)
        assert cold.stats.misses == len(distances)
        assert cold.persistent.writes == len(distances)

        # A fresh process would build fresh objects: new instances, new db.
        warm = CouplingDatabase(persistent=PersistentCouplingCache(cache_dir=tmp_path))
        k_warm = distance_sweep(
            FilmCapacitorX2(), small_bobbin_choke(), distances, database=warm
        )
        assert np.array_equal(k_cold, k_warm)
        assert warm.stats.misses == 0
        assert warm.stats.persistent_hits == len(distances)

    def test_geometry_perturbation_misses(self, tmp_path):
        distances = np.linspace(0.03, 0.08, 4)
        db = CouplingDatabase(persistent=PersistentCouplingCache(cache_dir=tmp_path))
        distance_sweep(FilmCapacitorX2(), small_bobbin_choke(), distances, database=db)

        perturbed = FilmCapacitorX2(loop_height=FilmCapacitorX2().loop_height * 1.01)
        db2 = CouplingDatabase(persistent=PersistentCouplingCache(cache_dir=tmp_path))
        distance_sweep(perturbed, small_bobbin_choke(), distances, database=db2)
        assert db2.stats.persistent_hits == 0
        assert db2.stats.misses == len(distances)

    def test_version_bump_stales_the_store(self, tmp_path):
        distances = np.linspace(0.03, 0.08, 4)
        db = CouplingDatabase(
            persistent=PersistentCouplingCache(cache_dir=tmp_path, version=1)
        )
        distance_sweep(FilmCapacitorX2(), small_bobbin_choke(), distances, database=db)

        bumped = CouplingDatabase(
            persistent=PersistentCouplingCache(cache_dir=tmp_path, version=2)
        )
        distance_sweep(
            FilmCapacitorX2(), small_bobbin_choke(), distances, database=bumped
        )
        assert bumped.stats.persistent_hits == 0
        assert bumped.stats.misses == len(distances)

    def test_mirrored_pair_hits_persistent(self, tmp_path):
        comp_a, comp_b = FilmCapacitorX2(), small_bobbin_choke()
        pa, pb = Placement2D.at(0.0, 0.0, 0.0), Placement2D.at(0.04, 0.0, 60.0)
        db = CouplingDatabase(persistent=PersistentCouplingCache(cache_dir=tmp_path))
        result = db.coupling(comp_a, pa, comp_b, pb)

        swapped = CouplingDatabase(
            persistent=PersistentCouplingCache(cache_dir=tmp_path)
        )
        mirrored = swapped.peek(comp_b, pb, comp_a, pa)
        assert mirrored is not None
        assert mirrored.k == result.k
        assert swapped.persistent_hits == 1
