"""Unit tests for loop/mutual inductance aggregation."""

import math

import numpy as np
import pytest

from repro.geometry import Transform3D, Vec3
from repro.peec import (
    MU0,
    coupling_factor,
    loop_self_inductance,
    mutual_inductance_paths,
    mutual_inductance_paths_fast,
    partial_inductance_matrix,
    rectangle_path,
    ring_path,
)


class TestLoopSelfInductance:
    def test_circular_loop_textbook(self):
        # L = mu0 R (ln(8R/a) - 2) for a thin circular loop of wire radius a.
        radius, wire_a = 0.01, 0.0004
        ring = ring_path(Vec3.zero(), radius, segments=24, wire_diameter=2 * wire_a)
        theory = MU0 * radius * (math.log(8 * radius / wire_a) - 2.0)
        assert loop_self_inductance(ring) == pytest.approx(theory, rel=0.15)

    def test_turns_scale_quadratically(self):
        one = loop_self_inductance(ring_path(Vec3.zero(), 0.01, weight=1.0))
        three = loop_self_inductance(ring_path(Vec3.zero(), 0.01, weight=3.0))
        assert three == pytest.approx(9.0 * one, rel=1e-6)

    def test_bigger_loop_bigger_l(self):
        small = loop_self_inductance(ring_path(Vec3.zero(), 0.005))
        big = loop_self_inductance(ring_path(Vec3.zero(), 0.02))
        assert big > small

    def test_rectangle_loop_positive(self):
        p = rectangle_path(Vec3(-0.0075, 0, 0), Vec3(0.0075, 0, 0.01), normal="y")
        assert loop_self_inductance(p) > 0.0


class TestMutualInductance:
    def test_coaxial_rings_against_dipole_limit(self):
        # Far coaxial loops: M -> mu0 pi a^2 b^2 / (2 d^3).
        a = b = 0.005
        d = 0.05
        r1 = ring_path(Vec3.zero(), a, segments=24)
        r2 = ring_path(Vec3(0, 0, d), b, segments=24)
        theory = MU0 * math.pi * a**2 * b**2 / (2 * d**3)
        assert mutual_inductance_paths(r1, r2) == pytest.approx(theory, rel=0.05)

    def test_reciprocity(self):
        r1 = ring_path(Vec3.zero(), 0.006, segments=12, axis="x")
        r2 = ring_path(Vec3(0.02, 0.01, 0.002), 0.004, segments=12, axis="y")
        assert mutual_inductance_paths(r1, r2) == pytest.approx(
            mutual_inductance_paths(r2, r1), rel=1e-9
        )

    def test_fast_matches_slow(self):
        r1 = ring_path(Vec3.zero(), 0.006, segments=12, axis="x")
        r2 = ring_path(Vec3(0.025, 0.005, 0.003), 0.005, segments=12, axis="x")
        slow = mutual_inductance_paths(r1, r2)
        fast = mutual_inductance_paths_fast(r1, r2)
        assert fast == pytest.approx(slow, rel=1e-6)

    def test_fast_respects_weights(self):
        r1 = ring_path(Vec3.zero(), 0.006, weight=2.0)
        r2 = ring_path(Vec3(0, 0, 0.02), 0.006, weight=3.0)
        r1u = ring_path(Vec3.zero(), 0.006)
        r2u = ring_path(Vec3(0, 0, 0.02), 0.006)
        assert mutual_inductance_paths_fast(r1, r2) == pytest.approx(
            6.0 * mutual_inductance_paths_fast(r1u, r2u), rel=1e-9
        )

    def test_rigid_motion_invariance(self):
        r1 = ring_path(Vec3.zero(), 0.006, axis="x")
        r2 = ring_path(Vec3(0.03, 0.0, 0.0), 0.006, axis="x")
        m0 = mutual_inductance_paths_fast(r1, r2)
        t = Transform3D(Vec3(0.01, -0.02, 0.004), rotation_z_rad=0.9)
        m1 = mutual_inductance_paths_fast(r1.transformed(t), r2.transformed(t))
        assert m1 == pytest.approx(m0, rel=1e-9)


class TestCouplingFactor:
    def test_bounds(self):
        r1 = ring_path(Vec3.zero(), 0.006)
        r2 = ring_path(Vec3(0, 0, 0.008), 0.006)
        k = coupling_factor(r1, r2)
        assert -1.0 <= k <= 1.0

    def test_decreases_with_distance(self):
        r1 = ring_path(Vec3.zero(), 0.006)
        ks = []
        for d in (0.01, 0.02, 0.04):
            r2 = ring_path(Vec3(0, 0, d), 0.006)
            ks.append(abs(coupling_factor(r1, r2)))
        assert ks[0] > ks[1] > ks[2]

    def test_precomputed_self_l_matches(self):
        r1 = ring_path(Vec3.zero(), 0.006)
        r2 = ring_path(Vec3(0, 0, 0.02), 0.006)
        la = loop_self_inductance(r1)
        lb = loop_self_inductance(r2)
        assert coupling_factor(r1, r2, la, lb) == pytest.approx(
            coupling_factor(r1, r2), rel=1e-12
        )

    def test_flip_one_ring_flips_sign(self):
        r1 = ring_path(Vec3.zero(), 0.006)
        r2 = ring_path(Vec3(0, 0, 0.02), 0.006)
        r2_flipped = r2.scaled_weights(-1.0)
        assert coupling_factor(r1, r2_flipped) == pytest.approx(
            -coupling_factor(r1, r2), rel=1e-9
        )


class TestPartialMatrix:
    def test_symmetric_positive_diagonal(self):
        ring = ring_path(Vec3.zero(), 0.008, segments=8)
        m = partial_inductance_matrix(ring.filaments)
        assert np.allclose(m, m.T)
        assert np.all(np.diag(m) > 0.0)

    def test_consistent_with_loop_inductance(self):
        ring = ring_path(Vec3.zero(), 0.008, segments=8)
        m = partial_inductance_matrix(ring.filaments)
        w = np.array([f.weight for f in ring.filaments])
        assert float(w @ m @ w) == pytest.approx(loop_self_inductance(ring), rel=1e-9)
