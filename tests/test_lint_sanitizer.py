"""The runtime lock sanitizer (conlint's dynamic half).

The inversion tests here are the runtime side of the PR's acceptance
criterion: the same deliberate lock-order inversion that CON002 flags
statically (tests/lint/test_rules_concurrency.py) must be flagged by
the sanitizer when executed.  Each test runs under its own nested
``sanitized()`` context, so the deliberate findings never leak into a
``make race-check`` session sanitizer.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.lint.sanitizer import (
    LockSanitizer,
    active,
    default_hold_threshold_s,
    install,
    sanitized,
    uninstall,
)


def kinds(sanitizer: LockSanitizer) -> list[str]:
    return [f.kind for f in sanitizer.report()]


class TestLockOrderInversion:
    def test_sequential_inversion_is_flagged(self):
        # No unlucky interleaving needed: taking both orders at any time
        # during the run is already a deadlock waiting to happen.
        with sanitized() as sanitizer:
            a = sanitizer.lock("a")
            b = sanitizer.lock("b")
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        assert kinds(sanitizer) == ["lock-order-inversion"]
        finding = sanitizer.report()[0]
        assert "'a'" in finding.message and "'b'" in finding.message
        assert finding.stack and finding.other_stack

    def test_inversion_across_threads(self):
        with sanitized() as sanitizer:
            a = sanitizer.lock("a")
            b = sanitizer.lock("b")

            def forward():
                with a:
                    with b:
                        pass

            def backward():
                with b:
                    with a:
                        pass

            t1 = threading.Thread(target=forward)
            t1.start()
            t1.join()
            t2 = threading.Thread(target=backward)
            t2.start()
            t2.join()
        assert kinds(sanitizer) == ["lock-order-inversion"]

    def test_transitive_inversion(self):
        # a -> b, b -> c, then c -> a: the cycle spans three locks.
        with sanitized() as sanitizer:
            a = sanitizer.lock("a")
            b = sanitizer.lock("b")
            c = sanitizer.lock("c")
            with a, b:
                pass
            with b, c:
                pass
            with c, a:
                pass
        assert kinds(sanitizer) == ["lock-order-inversion"]

    def test_consistent_order_is_clean(self):
        with sanitized() as sanitizer:
            a = sanitizer.lock("a")
            b = sanitizer.lock("b")
            for _ in range(3):
                with a:
                    with b:
                        pass
        assert sanitizer.report() == []
        assert sanitizer.acquisitions == 6

    def test_reentrant_rlock_is_not_an_inversion(self):
        with sanitized() as sanitizer:
            r = sanitizer.rlock("r")
            with r:
                with r:
                    pass
        assert sanitizer.report() == []
        # Re-entry is counted as one extra acquisition, not an edge.
        assert sanitizer.acquisitions == 2


class TestHoldTime:
    def test_over_threshold_hold_is_flagged(self):
        with sanitized(hold_threshold_s=0.02) as sanitizer:
            lock = sanitizer.lock("slow")
            with lock:
                time.sleep(0.05)
        assert kinds(sanitizer) == ["hold-time"]
        assert "'slow'" in sanitizer.report()[0].message

    def test_fast_hold_is_clean(self):
        with sanitized(hold_threshold_s=5.0) as sanitizer:
            lock = sanitizer.lock("fast")
            with lock:
                pass
        assert sanitizer.report() == []

    def test_env_threshold_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_EMI_LOCK_HOLD_S", "0.25")
        assert default_hold_threshold_s() == 0.25
        monkeypatch.setenv("REPRO_EMI_LOCK_HOLD_S", "garbage")
        assert default_hold_threshold_s() == 1.0
        monkeypatch.setenv("REPRO_EMI_LOCK_HOLD_S", "-1")
        assert default_hold_threshold_s() == 1.0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            LockSanitizer(hold_threshold_s=0.0)


class TestInstrumentedLockProtocol:
    def test_mutual_exclusion_still_works(self):
        with sanitized() as sanitizer:
            lock = sanitizer.lock("mx")
            assert lock.acquire()
            assert lock.locked()
            assert not lock.acquire(blocking=False)
            lock.release()
            assert not lock.locked()
        assert sanitizer.report() == []

    def test_condition_wait_notify(self):
        # Condition wraps an instrumented RLock and drives the private
        # _release_save/_acquire_restore hooks during wait().
        with sanitized(hold_threshold_s=30.0) as sanitizer:
            cond = threading.Condition()
            ready = []

            def waiter():
                with cond:
                    while not ready:
                        cond.wait(timeout=5.0)

            thread = threading.Thread(target=waiter)
            thread.start()
            time.sleep(0.02)
            with cond:
                ready.append(True)
                cond.notify_all()
            thread.join(timeout=5.0)
            assert not thread.is_alive()
        assert sanitizer.report() == []

    def test_event_roundtrip(self):
        with sanitized() as sanitizer:
            event = threading.Event()
            thread = threading.Thread(target=event.set)
            thread.start()
            assert event.wait(timeout=5.0)
            thread.join()
        assert sanitizer.report() == []
        assert sanitizer.locks_created >= 1


class TestInstallUninstall:
    def test_factories_patched_and_restored(self):
        before = threading.Lock
        sanitizer = install(LockSanitizer())
        try:
            assert active() is sanitizer
            lock = threading.Lock()
            assert type(lock).__name__ == "_InstrumentedLock"
            with lock:
                pass
        finally:
            assert uninstall() is sanitizer
        assert threading.Lock is before
        assert sanitizer.acquisitions == 1

    def test_nested_sanitizers_bind_at_creation(self):
        outer = install(LockSanitizer())
        try:
            inner = install(LockSanitizer())
            try:
                lock = threading.Lock()
                with lock:
                    pass
            finally:
                uninstall()
            # The lock was created under `inner` and keeps reporting
            # there even after the pop.
            with lock:
                pass
        finally:
            uninstall()
        assert inner.acquisitions == 2
        assert outer.acquisitions == 0

    def test_uninstall_without_install_is_noop(self):
        # The session fixture may have one installed; drain only ours.
        before = active()
        sanitizer = install(LockSanitizer())
        assert uninstall() is sanitizer
        assert active() is before


class TestFindingRendering:
    def test_render_carries_both_stacks(self):
        with sanitized() as sanitizer:
            a = sanitizer.lock("render_a")
            b = sanitizer.lock("render_b")
            with a, b:
                pass
            with b, a:
                pass
        text = sanitizer.render()
        assert "lock-order-inversion" in text
        assert "acquisition stack" in text
        assert "conflicting acquisition stack" in text
