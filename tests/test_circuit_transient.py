"""Unit tests for the trapezoidal transient engine."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit, TransientSolver


class TestFirstOrder:
    def test_rc_step_response(self):
        c = Circuit()
        c.add_vsource("V1", "in", "0", waveform=lambda t: 1.0)
        c.add_resistor("R1", "in", "out", 1e3)
        c.add_capacitor("C1", "out", "0", 1e-6)
        result = TransientSolver(c).run(5e-3, 5e-6)
        tau = 1e-3
        idx = int(round(tau / 5e-6))
        assert result.voltage("out")[idx] == pytest.approx(1 - math.exp(-1), rel=0.01)
        assert result.voltage("out")[-1] == pytest.approx(1.0, rel=0.01)

    def test_rl_current_rise(self):
        c = Circuit()
        c.add_vsource("V1", "in", "0", waveform=lambda t: 1.0)
        c.add_resistor("R1", "in", "out", 10.0)
        c.add_inductor("L1", "out", "0", 10e-3)
        result = TransientSolver(c).run(5e-3, 5e-6)
        tau = 10e-3 / 10.0
        idx = int(round(tau / 5e-6))
        i = result.current("L1")
        assert i[idx] == pytest.approx(0.1 * (1 - math.exp(-1)), rel=0.02)

    def test_invalid_args(self):
        c = Circuit()
        c.add_vsource("V1", "in", "0")
        c.add_resistor("R1", "in", "0", 1.0)
        with pytest.raises(ValueError):
            TransientSolver(c).run(1e-3, 0.0)
        with pytest.raises(ValueError):
            TransientSolver(c).run(0.0, 1e-6, t_start=1.0)


class TestSecondOrder:
    def test_lc_oscillation_frequency(self):
        # Series LC rung by a step: ringing at f0 = 1/(2 pi sqrt(LC)).
        c = Circuit()
        c.add_vsource("V1", "in", "0", waveform=lambda t: 1.0)
        c.add_resistor("R1", "in", "a", 0.5)
        c.add_inductor("L1", "a", "b", 10e-6)
        c.add_capacitor("C1", "b", "0", 1e-6)
        f0 = 1 / (2 * math.pi * math.sqrt(10e-6 * 1e-6))
        result = TransientSolver(c).run(20e-5, 2e-8)
        freqs, spec = result.spectrum("b", settle_fraction=0.0)
        # Mask out the step's low-frequency content before peak picking.
        mask = freqs > f0 / 2.0
        peak = freqs[mask][np.argmax(spec[mask])]
        assert peak == pytest.approx(f0, rel=0.1)

    def test_energy_not_created(self):
        # Trapezoidal rule is A-stable: with loss, the ringing must decay.
        c = Circuit()
        c.add_vsource("V1", "in", "0", waveform=lambda t: 1.0 if t > 0 else 0.0)
        c.add_resistor("R1", "in", "a", 5.0)
        c.add_inductor("L1", "a", "b", 10e-6)
        c.add_capacitor("C1", "b", "0", 1e-6)
        result = TransientSolver(c).run(1e-3, 1e-7)
        v = result.voltage("b")
        early_swing = np.max(np.abs(v[: len(v) // 4] - 1.0))
        late_swing = np.max(np.abs(v[-len(v) // 4 :] - 1.0))
        assert late_swing < early_swing * 0.1


class TestSwitchedCircuits:
    def test_buck_converter_regulation(self):
        c = Circuit()
        c.add_vsource("VIN", "vin", "0", waveform=lambda t: 12.0)
        c.add_switch(
            "S1", "vin", "sw", r_on=1e-2, r_off=1e7, control=lambda t: (t % 4e-6) < 2e-6
        )
        c.add_diode("D1", "0", "sw", vf=0.4, r_on=1e-2)
        c.add_inductor("LB", "sw", "vo", 47e-6)
        c.add_capacitor("CO", "vo", "0", 100e-6)
        c.add_resistor("RL", "vo", "0", 6.0)
        result = TransientSolver(c).run(2e-3, 2e-8)
        vo = result.voltage("vo")
        # Ideal: D*Vin = 6 V, minus diode/switch drops.
        assert 4.5 < float(np.mean(vo[-2000:])) < 6.5

    def test_diode_rectifier_blocks_negative(self):
        c = Circuit()
        c.add_vsource(
            "V1", "in", "0", waveform=lambda t: math.sin(2 * math.pi * 1e3 * t)
        )
        c.add_diode("D1", "in", "out", vf=0.2, r_on=1e-2)
        c.add_resistor("RL", "out", "0", 1e3)
        result = TransientSolver(c).run(2e-3, 1e-6)
        v = result.voltage("out")
        assert float(np.min(v)) > -0.05
        assert float(np.max(v)) > 0.6

    def test_coupled_inductors_transient(self):
        # Step into the primary of a k=0.9 transformer: secondary sees dV.
        c = Circuit()
        c.add_vsource("V1", "p", "0", waveform=lambda t: 1.0)
        c.add_resistor("Rp", "p", "a", 1.0)
        c.add_inductor("L1", "a", "0", 1e-3)
        c.add_inductor("L2", "s", "0", 1e-3)
        c.add_resistor("RL", "s", "0", 1e3)
        c.add_coupling("K1", "L1", "L2", 0.9)
        result = TransientSolver(c).run(1e-4, 1e-7)
        v_s = result.voltage("s")
        assert float(np.max(np.abs(v_s))) > 0.1


class TestResultAccessors:
    def test_ground_voltage_zero(self):
        c = Circuit()
        c.add_vsource("V1", "in", "0", waveform=lambda t: 1.0)
        c.add_resistor("R1", "in", "0", 1.0)
        result = TransientSolver(c).run(1e-5, 1e-6)
        assert np.all(result.voltage("0") == 0.0)

    def test_spectrum_requires_samples(self):
        c = Circuit()
        c.add_vsource("V1", "in", "0", waveform=lambda t: 1.0)
        c.add_resistor("R1", "in", "0", 1.0)
        result = TransientSolver(c).run(3e-6, 1e-6)
        with pytest.raises(ValueError):
            result.spectrum("in")
