"""Unit tests for the persistent coupling cache and its content keys."""

import json
import math

from repro.geometry import Placement2D
from repro.parallel import (
    CACHE_SCHEMA_VERSION,
    PersistentCouplingCache,
    component_fingerprint,
    default_cache_dir,
    pair_cache_key,
    relative_pose_key,
)

KEY = "ab" + "0" * 62


class TestDefaultCacheDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EMI_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_EMI_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "repro-emi" / "coupling"


class TestStore:
    def test_miss_on_empty_store(self, tmp_path):
        cache = PersistentCouplingCache(cache_dir=tmp_path)
        assert cache.get(KEY) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_hit_after_write(self, tmp_path):
        cache = PersistentCouplingCache(cache_dir=tmp_path)
        cache.put(KEY, {"k": 0.25})
        assert cache.get(KEY) == {"k": 0.25}
        assert cache.hits == 1 and cache.writes == 1
        assert len(cache) == 1

    def test_shared_across_instances(self, tmp_path):
        PersistentCouplingCache(cache_dir=tmp_path).put(KEY, {"k": 1.0})
        other = PersistentCouplingCache(cache_dir=tmp_path)
        assert other.get(KEY) == {"k": 1.0}

    def test_sharded_layout(self, tmp_path):
        cache = PersistentCouplingCache(cache_dir=tmp_path)
        cache.put(KEY, {})
        assert cache.path_for(KEY) == tmp_path / KEY[:2] / f"{KEY}.json"
        assert cache.path_for(KEY).is_file()

    def test_stale_after_version_bump(self, tmp_path):
        PersistentCouplingCache(cache_dir=tmp_path, version=1).put(KEY, {"k": 1.0})
        bumped = PersistentCouplingCache(cache_dir=tmp_path, version=2)
        assert bumped.get(KEY) is None
        assert bumped.stale == 1
        # Stale entries are deleted on sight: the next lookup is a plain miss.
        assert bumped.get(KEY) is None
        assert bumped.misses == 1

    def test_corrupt_entry_is_stale_and_deleted(self, tmp_path):
        cache = PersistentCouplingCache(cache_dir=tmp_path)
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(KEY) is None
        assert cache.stale == 1
        assert not path.is_file()

    def test_non_dict_payload_is_stale(self, tmp_path):
        cache = PersistentCouplingCache(cache_dir=tmp_path)
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"version": CACHE_SCHEMA_VERSION, "payload": [1, 2]}),
            encoding="utf-8",
        )
        assert cache.get(KEY) is None
        assert cache.stale == 1

    def test_clear(self, tmp_path):
        cache = PersistentCouplingCache(cache_dir=tmp_path)
        cache.put(KEY, {})
        cache.put("cd" + "0" * 62, {})
        assert cache.clear() == 2
        assert len(cache) == 0


class TestComponentFingerprint:
    def test_deterministic_and_instance_independent(self, x2_cap):
        from repro.components import FilmCapacitorX2

        assert component_fingerprint(x2_cap) == component_fingerprint(
            FilmCapacitorX2()
        )

    def test_sensitive_to_geometry(self, x2_cap):
        from repro.components import FilmCapacitorX2

        fingerprint = component_fingerprint(x2_cap)
        taller = FilmCapacitorX2(loop_height=x2_cap.loop_height * 1.001)
        assert component_fingerprint(taller) != fingerprint

    def test_sensitive_to_part_type(self, x2_cap, bobbin):
        assert component_fingerprint(x2_cap) != component_fingerprint(bobbin)


class TestPoseKey:
    def test_rigid_motion_invariance(self):
        pa = Placement2D.at(0.0, 0.0, 10.0)
        pb = Placement2D.at(0.03, 0.01, 70.0)
        # Translate and rotate the *pair* rigidly: same relative key.
        moved_a = Placement2D.at(0.05, -0.02, 10.0 + 33.0)
        offset = pb.position - pa.position
        rotated = offset.rotated(math.radians(33.0))
        moved_b = Placement2D.at(
            0.05 + rotated.x, -0.02 + rotated.y, 70.0 + 33.0
        )
        assert relative_pose_key(pa, pb) == relative_pose_key(moved_a, moved_b)

    def test_quantisation_bins_sub_tenth_millimetre(self):
        pa = Placement2D.at(0.0, 0.0, 0.0)
        near = Placement2D.at(0.0300, 0.0, 0.0)
        nearer = Placement2D.at(0.030004, 0.0, 0.0)  # < 0.05 mm apart
        far = Placement2D.at(0.0302, 0.0, 0.0)
        assert relative_pose_key(pa, near) == relative_pose_key(pa, nearer)
        assert relative_pose_key(pa, near) != relative_pose_key(pa, far)


class TestPairKey:
    def _placements(self):
        return Placement2D.at(0.0, 0.0, 0.0), Placement2D.at(0.03, 0.0, 45.0)

    def test_depends_on_every_ingredient(self, x2_cap, bobbin):
        pa, pb = self._placements()
        fa, fb = component_fingerprint(x2_cap), component_fingerprint(bobbin)
        base = pair_cache_key(fa, fb, pa, pb, None, 8)
        assert pair_cache_key(fb, fa, pa, pb, None, 8) != base
        assert pair_cache_key(fa, fb, pb, pa, None, 8) != base
        assert pair_cache_key(fa, fb, pa, pb, 0.01, 8) != base
        assert pair_cache_key(fa, fb, pa, pb, None, 12) != base
        assert pair_cache_key(fa, fb, pa, pb, None, 8, version=2) != base

    def test_stable_across_calls(self, x2_cap):
        pa, pb = self._placements()
        fa = component_fingerprint(x2_cap)
        assert pair_cache_key(fa, fa, pa, pb, None, 8) == pair_cache_key(
            fa, fa, pa, pb, None, 8
        )
