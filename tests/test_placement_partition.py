"""Unit tests for two-board partitioning."""

import pytest

from repro.components import FilmCapacitorX2, small_bobbin_choke
from repro.geometry import Placement2D, Polygon2D
from repro.placement import Board, PlacedComponent, PlacementProblem, Partitioner


def two_board_problem(n_parts: int = 8) -> PlacementProblem:
    boards = [
        Board(0, Polygon2D.rectangle(0, 0, 0.06, 0.05)),
        Board(1, Polygon2D.rectangle(0, 0, 0.06, 0.05)),
    ]
    problem = PlacementProblem(boards)
    for i in range(n_parts):
        cls = FilmCapacitorX2 if i % 2 == 0 else small_bobbin_choke
        problem.add_component(PlacedComponent(f"U{i}", cls()))
    return problem


class TestPartitioner:
    def test_needs_two_boards(self):
        single = PlacementProblem([Board(0, Polygon2D.rectangle(0, 0, 0.1, 0.1))])
        with pytest.raises(ValueError):
            Partitioner(single)

    def test_assigns_every_component(self):
        problem = two_board_problem()
        result = Partitioner(problem).run()
        assert set(result.assignment) == set(problem.components)
        assert set(result.assignment.values()) <= {0, 1}
        for ref, board in result.assignment.items():
            assert problem.components[ref].board == board

    def test_area_balance(self):
        problem = two_board_problem(10)
        result = Partitioner(problem, balance_tolerance=0.3).run()
        assert result.area_balance <= 0.3 + 1e-9

    def test_clustered_nets_reduce_cut(self):
        problem = two_board_problem(8)
        # Two 4-cliques of nets: the min cut is 1 (the bridge net).
        for i in range(3):
            problem.add_net(f"A{i}", [(f"U{i}", "1"), (f"U{i + 1}", "1")])
        for i in range(4, 7):
            problem.add_net(f"B{i}", [(f"U{i}", "1"), (f"U{i + 1}", "1")])
        problem.add_net("BRIDGE", [("U3", "1"), ("U4", "1")])
        result = Partitioner(problem).run()
        assert result.cut_nets <= 2

    def test_group_atomicity(self):
        problem = two_board_problem(8)
        problem.define_group("g", ["U0", "U1", "U2"])
        result = Partitioner(problem).run()
        sides = {result.assignment[r] for r in ("U0", "U1", "U2")}
        assert len(sides) == 1

    def test_fixed_component_pins_unit(self):
        problem = two_board_problem(6)
        problem.components["U0"].board = 1
        problem.components["U0"].fixed = True
        problem.components["U0"].placement = Placement2D.at(0.01, 0.01)
        result = Partitioner(problem).run()
        assert result.assignment["U0"] == 1

    def test_invalid_tolerance(self):
        problem = two_board_problem()
        with pytest.raises(ValueError):
            Partitioner(problem, balance_tolerance=0.0)
