"""Hammer the telemetry stack's locks under the runtime sanitizer.

Publishers, subscriber churn, tracer traffic and sampler shutdown all
run concurrently while every lock created by the stack is instrumented
(:mod:`repro.lint.sanitizer`).  The assertions are the concurrency
contracts conlint cannot prove statically:

* no lock-order inversion and no over-threshold hold anywhere in the
  EventBus / Tracer / ResourceSampler lock graph;
* sequence numbers stay gap-free and delivery stays in-order no matter
  how the threads interleave;
* a subscriber that unsubscribes mid-storm stops receiving exactly at a
  sequence boundary (no torn delivery).

Runs in the plain suite too — ``make race-check`` re-runs it with the
session-wide sanitizer from conftest on top.
"""

from __future__ import annotations

import threading

import pytest

from repro.lint.sanitizer import sanitized
from repro.obs import Tracer
from repro.obs.bus import EventBus, EventRingBuffer
from repro.obs.sampler import ResourceSampler

PUBLISHERS = 4
EVENTS_PER_PUBLISHER = 300


class TestBusHammer:
    def test_publish_churn_and_sampler_stop_under_sanitizer(self):
        with sanitized(hold_threshold_s=5.0) as sanitizer:
            bus = EventBus()
            # Headroom for the span/counter/gauge traffic that shares the
            # bus with the publishers.
            ring = EventRingBuffer(capacity=8192)
            bus.subscribe(ring)
            tracer = Tracer(bus=bus)
            sampler = ResourceSampler(tracer, period_s=0.005, bus=bus).start()

            # Parties: the publishers, the tracer thread, the churner,
            # and the main thread releasing them all at once.
            start = threading.Barrier(PUBLISHERS + 3)
            stop_churn = threading.Event()

            def publisher(k: int) -> None:
                start.wait()
                for i in range(EVENTS_PER_PUBLISHER):
                    bus.publish("counter", f"hammer.p{k}", value=float(i))

            def churner() -> None:
                # Subscribe/unsubscribe a throwaway subscriber in a loop:
                # subscriber-list mutation races against delivery.
                start.wait()
                while not stop_churn.is_set():
                    seen: list[int] = []
                    sub = bus.subscribe(lambda e, seen=seen: seen.append(e.seq))
                    bus.unsubscribe(sub)
                    # In-order contract: whatever the throwaway saw is an
                    # increasing, contiguous run.
                    assert seen == sorted(seen)
                    if seen:
                        assert seen[-1] - seen[0] == len(seen) - 1

            def tracer_traffic() -> None:
                start.wait()
                # Span stacks are single-threaded (owned by the creating
                # thread), so this thread gets its own tracer on the same
                # bus; counters on the shared tracer are thread-safe.
                own = Tracer(bus=bus)
                for i in range(200):
                    with own.span(f"hammer.span{i % 7}"):
                        tracer.count("hammer.ticks", 1)

            threads = [
                threading.Thread(target=publisher, args=(k,))
                for k in range(PUBLISHERS)
            ]
            threads.append(threading.Thread(target=tracer_traffic))
            churn = threading.Thread(target=churner)
            churn.start()
            for t in threads:
                t.start()
            start.wait()
            for t in threads:
                t.join()
            stop_churn.set()
            churn.join()
            sampler.stop()
            bus.close()

            # Gap-free seq across every publishing thread (publishers,
            # tracer spans/counters, sampler gauges).
            events = ring.snapshot()
            seqs = [e.seq for e in events]
            assert ring.dropped == 0
            assert seqs == list(range(1, len(seqs) + 1))
            assert bus.last_seq == len(seqs)
            by_name: dict[str, list[float]] = {}
            for e in events:
                if e.name.startswith("hammer.p"):
                    by_name.setdefault(e.name, []).append(e.value)
            assert len(by_name) == PUBLISHERS
            for values in by_name.values():
                # Per-publisher order survives the interleaving.
                assert values == [float(i) for i in range(EVENTS_PER_PUBLISHER)]

        assert sanitizer.report() == [], sanitizer.render()
        assert sanitizer.acquisitions > 0

    def test_concurrent_close_races_publishers_cleanly(self):
        with sanitized(hold_threshold_s=5.0) as sanitizer:
            for _ in range(20):
                bus = EventBus()
                ring = bus.subscribe(EventRingBuffer(capacity=4096))
                published: list[int] = []

                def pump(bus=bus, published=published) -> None:
                    while True:
                        event = bus.publish("log", "m")
                        if event is None:
                            return
                        published.append(event.seq)

                threads = [threading.Thread(target=pump) for _ in range(3)]
                for t in threads:
                    t.start()
                bus.close()
                for t in threads:
                    t.join()
                # Everything delivered before the close is in the ring;
                # nothing after it is.
                assert len(ring.snapshot()) == bus.last_seq
                assert sorted(published) == list(range(1, bus.last_seq + 1))
        assert sanitizer.report() == [], sanitizer.render()

    def test_sampler_start_stop_cycles_under_sanitizer(self):
        with sanitized(hold_threshold_s=5.0) as sanitizer:
            tracer = Tracer()
            sampler = ResourceSampler(tracer, period_s=0.002)
            for _ in range(5):
                sampler.start()
                sampler.stop()
            # stop() joins the daemon thread: nothing is left running.
            assert sampler._thread is None
        assert sanitizer.report() == [], sanitizer.render()


@pytest.mark.parametrize("threads", [2, 8])
def test_ring_buffer_concurrent_drain(threads: int) -> None:
    with sanitized(hold_threshold_s=5.0) as sanitizer:
        bus = EventBus()
        ring = bus.subscribe(EventRingBuffer(capacity=64))
        drained: list[int] = []
        done = threading.Event()

        def drainer() -> None:
            while not done.is_set():
                drained.extend(e.seq for e in ring.drain())
            drained.extend(e.seq for e in ring.drain())

        def pump() -> None:
            for _ in range(100):
                bus.publish("log", "m")

        pumps = [threading.Thread(target=pump) for _ in range(threads)]
        sink = threading.Thread(target=drainer)
        sink.start()
        for t in pumps:
            t.start()
        for t in pumps:
            t.join()
        done.set()
        sink.join()
        # One drainer against an overflowing ring: every event is either
        # drained exactly once (in order) or counted as evicted — none
        # vanish silently and none duplicate.
        assert drained == sorted(set(drained))
        assert len(drained) + ring.dropped == threads * 100
    assert sanitizer.report() == [], sanitizer.render()
