"""Unit tests for the telemetry event model and bus (repro.obs.events/bus)."""

import io
import json
import threading

import pytest

from repro.obs import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    EventBus,
    EventRingBuffer,
    JsonlSink,
    LiveRenderer,
    TelemetryEvent,
    validate_event_dict,
)


class TestTelemetryEvent:
    def test_to_dict_core_keys(self):
        event = TelemetryEvent(seq=3, ts=12.5, kind="counter", name="x", value=2.0)
        data = event.to_dict()
        assert data["schema"] == EVENT_SCHEMA_VERSION
        assert data["seq"] == 3
        assert data["ts"] == 12.5
        assert data["kind"] == "counter"
        assert data["name"] == "x"
        assert data["value"] == 2.0

    def test_to_dict_omits_empty_fields(self):
        data = TelemetryEvent(seq=1, ts=0.0, kind="log", name="m").to_dict()
        assert "path" not in data
        assert "value" not in data
        assert "attrs" not in data

    def test_round_trip(self):
        event = TelemetryEvent(
            seq=7,
            ts=1.25,
            kind="stage",
            name="rules",
            path="run/flow.rules",
            value=0.5,
            attrs={"status": "done"},
        )
        back = TelemetryEvent.from_dict(json.loads(json.dumps(event.to_dict())))
        assert back == event

    def test_from_dict_rejects_invalid(self):
        with pytest.raises(ValueError, match="invalid telemetry event"):
            TelemetryEvent.from_dict({"seq": 1, "ts": 0.0, "kind": "nope", "name": "x"})

    def test_is_immutable(self):
        event = TelemetryEvent(seq=1, ts=0.0, kind="log", name="m")
        with pytest.raises(AttributeError):
            event.seq = 2


class TestValidateEventDict:
    def _valid(self):
        return {"schema": 1, "seq": 1, "ts": 0.0, "kind": "log", "name": "m"}

    def test_valid_payload_is_clean(self):
        assert validate_event_dict(self._valid()) == []

    def test_every_kind_is_accepted(self):
        for kind in EVENT_KINDS:
            data = {**self._valid(), "kind": kind}
            assert validate_event_dict(data) == []

    def test_non_dict_rejected(self):
        assert validate_event_dict([1, 2]) != []
        assert validate_event_dict("x") != []

    def test_unknown_kind_rejected(self):
        assert any(
            "kind" in p for p in validate_event_dict({**self._valid(), "kind": "x"})
        )

    def test_negative_seq_rejected(self):
        assert validate_event_dict({**self._valid(), "seq": -1}) != []

    def test_bool_is_not_a_number(self):
        assert validate_event_dict({**self._valid(), "seq": True}) != []
        assert validate_event_dict({**self._valid(), "ts": True}) != []
        assert validate_event_dict({**self._valid(), "value": True}) != []

    def test_newer_schema_rejected(self):
        data = {**self._valid(), "schema": EVENT_SCHEMA_VERSION + 1}
        assert any("newer" in p for p in validate_event_dict(data))

    def test_extra_keys_tolerated(self):
        assert validate_event_dict({**self._valid(), "future_field": 1}) == []

    def test_bad_attrs_rejected(self):
        assert validate_event_dict({**self._valid(), "attrs": [1]}) != []


class TestEventBus:
    def test_publish_stamps_monotonic_seq(self):
        bus = EventBus()
        events = [bus.publish("log", f"m{i}") for i in range(5)]
        assert [e.seq for e in events] == [1, 2, 3, 4, 5]
        assert bus.last_seq == 5

    def test_publish_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            EventBus().publish("bogus", "x")

    def test_subscribers_see_events_in_order(self):
        bus = EventBus()
        seen: list[int] = []
        bus.subscribe(lambda e: seen.append(e.seq))
        for _ in range(3):
            bus.publish("log", "m")
        assert seen == [1, 2, 3]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen: list[TelemetryEvent] = []
        sub = bus.subscribe(seen.append)
        bus.publish("log", "a")
        bus.unsubscribe(sub)
        bus.publish("log", "b")
        assert [e.name for e in seen] == ["a"]

    def test_unsubscribe_unknown_is_noop(self):
        EventBus().unsubscribe(lambda e: None)

    def test_raising_subscriber_is_counted_not_fatal(self):
        bus = EventBus()

        def bad(event):
            raise RuntimeError("boom")

        seen: list[TelemetryEvent] = []
        bus.subscribe(bad)
        bus.subscribe(seen.append)
        event = bus.publish("log", "m")
        assert event is not None
        assert bus.subscriber_errors == 1
        assert len(seen) == 1  # later subscribers still get the event

    def test_closed_bus_drops_publishes(self):
        bus = EventBus()
        bus.publish("log", "before")
        bus.close()
        assert bus.closed
        assert bus.publish("log", "after") is None
        assert bus.last_seq == 1

    def test_close_closes_subscribers_and_is_idempotent(self):
        bus = EventBus()
        closed = []

        class Sub:
            def __call__(self, event):
                pass

            def close(self):
                closed.append(True)

        bus.subscribe(Sub())
        bus.close()
        bus.close()
        assert closed == [True]

    def test_seq_gap_free_across_threads(self):
        bus = EventBus()
        seen: list[int] = []
        bus.subscribe(lambda e: seen.append(e.seq))

        def pump():
            for _ in range(200):
                bus.publish("counter", "c", value=1.0)

        threads = [threading.Thread(target=pump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Delivery runs under the bus lock: in-order, gap-free from 1.
        assert seen == list(range(1, 801))

    def test_error_count_exact_under_concurrent_close(self):
        # Regression for the race conlint's CON001 surfaced: close()
        # incremented subscriber_errors without the bus lock while
        # publishers incremented it under the lock, so increments could
        # be lost.  Both paths are lock-guarded now; the count must be
        # exact: one per delivered publish (the subscriber raises every
        # time) plus one for the raising closer.
        bus = EventBus()

        class RaisingSub:
            def __call__(self, event):
                raise RuntimeError("deliver boom")

            def close(self):
                raise RuntimeError("close boom")

        bus.subscribe(RaisingSub())
        delivered = []

        def pump():
            for _ in range(100):
                if bus.publish("log", "m") is not None:
                    delivered.append(1)

        threads = [threading.Thread(target=pump) for _ in range(4)]
        for t in threads:
            t.start()
        bus.close()
        for t in threads:
            t.join()
        assert bus.subscriber_errors == len(delivered) + 1


class TestJsonlSink:
    def test_writes_valid_lines_and_flushes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        sink = bus.subscribe(JsonlSink(path))
        bus.publish("log", "a")
        bus.publish("counter", "c", value=2.0, attrs={"k": 1})
        # Flushed per event: readable before close.
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert validate_event_dict(json.loads(line)) == []
        assert sink.events_written == 2
        bus.close()

    def test_close_via_bus_then_writes_are_dropped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        sink = bus.subscribe(JsonlSink(path))
        bus.publish("log", "a")
        bus.close()
        sink(TelemetryEvent(seq=99, ts=0.0, kind="log", name="late"))
        assert len(path.read_text().splitlines()) == 1


class TestEventRingBuffer:
    def _event(self, seq):
        return TelemetryEvent(seq=seq, ts=0.0, kind="log", name="m")

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            EventRingBuffer(capacity=0)

    def test_drain_returns_and_clears(self):
        ring = EventRingBuffer(capacity=10)
        for i in range(1, 4):
            ring(self._event(i))
        assert [e.seq for e in ring.drain()] == [1, 2, 3]
        assert len(ring) == 0
        assert ring.drain() == []

    def test_since_is_nondestructive_cursor(self):
        ring = EventRingBuffer(capacity=10)
        for i in range(1, 6):
            ring(self._event(i))
        assert [e.seq for e in ring.since(3)] == [4, 5]
        assert len(ring) == 5  # nothing consumed
        assert ring.since(5) == []

    def test_overflow_evicts_oldest_and_counts(self):
        ring = EventRingBuffer(capacity=3)
        for i in range(1, 6):
            ring(self._event(i))
        assert ring.dropped == 2
        assert [e.seq for e in ring.snapshot()] == [3, 4, 5]

    def test_works_as_bus_subscriber(self):
        bus = EventBus()
        ring = bus.subscribe(EventRingBuffer(capacity=16))
        bus.publish("log", "a")
        bus.publish("log", "b")
        assert [e.name for e in ring.drain()] == ["a", "b"]


class TestLiveRenderer:
    def _renderer(self):
        stream = io.StringIO()
        return LiveRenderer(stream=stream, min_interval_s=0.0), stream

    def test_paints_stage_and_span(self):
        renderer, stream = self._renderer()
        bus = EventBus()
        bus.subscribe(renderer)
        bus.publish("stage", "rules", attrs={"status": "start"})
        bus.publish("span_open", "flow.rules", path="run/flow.rules")
        out = stream.getvalue()
        assert "rules" in out
        assert "run/flow.rules" in out

    def test_chunk_progress(self):
        renderer, stream = self._renderer()
        renderer(
            TelemetryEvent(
                seq=1, ts=0.0, kind="log", name="parallel.map_start",
                attrs={"chunks": 4, "tasks": 16},
            )
        )
        for i in range(2, 4):
            renderer(
                TelemetryEvent(
                    seq=i, ts=0.0, kind="log", name="parallel.chunk_done",
                    attrs={"chunk": i},
                )
            )
        assert "chunks 2/4" in stream.getvalue()

    def test_cache_rate_and_rss(self):
        renderer, stream = self._renderer()
        renderer(
            TelemetryEvent(
                seq=1, ts=0.0, kind="counter", name="coupling.cache_hits", value=3.0
            )
        )
        renderer(
            TelemetryEvent(
                seq=2, ts=0.0, kind="counter", name="coupling.cache_misses", value=1.0
            )
        )
        renderer(
            TelemetryEvent(
                seq=3, ts=0.0, kind="gauge", name="proc.rss_peak_bytes", value=2e8
            )
        )
        out = stream.getvalue()
        assert "cache 75%" in out
        assert "rss 200MB" in out

    def test_line_width_clamped(self):
        stream = io.StringIO()
        renderer = LiveRenderer(stream=stream, min_interval_s=0.0, width=40)
        renderer(
            TelemetryEvent(
                seq=1, ts=0.0, kind="span_open", name="x", path="run/" + "y" * 200
            )
        )
        last_line = stream.getvalue().split("\r")[-1].replace("\x1b[2K", "")
        assert len(last_line) <= 40

    def test_close_terminates_line_and_is_idempotent(self):
        renderer, stream = self._renderer()
        renderer(TelemetryEvent(seq=1, ts=0.0, kind="log", name="m"))
        renderer.close()
        renderer.close()
        assert stream.getvalue().endswith("\n")

    def test_broken_stream_disables_silently(self):
        stream = io.StringIO()
        renderer = LiveRenderer(stream=stream, min_interval_s=0.0)
        stream.close()
        renderer(TelemetryEvent(seq=1, ts=0.0, kind="log", name="m"))
        renderer.close()  # must not raise
