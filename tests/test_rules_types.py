"""Unit tests for rule objects and the rule set."""

import pytest

from repro.rules import (
    ClearanceRule,
    GroupCoherenceRule,
    MinDistanceRule,
    NetLengthRule,
    RuleSet,
)


class TestMinDistanceRule:
    def test_valid(self):
        r = MinDistanceRule("C1", "C2", pemd=0.025, k_threshold=0.01)
        assert r.pair() == ("C1", "C2")
        assert r.kind == "MinDistanceRule"

    def test_pair_canonical_order(self):
        assert MinDistanceRule("Z9", "A1", pemd=0.01).pair() == ("A1", "Z9")

    def test_same_ref_rejected(self):
        with pytest.raises(ValueError):
            MinDistanceRule("C1", "C1", pemd=0.01)

    def test_negative_pemd_rejected(self):
        with pytest.raises(ValueError):
            MinDistanceRule("C1", "C2", pemd=-0.01)

    def test_residual_bounds(self):
        with pytest.raises(ValueError):
            MinDistanceRule("C1", "C2", pemd=0.01, residual=1.5)


class TestClearanceRule:
    def test_global_rule(self):
        r = ClearanceRule(clearance=1e-3)
        assert r.is_global

    def test_pair_rule(self):
        r = ClearanceRule("C1", "C2", clearance=2e-3)
        assert not r.is_global

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ClearanceRule(clearance=-1.0)


class TestGroupAndNetRules:
    def test_group_needs_members(self):
        with pytest.raises(ValueError):
            GroupCoherenceRule(group="g", members=("C1",), max_spread=0.05)

    def test_group_valid(self):
        r = GroupCoherenceRule(group="g", members=("C1", "C2"), max_spread=0.05)
        assert r.max_spread == 0.05

    def test_net_length_valid(self):
        r = NetLengthRule(net="VIN", max_length=0.1)
        assert r.net == "VIN"

    def test_net_length_invalid(self):
        with pytest.raises(ValueError):
            NetLengthRule(net="", max_length=0.1)
        with pytest.raises(ValueError):
            NetLengthRule(net="N", max_length=0.0)


class TestRuleSet:
    def build(self) -> RuleSet:
        return RuleSet(
            min_distance=[
                MinDistanceRule("C1", "C2", pemd=0.02),
                MinDistanceRule("C1", "L1", pemd=0.03),
            ],
            clearance=[
                ClearanceRule(clearance=1e-3),
                ClearanceRule("C1", "C2", clearance=3e-3),
            ],
        )

    def test_min_distance_lookup(self):
        rs = self.build()
        rule = rs.min_distance_for("C2", "C1")
        assert rule is not None and rule.pemd == 0.02
        assert rs.min_distance_for("C2", "L1") is None

    def test_clearance_specific_beats_global(self):
        rs = self.build()
        assert rs.clearance_for("C1", "C2", default=5e-4) == 3e-3

    def test_clearance_global_beats_default(self):
        rs = self.build()
        assert rs.clearance_for("C1", "L1", default=5e-4) == 1e-3

    def test_clearance_default_fallback(self):
        rs = RuleSet()
        assert rs.clearance_for("A", "B", default=7e-4) == 7e-4

    def test_rules_involving(self):
        rs = self.build()
        assert len(rs.rules_involving("C1")) == 2
        assert len(rs.rules_involving("L1")) == 1
        assert rs.rules_involving("Q9") == []

    def test_total_rules(self):
        assert self.build().total_rules() == 4
