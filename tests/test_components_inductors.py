"""Unit tests for bobbin chokes (segmented-ring winding models)."""

import pytest

from repro.components import BobbinChoke, large_bobbin_choke, small_bobbin_choke
from repro.geometry import Vec3


class TestConstruction:
    def test_defaults_valid(self):
        choke = BobbinChoke()
        assert choke.self_inductance > 0.0

    def test_invalid_turns(self):
        with pytest.raises(ValueError):
            BobbinChoke(turns=0)

    def test_invalid_orientation(self):
        with pytest.raises(ValueError):
            BobbinChoke(orientation="diagonal")

    def test_invalid_rings(self):
        with pytest.raises(ValueError):
            BobbinChoke(n_rings=0)

    def test_demag_factor_from_geometry(self):
        stubby = BobbinChoke(coil_length=4e-3, coil_radius=4e-3)
        slim = BobbinChoke(coil_length=16e-3, coil_radius=2e-3)
        assert stubby.demag_factor > slim.demag_factor


class TestWindingModel:
    def test_ring_count(self):
        choke = BobbinChoke(n_rings=5)
        assert len(choke.current_path) == 5 * 12  # 12 segments per ring

    def test_horizontal_axis(self):
        choke = BobbinChoke(orientation="horizontal")
        axis = choke.magnetic_axis_local()
        assert abs(axis.x) == pytest.approx(1.0, abs=1e-6)

    def test_vertical_axis(self):
        choke = BobbinChoke(orientation="vertical")
        axis = choke.magnetic_axis_local()
        assert abs(axis.z) == pytest.approx(1.0, abs=1e-6)

    def test_vertical_has_full_residual(self):
        assert BobbinChoke(orientation="vertical").decoupling_residual == pytest.approx(
            1.0, abs=1e-6
        )

    def test_winding_centred_in_body(self):
        choke = BobbinChoke()
        centroid = choke.current_path.centroid()
        assert centroid.is_close(
            Vec3(0.0, 0.0, choke.body_height / 2.0), tol=1e-6
        )

    def test_turns_raise_inductance(self):
        lo = BobbinChoke(turns=10).self_inductance
        hi = BobbinChoke(turns=30).self_inductance
        assert hi > lo * 4.0  # roughly quadratic in turns


class TestElectricalModel:
    def test_geometric_inductance_microhenry_scale(self):
        choke = BobbinChoke()
        assert 1e-7 < choke.inductance < 1e-3

    def test_rated_inductance_overrides(self):
        choke = BobbinChoke(rated_inductance=100e-6)
        assert choke.inductance == pytest.approx(100e-6)
        # The field model still uses geometry.
        assert choke.self_inductance != pytest.approx(100e-6)

    def test_esr_plausible_winding_resistance(self):
        choke = BobbinChoke()
        assert 1e-3 < choke.esr < 1.0

    def test_mu_eff_above_one(self):
        assert BobbinChoke().mu_eff > 1.0


class TestFig7Pair:
    def test_sizes_differ(self):
        small = small_bobbin_choke()
        large = large_bobbin_choke()
        assert large.coil_radius > small.coil_radius
        assert large.self_inductance > small.self_inductance

    def test_orientation_passthrough(self):
        v = small_bobbin_choke(orientation="vertical")
        assert abs(v.magnetic_axis_local().z) == pytest.approx(1.0, abs=1e-6)
