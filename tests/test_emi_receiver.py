"""Unit tests for the EMI receiver model."""

import numpy as np
import pytest

from repro.emi import EmiReceiver, Spectrum, cispr_rbw


class TestRbw:
    def test_band_a(self):
        assert cispr_rbw(50e3) == 200.0

    def test_band_b(self):
        assert cispr_rbw(1e6) == 9e3

    def test_band_c(self):
        assert cispr_rbw(100e6) == 120e3

    def test_boundaries(self):
        assert cispr_rbw(150e3) == 9e3
        assert cispr_rbw(30e6) == 120e3


class TestDetectors:
    def lines(self) -> Spectrum:
        # Two lines 4 kHz apart (inside one 9 kHz RBW) at 1 mV each.
        return Spectrum(
            np.array([1.000e6, 1.004e6]), np.array([1e-3, 1e-3], dtype=complex)
        )

    def test_peak_sums_magnitudes(self):
        rx = EmiReceiver("peak")
        level = rx.measure_at(self.lines(), 1.002e6)
        assert level == pytest.approx(66.0, abs=0.1)  # 2 mV

    def test_average_rss(self):
        rx = EmiReceiver("average")
        level = rx.measure_at(self.lines(), 1.002e6)
        assert level == pytest.approx(63.0, abs=0.1)  # sqrt(2) mV

    def test_peak_at_least_average(self):
        peak = EmiReceiver("peak").measure_at(self.lines(), 1.002e6)
        avg = EmiReceiver("average").measure_at(self.lines(), 1.002e6)
        assert peak >= avg

    def test_empty_window_reads_floor(self):
        rx = EmiReceiver("peak", noise_floor_dbuv=6.0)
        assert rx.measure_at(self.lines(), 50e6) == 6.0

    def test_invalid_detector(self):
        with pytest.raises(ValueError):
            EmiReceiver("rms-average")


class TestSweepAndTrace:
    def comb(self) -> Spectrum:
        freqs = 250e3 * np.arange(1, 101)
        values = 1e-3 / np.arange(1, 101)
        return Spectrum(freqs, values.astype(complex))

    def test_sweep_returns_spectrum(self):
        rx = EmiReceiver("peak", noise_floor_dbuv=0.0)
        grid = np.linspace(200e3, 20e6, 50)
        trace = rx.sweep(self.comb(), grid)
        assert len(trace) == 50
        assert np.all(trace.dbuv() >= 0.0)

    def test_display_trace_catches_every_line(self):
        rx = EmiReceiver("peak", noise_floor_dbuv=0.0)
        grid = rx.standard_grid(points=60)
        trace = rx.display_trace(self.comb(), grid)
        # The strongest line (60 dBuV at 250 kHz) must appear in some bin.
        assert np.max(trace.dbuv()) == pytest.approx(60.0, abs=0.5)

    def test_display_trace_floor_in_empty_bins(self):
        rx = EmiReceiver("peak", noise_floor_dbuv=4.0)
        sparse = Spectrum(np.array([1e6]), np.array([1e-3], dtype=complex))
        grid = rx.standard_grid(points=40)
        trace = rx.display_trace(sparse, grid)
        assert np.min(trace.dbuv()) == pytest.approx(4.0, abs=0.1)

    def test_display_trace_grid_validation(self):
        rx = EmiReceiver()
        with pytest.raises(ValueError):
            rx.display_trace(self.comb(), np.array([1e6]))

    def test_standard_grid(self):
        grid = EmiReceiver.standard_grid()
        assert grid[0] == pytest.approx(150e3)
        assert grid[-1] == pytest.approx(108e6)
        with pytest.raises(ValueError):
            EmiReceiver.standard_grid(1e6, 1e5)
