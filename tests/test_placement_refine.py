"""Unit tests for rip-up-and-replace wirelength refinement."""

import pytest

from repro.placement import (
    AutoPlacer,
    DesignRuleChecker,
    refine_wirelength,
    total_wirelength,
)

from conftest import build_small_problem


def placed_problem():
    problem = build_small_problem()
    AutoPlacer(problem).run()
    return problem


class TestRefinement:
    def test_never_worse(self):
        problem = placed_problem()
        result = refine_wirelength(problem)
        assert result.wirelength_after <= result.wirelength_before + 1e-12
        assert result.improvement >= 0.0

    def test_typically_improves_greedy_result(self):
        problem = placed_problem()
        result = refine_wirelength(problem)
        # The greedy sequential pass leaves slack on this fixture.
        assert result.improved_components >= 1
        assert result.wirelength_after < result.wirelength_before

    def test_legality_preserved(self):
        problem = placed_problem()
        refine_wirelength(problem)
        assert DesignRuleChecker(problem).is_legal()

    def test_result_matches_problem_state(self):
        problem = placed_problem()
        result = refine_wirelength(problem)
        assert result.wirelength_after == pytest.approx(total_wirelength(problem))

    def test_fixed_components_untouched(self):
        problem = placed_problem()
        anchor = problem.components["C1"]
        anchor.fixed = True
        before = anchor.placement
        refine_wirelength(problem)
        assert anchor.placement == before

    def test_converges_to_fixed_point(self):
        problem = placed_problem()
        refine_wirelength(problem, max_passes=5)
        second = refine_wirelength(problem, max_passes=5)
        assert second.improved_components == 0
        assert second.passes == 1

    def test_pass_bound(self):
        problem = placed_problem()
        result = refine_wirelength(problem, max_passes=1)
        assert result.passes == 1
