"""Tests for the check engine, its observability and the flow precheck gate."""

import pytest

from repro import obs
from repro.check import DesignCheckError, Severity, run_checks
from repro.converters import BuckConverterDesign
from repro.core import EmiDesignFlow
from repro.geometry import Cuboid, Rect
from repro.placement import Keepout3D

from conftest import build_small_problem
from test_check_netlist import build_clean_circuit


def _blanket(problem):
    xmin, ymin, xmax, ymax = problem.boards[0].outline.bbox()
    return Keepout3D("blanket", Cuboid(Rect(xmin, ymin, xmax, ymax), 0.0, 0.05))


class TestRunChecksDispatch:
    def test_problem_only(self):
        report = run_checks(problem=build_small_problem(), subject="p")
        assert report.is_clean()
        assert report.analyzers == ["netlist", "coupling", "placement", "component"]
        assert report.subject == "p"

    def test_circuit_only(self):
        report = run_checks(circuit=build_clean_circuit())
        assert report.is_clean()
        assert report.analyzers == ["netlist", "coupling"]

    def test_coupling_map_only(self):
        report = run_checks(couplings={("L1", "L2"): 2.0})
        assert report.analyzers == ["coupling"]
        assert report.codes() == {"CPL001"}

    def test_nothing_to_check(self):
        report = run_checks()
        assert report.is_clean()
        assert report.analyzers == []

    def test_combined_inputs(self):
        circuit = build_clean_circuit()
        circuit.add_resistor("Rstub", "out", "nowhere", 1.0)
        problem = build_small_problem()
        problem.boards[0].keepouts.append(_blanket(problem))
        report = run_checks(problem=problem, circuit=circuit)
        assert {"NET002", "PLC002"} <= report.codes()


class TestObservability:
    def test_spans_and_counters_recorded(self):
        problem = build_small_problem()
        problem.boards[0].keepouts.append(_blanket(problem))
        tracer = obs.enable(meta={"test": "check"})
        try:
            run_checks(problem=problem)
        finally:
            obs.disable()
        run_span = tracer.root.find("check.run")
        assert run_span is not None
        child_names = set(run_span.children)
        assert {
            "check.netlist",
            "check.coupling",
            "check.placement",
            "check.components",
        } <= child_names
        counters = tracer.root.total_counters()
        assert counters.get("check.diagnostics", 0) >= 2
        assert counters.get("check.errors", 0) >= 1


class TestDesignCheckError:
    def test_message_summarises_errors(self):
        problem = build_small_problem()
        problem.boards[0].keepouts.append(_blanket(problem))
        report = run_checks(problem=problem)
        error = DesignCheckError(report)
        assert error.report is report
        assert "PLC002" in str(error)
        assert "error(s)" in str(error)


class TestFlowPrecheck:
    def test_clean_design_passes_and_caches(self):
        flow = EmiDesignFlow(BuckConverterDesign(), precheck=True)
        report = flow.run_precheck()
        assert not report.errors()
        assert flow.run_precheck() is report  # cached

    def test_gate_off_by_default(self):
        flow = EmiDesignFlow(BuckConverterDesign())
        assert flow.precheck is False
        flow.predict()  # must not run (or fail on) any check
        assert flow._precheck_report is None

    def test_gate_blocks_broken_design(self):
        flow = EmiDesignFlow(BuckConverterDesign(), precheck=True)

        original = flow.design.placement_problem

        def broken():
            problem = original()
            problem.boards[0].keepouts.append(_blanket(problem))
            return problem

        flow.design.placement_problem = broken
        try:
            with pytest.raises(DesignCheckError) as excinfo:
                flow.predict()
        finally:
            flow.design.placement_problem = original
        assert excinfo.value.report.count(Severity.ERROR) >= 1
        assert "PLC002" in excinfo.value.report.codes()

    def test_gate_guards_every_entry_point(self):
        flow = EmiDesignFlow(BuckConverterDesign(), precheck=True)

        original = flow.design.placement_problem

        def broken():
            problem = original()
            problem.boards[0].keepouts.append(_blanket(problem))
            return problem

        flow.design.placement_problem = broken
        try:
            for method in (
                flow.run_sensitivity,
                flow.place_baseline,
                flow.place_optimized,
            ):
                flow._precheck_report = None
                with pytest.raises(DesignCheckError):
                    method()
        finally:
            flow.design.placement_problem = original
