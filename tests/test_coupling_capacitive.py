"""Unit tests for capacitive component coupling (high-frequency extension)."""

import numpy as np
import pytest

from repro.components import FilmCapacitorX2
from repro.converters import CAPACITIVE_NODES
from repro.coupling import capacitive_layout_couplings, component_capacitance
from repro.geometry import Placement2D

from conftest import build_small_problem


class TestComponentCapacitance:
    def test_sub_picofarad_magnitude(self, x2_cap):
        result = component_capacitance(
            x2_cap, Placement2D.at(0, 0), FilmCapacitorX2(), Placement2D.at(0.02, 0)
        )
        assert 0.05e-12 < result.mutual_f < 5e-12
        assert result.mutual_pf == pytest.approx(result.mutual_f * 1e12)

    def test_decays_with_distance(self, x2_cap):
        near = component_capacitance(
            x2_cap, Placement2D.at(0, 0), FilmCapacitorX2(), Placement2D.at(0.02, 0)
        ).mutual_f
        far = component_capacitance(
            x2_cap, Placement2D.at(0, 0), FilmCapacitorX2(), Placement2D.at(0.06, 0)
        ).mutual_f
        assert near > far

    def test_ground_capacitances_with_plane(self, x2_cap):
        result = component_capacitance(
            x2_cap,
            Placement2D.at(0, 0),
            FilmCapacitorX2(),
            Placement2D.at(0.03, 0),
            ground_plane_z=-1e-3,
        )
        assert result.c_ground_a > 0.0
        assert result.c_ground_b > 0.0

    def test_no_plane_no_ground_capacitance(self, x2_cap):
        result = component_capacitance(
            x2_cap, Placement2D.at(0, 0), FilmCapacitorX2(), Placement2D.at(0.03, 0)
        )
        assert result.c_ground_a == 0.0

    def test_coincident_rejected(self, x2_cap):
        with pytest.raises(ValueError):
            component_capacitance(
                x2_cap, Placement2D.at(0, 0), FilmCapacitorX2(), Placement2D.at(0, 0)
            )


class TestLayoutCapacitances:
    def test_all_placed_pairs(self):
        problem = build_small_problem()
        for i, comp in enumerate(problem.components.values()):
            comp.placement = Placement2D.at(0.01 + 0.012 * i, 0.02)
        cm = capacitive_layout_couplings(problem)
        n = len(problem.components)
        assert len(cm) == n * (n - 1) // 2
        assert all(a < b for a, b in cm)

    def test_floor_drops_tiny_pairs(self):
        problem = build_small_problem()
        problem.components["C1"].placement = Placement2D.at(0.0, 0.0)
        problem.components["C2"].placement = Placement2D.at(0.06, 0.05)
        cm = capacitive_layout_couplings(problem, c_floor=1e-12)
        assert cm == {}


class TestCircuitInsertion:
    def test_applied_count_skips_same_node(self, buck_design):
        circuit, _ = buck_design.emi_circuit()
        applied = buck_design.apply_capacitive_couplings(
            circuit,
            {
                ("CX1", "L1"): 0.5e-12,  # vin <-> sw: applied
                ("CX2", "CIN"): 0.5e-12,  # both at vbus: skipped
                ("CX1", "CONN1"): 0.5e-12,  # no hot node: skipped
            },
        )
        assert applied == 1
        assert any(e.name == "CPAR_CX1_L1" for e in circuit.elements)

    def test_effect_grows_with_frequency(self, buck_design):
        # The paper's remark: capacitive coupling matters at high frequency.
        cm = {("CX1", "L1"): 1e-12, ("CX1", "Q1"): 1e-12}
        base = buck_design.emission_spectrum()
        with_c = buck_design.emission_spectrum(capacitive=cm)
        delta = np.abs(with_c.dbuv() - base.dbuv())
        freqs = base.freqs
        low = float(np.max(delta[freqs < 2e6]))
        high = float(np.max(delta[freqs > 30e6]))
        assert high > low + 3.0
        assert low < 2.0

    def test_all_capacitive_nodes_exist_in_circuit(self, buck_design):
        circuit, _ = buck_design.emi_circuit()
        nodes = set(circuit.node_names())
        for node in CAPACITIVE_NODES.values():
            assert node in nodes
