"""Unit tests for the ground-plane image method."""

import pytest

from repro.geometry import Vec3
from repro.peec import (
    coupling_factor,
    image_path,
    loop_self_inductance,
    mutual_inductance_paths,
    ring_path,
    shielding_factor,
    with_ground_plane,
)


class TestImageConstruction:
    def test_weights_negated(self):
        ring = ring_path(Vec3(0, 0, 0.003), 0.005, weight=2.0)
        img = image_path(ring, plane_z=0.0)
        assert all(f.weight == -2.0 for f in img.filaments)

    def test_geometry_mirrored(self):
        ring = ring_path(Vec3(0, 0, 0.003), 0.005)
        img = image_path(ring, plane_z=0.0)
        assert img.centroid().z == pytest.approx(-0.003)

    def test_horizontal_loop_image_moment_antiparallel(self):
        # Vertical-axis loop (horizontal plane): image moment must flip.
        ring = ring_path(Vec3(0, 0, 0.003), 0.005, axis="z")
        img = image_path(ring)
        assert img.magnetic_moment().z == pytest.approx(
            -ring.magnetic_moment().z, rel=1e-9
        )

    def test_standing_loop_image_moment_mirrored(self):
        # Horizontal-axis loop: image moment keeps the in-plane component
        # sign (geometry mirror reverses traversal AND weight flips => net
        # parallel for the in-plane moment).
        ring = ring_path(Vec3(0, 0, 0.005), 0.004, axis="x")
        img = image_path(ring)
        assert img.magnetic_moment().x == pytest.approx(
            ring.magnetic_moment().x, rel=1e-9
        )

    def test_name_suffix(self):
        ring = ring_path(Vec3(0, 0, 0.003), 0.005, name="L1")
        assert image_path(ring).name == "L1~image"

    def test_with_ground_plane_doubles_filaments(self):
        ring = ring_path(Vec3(0, 0, 0.003), 0.005, segments=8)
        assert len(with_ground_plane(ring)) == 16


class TestShieldingPhysics:
    def test_plane_reduces_flat_loop_coupling(self):
        # Two flat (vertical-axis) loops close above a plane: the image
        # currents largely cancel the mutual coupling.
        a = ring_path(Vec3(0, 0, 0.002), 0.008, segments=12)
        b = ring_path(Vec3(0.03, 0, 0.002), 0.008, segments=12)
        k_free = abs(coupling_factor(a, b))
        m_shielded = mutual_inductance_paths(with_ground_plane(a), b)
        k_shielded = abs(m_shielded) / (
            loop_self_inductance(a) * loop_self_inductance(b)
        ) ** 0.5
        assert k_shielded < k_free

    def test_far_plane_negligible(self):
        a = ring_path(Vec3(0, 0, 0.002), 0.005, segments=8)
        b = ring_path(Vec3(0.02, 0, 0.002), 0.005, segments=8)
        m_free = mutual_inductance_paths(a, b)
        m_far = mutual_inductance_paths(with_ground_plane(a, plane_z=-1.0), b)
        assert m_far == pytest.approx(m_free, rel=0.01)

    def test_plane_reduces_self_inductance(self):
        loop = ring_path(Vec3(0, 0, 0.001), 0.01, segments=12)
        l_free = loop_self_inductance(loop)
        # Self inductance with plane: L + M(loop, image), image carries the
        # same terminal current.
        img = image_path(loop)
        l_eff = l_free + mutual_inductance_paths(loop, img)
        assert 0.0 < l_eff < l_free


class TestShieldingFactor:
    def test_ratio(self):
        assert shielding_factor(0.1, 0.02) == pytest.approx(5.0)

    def test_zero_shielded_is_infinite(self):
        assert shielding_factor(0.1, 0.0) == float("inf")

    def test_symmetric_sign(self):
        assert shielding_factor(-0.1, 0.02) == pytest.approx(5.0)
