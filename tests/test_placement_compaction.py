"""Unit tests for automatic layout compaction."""

import pytest

from repro.placement import AutoPlacer, DesignRuleChecker, compact_layout, placement_area

from conftest import build_small_problem


def placed_problem():
    problem = build_small_problem()
    AutoPlacer(problem).run()
    return problem


class TestCompaction:
    def test_area_never_grows(self):
        problem = placed_problem()
        result = compact_layout(problem)
        assert result.area_after <= result.area_before + 1e-12
        assert result.reduction >= 0.0

    def test_legality_preserved(self):
        problem = placed_problem()
        compact_layout(problem)
        assert DesignRuleChecker(problem).is_legal()

    def test_fixed_components_untouched(self):
        problem = placed_problem()
        anchor = problem.components["Q1"]
        anchor.fixed = True
        before = anchor.placement
        compact_layout(problem)
        assert anchor.placement == before

    def test_terminates_at_fixed_point(self):
        problem = placed_problem()
        first = compact_layout(problem, max_passes=30)
        second = compact_layout(problem, max_passes=30)
        # After converging, a second run performs (almost) no moves.
        assert second.moves <= max(2, first.moves // 5)

    def test_result_area_matches_problem(self):
        problem = placed_problem()
        result = compact_layout(problem)
        assert result.area_after == pytest.approx(placement_area(problem))

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            compact_layout(placed_problem(), step=0.0)

    def test_pass_bound_respected(self):
        problem = placed_problem()
        result = compact_layout(problem, max_passes=2)
        assert result.passes <= 2
