"""Property-based tests for placement invariants (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.components import FilmCapacitorX2, small_bobbin_choke
from repro.geometry import Placement2D, Polygon2D, Vec2
from repro.placement import (
    AutoPlacer,
    Board,
    DesignRuleChecker,
    PlacedComponent,
    PlacementError,
    PlacementProblem,
)
from repro.rules import MinDistanceRule, RuleSet, effective_min_distance

pemds = st.floats(min_value=0.005, max_value=0.03, allow_nan=False)
angles = st.floats(min_value=0.0, max_value=math.pi, allow_nan=False)
residuals = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestEmdLawProperties:
    @given(pemds, angles, residuals)
    def test_emd_never_exceeds_pemd(self, pemd, alpha, residual):
        emd = effective_min_distance(pemd, alpha, residual)
        assert 0.0 <= emd <= pemd + 1e-15

    @given(pemds, residuals)
    def test_emd_at_zero_angle_is_pemd(self, pemd, residual):
        assert effective_min_distance(pemd, 0.0, residual) == pemd

    @given(pemds, angles)
    def test_emd_symmetric_about_zero(self, pemd, alpha):
        assert effective_min_distance(pemd, alpha) == effective_min_distance(
            pemd, -alpha
        )

    @given(pemds, residuals)
    def test_residual_is_floor(self, pemd, residual):
        emd_90 = effective_min_distance(pemd, math.pi / 2.0, residual)
        assert math.isclose(emd_90, pemd * residual, rel_tol=1e-12, abs_tol=1e-15)


@st.composite
def random_problems(draw):
    """2-5 components with random rules on a generous board."""
    n = draw(st.integers(min_value=2, max_value=5))
    problem = PlacementProblem(
        [Board(0, Polygon2D.rectangle(0.0, 0.0, 0.12, 0.1))]
    )
    for i in range(n):
        comp = FilmCapacitorX2() if draw(st.booleans()) else small_bobbin_choke()
        problem.add_component(PlacedComponent(f"U{i}", comp))
    rules = []
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                rules.append(
                    MinDistanceRule(f"U{i}", f"U{j}", pemd=draw(pemds))
                )
    problem.rules = RuleSet(min_distance=rules)
    return problem


class TestPlacerProperties:
    @settings(max_examples=15, deadline=None)
    @given(random_problems())
    def test_auto_placement_is_legal(self, problem):
        try:
            report = AutoPlacer(problem).run()
        except PlacementError:
            return  # an over-constrained draw is acceptable; no legality claim
        assert report.placed_count == len(problem.components)
        checker = DesignRuleChecker(problem)
        assert not checker.check_body_spacing()
        assert not checker.check_min_distances()
        assert not checker.check_keepin()

    @settings(max_examples=15, deadline=None)
    @given(random_problems())
    def test_all_footprints_inside_board(self, problem):
        try:
            AutoPlacer(problem).run()
        except PlacementError:
            return
        outline = problem.board(0).outline
        for comp in problem.placed():
            rect = comp.footprint_aabb()
            assert outline.contains_rect(rect.xmin, rect.ymin, rect.xmax, rect.ymax)

    @settings(max_examples=10, deadline=None)
    @given(
        random_problems(),
        st.floats(min_value=-0.01, max_value=0.01),
        st.floats(min_value=-0.01, max_value=0.01),
    )
    def test_drc_translation_invariance(self, problem, dx, dy):
        try:
            AutoPlacer(problem).run()
        except PlacementError:
            return
        checker = DesignRuleChecker(problem)
        before = len(checker.check_min_distances())
        for comp in problem.placed():
            comp.placement = comp.placement.translated(Vec2(dx, dy))
        after = len(checker.check_min_distances())
        assert before == after

    @settings(max_examples=10, deadline=None)
    @given(random_problems())
    def test_markers_consistent_with_violations(self, problem):
        # Place everything at random-ish spots (legal or not) and check the
        # marker colours agree with the DRC verdicts pair by pair.
        for i, comp in enumerate(problem.components.values()):
            comp.placement = Placement2D.at(
                0.015 + 0.02 * (i % 3), 0.015 + 0.02 * (i // 3)
            )
        checker = DesignRuleChecker(problem)
        violating_pairs = {
            tuple(sorted(v.refs)) for v in checker.check_min_distances()
        }
        for marker in checker.rule_markers():
            pair = tuple(sorted((marker.ref_a, marker.ref_b)))
            assert marker.satisfied == (pair not in violating_pairs)
