"""Unit tests for Biot-Savart field evaluation."""

import math

import numpy as np
import pytest

from repro.geometry import Vec3
from repro.peec import (
    MU0,
    Filament,
    b_field,
    b_field_filament,
    b_field_grid,
    field_magnitude_map,
    ring_path,
)


class TestSingleFilament:
    def test_infinite_wire_limit(self):
        # Long wire: B = mu0 I / (2 pi rho) at its middle.
        f = Filament(Vec3(-1.0, 0, 0), Vec3(1.0, 0, 0))
        rho = 0.01
        b = b_field_filament(f, Vec3(0.0, rho, 0.0), current=2.0)
        expected = MU0 * 2.0 / (2 * math.pi * rho)
        assert b.norm() == pytest.approx(expected, rel=1e-3)

    def test_right_hand_rule_direction(self):
        f = Filament(Vec3(-1.0, 0, 0), Vec3(1.0, 0, 0))
        b = b_field_filament(f, Vec3(0.0, 0.01, 0.0))
        # Current +x, point at +y: B along +z? e_phi = t x e_rho = x x y = z.
        assert b.z > 0.0
        assert abs(b.x) < 1e-15

    def test_weight_scales_field(self):
        f1 = Filament(Vec3(0, 0, 0), Vec3(0.02, 0, 0), weight=1.0)
        f2 = Filament(Vec3(0, 0, 0), Vec3(0.02, 0, 0), weight=3.0)
        p = Vec3(0.01, 0.005, 0.0)
        assert b_field_filament(f2, p).norm() == pytest.approx(
            3.0 * b_field_filament(f1, p).norm()
        )

    def test_on_axis_returns_zero(self):
        f = Filament(Vec3(0, 0, 0), Vec3(0.02, 0, 0))
        b = b_field_filament(f, Vec3(0.03, 0.0, 0.0))
        assert b.norm() == 0.0

    def test_inside_conductor_clamped(self):
        f = Filament(Vec3(0, 0, 0), Vec3(0.02, 0, 0), width=1e-3, thickness=1e-3)
        b_close = b_field_filament(f, Vec3(0.01, 1e-7, 0.0))
        b_surface = b_field_filament(f, Vec3(0.01, 0.5e-3, 0.0))
        assert b_close.norm() <= b_surface.norm() * 1.001


class TestRingField:
    def test_center_of_ring(self):
        radius = 0.01
        ring = ring_path(Vec3.zero(), radius, segments=64)
        b = b_field(ring, Vec3.zero())
        assert b.z == pytest.approx(MU0 / (2 * radius), rel=0.01)

    def test_on_axis_formula(self):
        radius, z = 0.01, 0.02
        ring = ring_path(Vec3.zero(), radius, segments=64)
        b = b_field(ring, Vec3(0, 0, z))
        expected = MU0 * radius**2 / (2 * (radius**2 + z**2) ** 1.5)
        assert b.z == pytest.approx(expected, rel=0.01)

    def test_field_decays_off_axis(self):
        ring = ring_path(Vec3.zero(), 0.01, segments=32)
        near = b_field(ring, Vec3(0.02, 0, 0)).norm()
        far = b_field(ring, Vec3(0.06, 0, 0)).norm()
        assert near > far


class TestGrids:
    def test_grid_shape(self):
        ring = ring_path(Vec3.zero(), 0.01, segments=8)
        xs = np.linspace(-0.02, 0.02, 5)
        ys = np.linspace(-0.01, 0.01, 3)
        grid = b_field_grid([ring], xs, ys, z=0.001)
        assert grid.shape == (3, 5, 3)

    def test_magnitude_map_matches_vectors(self):
        ring = ring_path(Vec3.zero(), 0.01, segments=8)
        xs = np.linspace(-0.02, 0.02, 4)
        ys = np.linspace(-0.01, 0.01, 4)
        vectors = b_field_grid([ring], xs, ys)
        mags = field_magnitude_map([ring], xs, ys)
        assert mags.shape == (4, 4)
        assert np.allclose(mags, np.linalg.norm(vectors, axis=2))

    def test_currents_mismatch_rejected(self):
        ring = ring_path(Vec3.zero(), 0.01, segments=8)
        with pytest.raises(ValueError):
            b_field_grid([ring], np.array([0.0]), np.array([0.0]), currents=[1.0, 2.0])

    def test_superposition(self):
        r1 = ring_path(Vec3.zero(), 0.01, segments=8)
        r2 = ring_path(Vec3(0.03, 0, 0), 0.01, segments=8)
        xs = np.array([0.015])
        ys = np.array([0.0])
        both = b_field_grid([r1, r2], xs, ys)[0, 0]
        one = b_field_grid([r1], xs, ys)[0, 0]
        two = b_field_grid([r2], xs, ys)[0, 0]
        assert np.allclose(both, one + two)
